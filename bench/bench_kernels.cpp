// google-benchmark microbenchmarks of pclust's computational kernels:
// pairwise alignment (full-matrix and score-only), suffix-array + LCP
// construction, maximal-match enumeration, min-wise shingling, and
// union-find.
//
// Before the google-benchmark suite runs, a hand-timed comparison section
// writes BENCH_kernels.json (machine readable: ns/cell, pairs/sec, serial
// vs pooled speedups) so CI and the roadmap scripts can track the two
// acceptance numbers of the execution layer — score-only vs full-matrix,
// and pooled vs serial batched verdicts — without scraping console output.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <numeric>
#include <thread>

#include "common.hpp"
#include "pclust/align/batch.hpp"
#include "pclust/align/pairwise.hpp"
#include "pclust/align/simd.hpp"
#include "pclust/dsu/union_find.hpp"
#include "pclust/exec/pool.hpp"
#include "pclust/pace/reference.hpp"
#include "pclust/shingle/minwise.hpp"
#include "pclust/suffix/lcp.hpp"
#include "pclust/suffix/maximal_match.hpp"
#include "pclust/suffix/suffix_array.hpp"
#include "pclust/util/rng.hpp"

namespace {

using namespace pclust;

seq::SequenceSet bench_sequences(std::size_t n, std::uint32_t mean_length) {
  synth::DatasetSpec spec;
  spec.seed = 99;
  spec.num_sequences = static_cast<std::uint32_t>(n);
  spec.num_families = 4;
  spec.mean_length = mean_length;
  return synth::generate(spec).sequences;
}

// ---------------------------------------------------------------------------
// google-benchmark registrations
// ---------------------------------------------------------------------------

void BM_LocalAlign(benchmark::State& state) {
  const auto set = bench_sequences(64, static_cast<std::uint32_t>(state.range(0)));
  const auto& scheme = align::blosum62();
  std::uint64_t cells = 0;
  seq::SeqId i = 0;
  for (auto _ : state) {
    const auto r = align::local_align(set.residues(i % set.size()),
                                      set.residues((i + 1) % set.size()),
                                      scheme);
    benchmark::DoNotOptimize(r.score);
    cells += r.cells;
    ++i;
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(cells), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LocalAlign)->Arg(80)->Arg(160)->Arg(320);

void BM_LocalAlignScoreOnly(benchmark::State& state) {
  const auto set = bench_sequences(64, static_cast<std::uint32_t>(state.range(0)));
  const auto& scheme = align::blosum62();
  std::uint64_t cells = 0;
  seq::SeqId i = 0;
  for (auto _ : state) {
    const auto r = align::local_align_score(set.residues(i % set.size()),
                                            set.residues((i + 1) % set.size()),
                                            scheme);
    benchmark::DoNotOptimize(r.score);
    cells += r.cells;
    ++i;
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(cells), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LocalAlignScoreOnly)->Arg(80)->Arg(160)->Arg(320);

void BM_BandedLocalAlign(benchmark::State& state) {
  const auto set = bench_sequences(64, 160);
  const auto& scheme = align::blosum62();
  std::uint64_t cells = 0;
  seq::SeqId i = 0;
  for (auto _ : state) {
    const auto r = align::banded_local_align(
        set.residues(i % set.size()), set.residues((i + 1) % set.size()),
        scheme, 0, static_cast<std::uint32_t>(state.range(0)));
    benchmark::DoNotOptimize(r.score);
    cells += r.cells;
    ++i;
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(cells), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BandedLocalAlign)->Arg(16)->Arg(32)->Arg(64);

void BM_BandedLocalAlignScoreOnly(benchmark::State& state) {
  const auto set = bench_sequences(64, 160);
  const auto& scheme = align::blosum62();
  std::uint64_t cells = 0;
  seq::SeqId i = 0;
  for (auto _ : state) {
    const auto r = align::banded_local_align_score(
        set.residues(i % set.size()), set.residues((i + 1) % set.size()),
        scheme, 0, static_cast<std::uint32_t>(state.range(0)));
    benchmark::DoNotOptimize(r.score);
    cells += r.cells;
    ++i;
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(cells), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BandedLocalAlignScoreOnly)->Arg(16)->Arg(32)->Arg(64);

void BM_SuffixArray(benchmark::State& state) {
  const auto set = bench_sequences(static_cast<std::size_t>(state.range(0)), 160);
  const suffix::ConcatText text(set);
  for (auto _ : state) {
    auto sa = suffix::build_suffix_array(text.text(), seq::kIndexAlphabetSize);
    benchmark::DoNotOptimize(sa.data());
  }
  state.counters["chars/s"] = benchmark::Counter(
      static_cast<double>(text.size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SuffixArray)->Arg(200)->Arg(1000)->Arg(4000);

void BM_SuffixArrayPooled(benchmark::State& state) {
  const auto set = bench_sequences(1000, 160);
  const suffix::ConcatText text(set);
  exec::Pool pool(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    auto sa = suffix::build_suffix_array_parallel(text, pool);
    benchmark::DoNotOptimize(sa.data());
  }
  state.counters["chars/s"] = benchmark::Counter(
      static_cast<double>(text.size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SuffixArrayPooled)->Arg(1)->Arg(2)->Arg(4);

void BM_LcpArray(benchmark::State& state) {
  const auto set = bench_sequences(1000, 160);
  const suffix::ConcatText text(set);
  const auto sa =
      suffix::build_suffix_array(text.text(), seq::kIndexAlphabetSize);
  for (auto _ : state) {
    auto lcp = suffix::build_lcp(text, sa);
    benchmark::DoNotOptimize(lcp.data());
  }
  state.counters["chars/s"] = benchmark::Counter(
      static_cast<double>(text.size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LcpArray);

void BM_MaximalMatchEnumeration(benchmark::State& state) {
  const auto set = bench_sequences(static_cast<std::size_t>(state.range(0)), 160);
  const suffix::ConcatText text(set);
  const auto sa =
      suffix::build_suffix_array(text.text(), seq::kIndexAlphabetSize);
  const auto lcp = suffix::build_lcp(text, sa);
  suffix::MaximalMatchParams mp;
  mp.min_length = 10;
  const suffix::MaximalMatchEnumerator enumerator(text, sa, lcp, mp);
  std::uint64_t pairs = 0;
  for (auto _ : state) {
    enumerator.enumerate(0, static_cast<std::int32_t>(sa.size()) - 1,
                         [&pairs](const suffix::MaximalMatch&) {
                           ++pairs;
                           return true;
                         });
  }
  state.counters["pairs/s"] = benchmark::Counter(
      static_cast<double>(pairs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MaximalMatchEnumeration)->Arg(500)->Arg(2000);

void BM_ShingleSet(benchmark::State& state) {
  std::vector<std::uint32_t> links(static_cast<std::size_t>(state.range(0)));
  std::iota(links.begin(), links.end(), 0u);
  std::uint64_t shingles = 0;
  for (auto _ : state) {
    const auto set = shingle::shingle_set(links, 5, 300, 42);
    shingles += set.size();
    benchmark::DoNotOptimize(shingles);
  }
  state.counters["shingles/s"] = benchmark::Counter(
      static_cast<double>(shingles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShingleSet)->Arg(16)->Arg(64)->Arg(256);

void BM_UnionFind(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(7);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ops(n * 4);
  for (auto& [a, b] : ops) {
    a = static_cast<std::uint32_t>(rng.below(n));
    b = static_cast<std::uint32_t>(rng.below(n));
  }
  for (auto _ : state) {
    dsu::UnionFind uf(n);
    for (const auto& [a, b] : ops) uf.merge(a, b);
    benchmark::DoNotOptimize(uf.set_count());
  }
  state.counters["ops/s"] = benchmark::Counter(
      static_cast<double>(ops.size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_UnionFind)->Arg(10'000)->Arg(100'000);

// ---------------------------------------------------------------------------
// BENCH_kernels.json: the execution layer's acceptance comparisons
// ---------------------------------------------------------------------------

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct AlignTiming {
  double seconds = 0.0;
  std::uint64_t cells = 0;
  std::uint64_t pairs = 0;
  [[nodiscard]] double ns_per_cell() const {
    return cells ? seconds * 1e9 / static_cast<double>(cells) : 0.0;
  }
  [[nodiscard]] double pairs_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(pairs) / seconds : 0.0;
  }
};

template <typename F>
AlignTiming time_pairs(const seq::SequenceSet& set, int rounds, F&& one_pair) {
  AlignTiming t;
  const auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < rounds; ++round) {
    for (seq::SeqId i = 0; i + 1 < set.size(); ++i) {
      t.cells += one_pair(set.residues(i), set.residues(i + 1));
      ++t.pairs;
    }
  }
  t.seconds = seconds_since(t0);
  return t;
}

void write_json(std::FILE* f) {
  const auto& scheme = align::blosum62();
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::fprintf(f, "{\n  \"hardware_concurrency\": %u,\n  \"kernels\": [\n",
               hw);

  // -- score-only vs full-matrix, unbanded local ---------------------------
  // Every candidate here is timed as the minimum over several interleaved
  // repetitions — on a shared host, noise only ever inflates a wall-clock
  // sample, so the per-candidate minimum is the stable estimate, and
  // interleaving keeps slow phases (frequency scaling, steal time) from
  // landing on one candidate only. The batch section below uses the same
  // estimator, so the gated ratios stay steady run to run.
  const auto set = bench_sequences(64, 200);
  constexpr int kPairReps = 9;
  AlignTiming full, score, banded_full, banded_score;
  full.seconds = score.seconds = 1e300;
  banded_full.seconds = banded_score.seconds = 1e300;
  const auto min_into = [](AlignTiming& best, const AlignTiming& t) {
    best.seconds = std::min(best.seconds, t.seconds);
    best.cells = t.cells;
    best.pairs = t.pairs;
  };
  for (int rep = 0; rep < kPairReps; ++rep) {
    min_into(full, time_pairs(set, 1, [&](auto a, auto b) {
               return align::local_align(a, b, scheme).cells;
             }));
    min_into(score, time_pairs(set, 1, [&](auto a, auto b) {
               return align::local_align_score(a, b, scheme).cells;
             }));
    min_into(banded_full, time_pairs(set, 1, [&](auto a, auto b) {
               return align::banded_local_align(a, b, scheme, 0, 32).cells;
             }));
    min_into(banded_score, time_pairs(set, 1, [&](auto a, auto b) {
               return align::banded_local_align_score(a, b, scheme, 0, 32)
                   .cells;
             }));
  }
  std::fprintf(f,
               "    {\"name\": \"local_align_full\", \"ns_per_cell\": %.3f, "
               "\"pairs_per_sec\": %.1f},\n",
               full.ns_per_cell(), full.pairs_per_sec());
  std::fprintf(f,
               "    {\"name\": \"local_align_score_only\", \"ns_per_cell\": "
               "%.3f, \"pairs_per_sec\": %.1f, \"speedup_vs_full\": %.2f},\n",
               score.ns_per_cell(), score.pairs_per_sec(),
               full.seconds / score.seconds);

  // -- score-only vs full-matrix, banded (the CCD inner loop) --------------
  std::fprintf(f,
               "    {\"name\": \"banded_local_align_full\", \"ns_per_cell\": "
               "%.3f, \"pairs_per_sec\": %.1f},\n",
               banded_full.ns_per_cell(), banded_full.pairs_per_sec());
  // speedup_vs_full_matrix is the acceptance headline: the score-only
  // banded fast path against the six-full-matrix path the predicates used
  // to run (same pairs, same rounds, so wall-clock ratios compare).
  std::fprintf(
      f,
      "    {\"name\": \"banded_local_align_score_only\", \"ns_per_cell\": "
      "%.3f, \"pairs_per_sec\": %.1f, \"speedup_vs_banded_full\": %.2f, "
      "\"speedup_vs_full_matrix\": %.2f},\n",
      banded_score.ns_per_cell(), banded_score.pairs_per_sec(),
      banded_full.seconds / banded_score.seconds,
      full.seconds / banded_score.seconds);

  // -- batched SIMD pair engine, per ISA tier ------------------------------
  // One row per ISA the host supports: the batched engine against the
  // scalar single-pair score engine over the SAME job list, with the same
  // minimum-over-interleaved-repetitions estimator as above.
  // speedup_vs_scalar_single on the widest tier is the tentpole
  // acceptance number.
  {
    // A batch-sized job pool (RR/CCD enqueue hundreds of candidates per
    // flush, not dozens) so the scheduler can form length-uniform chunks.
    const auto batch_set = bench_sequences(256, 200);
    std::vector<align::PairJob> jobs;
    for (seq::SeqId i = 0; i + 1 < batch_set.size(); ++i) {
      jobs.push_back(
          {batch_set.residues(i), batch_set.residues(i + 1), 0, -1});
    }
    std::vector<align::AlignmentResult> results(jobs.size());
    const align::Isa saved = align::current_isa();
    const align::Isa widest = align::detect_best_isa();
    const align::Isa tiers[] = {align::Isa::kScalar, align::Isa::kSse2,
                                align::Isa::kAvx2};
    constexpr int kReps = 9;
    double single_best = 1e300;
    double tier_best[3] = {1e300, 1e300, 1e300};
    std::uint64_t cells = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      {
        cells = 0;
        const auto t0 = std::chrono::steady_clock::now();
        for (const auto& job : jobs) {
          cells += align::local_align_score(job.a, job.b, scheme).cells;
        }
        single_best = std::min(single_best, seconds_since(t0));
      }
      for (int k = 0; k < 3; ++k) {
        if (static_cast<int>(tiers[k]) > static_cast<int>(widest)) continue;
        align::set_isa(tiers[k]);
        const auto t0 = std::chrono::steady_clock::now();
        align::align_score_batch(jobs.data(), jobs.size(), scheme,
                                 results.data());
        tier_best[k] = std::min(tier_best[k], seconds_since(t0));
      }
    }
    align::set_isa(saved);
    const double single_ns = single_best * 1e9 / static_cast<double>(cells);
    for (int k = 0; k < 3; ++k) {
      if (static_cast<int>(tiers[k]) > static_cast<int>(widest)) continue;
      const double ns = tier_best[k] * 1e9 / static_cast<double>(cells);
      std::fprintf(f,
                   "    {\"name\": \"batch_align_%s\", \"ns_per_cell\": "
                   "%.3f, \"pairs_per_sec\": %.1f, "
                   "\"single_pair_ns_per_cell\": %.3f, "
                   "\"speedup_vs_scalar_single\": %.2f},\n",
                   align::isa_name(tiers[k]), ns,
                   static_cast<double>(jobs.size()) / tier_best[k], single_ns,
                   single_ns / ns);
    }
  }

  // -- serial vs pooled batched CCD verdicts -------------------------------
  const auto ccd_set = bench_sequences(220, 120);
  std::vector<seq::SeqId> ids(ccd_set.size());
  std::iota(ids.begin(), ids.end(), 0u);
  const auto pairs = static_cast<double>(ids.size() * (ids.size() - 1) / 2);

  const auto t_serial0 = std::chrono::steady_clock::now();
  auto serial_cc = pace::detect_components_bruteforce(ccd_set, ids);
  const double serial_s = seconds_since(t_serial0);
  benchmark::DoNotOptimize(serial_cc.data());
  std::fprintf(f,
               "    {\"name\": \"ccd_bruteforce_serial\", \"threads\": 1, "
               "\"seconds\": %.3f, \"pairs_per_sec\": %.1f},\n",
               serial_s, pairs / serial_s);

  std::vector<unsigned> pool_sizes = {2u};
  if (hw > 2) pool_sizes.push_back(hw);
  for (std::size_t k = 0; k < pool_sizes.size(); ++k) {
    const unsigned threads = pool_sizes[k];
    exec::Pool pool(threads);
    const auto t0 = std::chrono::steady_clock::now();
    auto cc = pace::detect_components_bruteforce(ccd_set, ids, {}, nullptr,
                                                 &pool);
    const double s = seconds_since(t0);
    benchmark::DoNotOptimize(cc.data());
    std::fprintf(f,
                 "    {\"name\": \"ccd_bruteforce_pooled\", \"threads\": %u, "
                 "\"seconds\": %.3f, \"pairs_per_sec\": %.1f, "
                 "\"speedup_vs_serial\": %.2f}%s\n",
                 threads, s, pairs / s, serial_s / s,
                 k + 1 == pool_sizes.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (std::FILE* f = std::fopen("BENCH_kernels.json", "w")) {
    write_json(f);
    std::fclose(f);
    std::fprintf(stderr, "wrote BENCH_kernels.json\n");
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
