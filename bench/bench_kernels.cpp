// google-benchmark microbenchmarks of pclust's computational kernels:
// pairwise alignment, suffix-array + LCP construction, maximal-match
// enumeration, min-wise shingling, and union-find.
#include <benchmark/benchmark.h>

#include <numeric>

#include "common.hpp"
#include "pclust/align/pairwise.hpp"
#include "pclust/dsu/union_find.hpp"
#include "pclust/shingle/minwise.hpp"
#include "pclust/suffix/lcp.hpp"
#include "pclust/suffix/maximal_match.hpp"
#include "pclust/suffix/suffix_array.hpp"
#include "pclust/util/rng.hpp"

namespace {

using namespace pclust;

seq::SequenceSet bench_sequences(std::size_t n, std::uint32_t mean_length) {
  synth::DatasetSpec spec;
  spec.seed = 99;
  spec.num_sequences = static_cast<std::uint32_t>(n);
  spec.num_families = 4;
  spec.mean_length = mean_length;
  return synth::generate(spec).sequences;
}

void BM_LocalAlign(benchmark::State& state) {
  const auto set = bench_sequences(64, static_cast<std::uint32_t>(state.range(0)));
  const auto& scheme = align::blosum62();
  std::uint64_t cells = 0;
  seq::SeqId i = 0;
  for (auto _ : state) {
    const auto r = align::local_align(set.residues(i % set.size()),
                                      set.residues((i + 1) % set.size()),
                                      scheme);
    benchmark::DoNotOptimize(r.score);
    cells += r.cells;
    ++i;
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(cells), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LocalAlign)->Arg(80)->Arg(160)->Arg(320);

void BM_BandedLocalAlign(benchmark::State& state) {
  const auto set = bench_sequences(64, 160);
  const auto& scheme = align::blosum62();
  std::uint64_t cells = 0;
  seq::SeqId i = 0;
  for (auto _ : state) {
    const auto r = align::banded_local_align(
        set.residues(i % set.size()), set.residues((i + 1) % set.size()),
        scheme, 0, static_cast<std::uint32_t>(state.range(0)));
    benchmark::DoNotOptimize(r.score);
    cells += r.cells;
    ++i;
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(cells), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BandedLocalAlign)->Arg(16)->Arg(32)->Arg(64);

void BM_SuffixArray(benchmark::State& state) {
  const auto set = bench_sequences(static_cast<std::size_t>(state.range(0)), 160);
  const suffix::ConcatText text(set);
  for (auto _ : state) {
    auto sa = suffix::build_suffix_array(text.text(), seq::kIndexAlphabetSize);
    benchmark::DoNotOptimize(sa.data());
  }
  state.counters["chars/s"] = benchmark::Counter(
      static_cast<double>(text.size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SuffixArray)->Arg(200)->Arg(1000)->Arg(4000);

void BM_LcpArray(benchmark::State& state) {
  const auto set = bench_sequences(1000, 160);
  const suffix::ConcatText text(set);
  const auto sa =
      suffix::build_suffix_array(text.text(), seq::kIndexAlphabetSize);
  for (auto _ : state) {
    auto lcp = suffix::build_lcp(text, sa);
    benchmark::DoNotOptimize(lcp.data());
  }
  state.counters["chars/s"] = benchmark::Counter(
      static_cast<double>(text.size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LcpArray);

void BM_MaximalMatchEnumeration(benchmark::State& state) {
  const auto set = bench_sequences(static_cast<std::size_t>(state.range(0)), 160);
  const suffix::ConcatText text(set);
  const auto sa =
      suffix::build_suffix_array(text.text(), seq::kIndexAlphabetSize);
  const auto lcp = suffix::build_lcp(text, sa);
  suffix::MaximalMatchParams mp;
  mp.min_length = 10;
  const suffix::MaximalMatchEnumerator enumerator(text, sa, lcp, mp);
  std::uint64_t pairs = 0;
  for (auto _ : state) {
    enumerator.enumerate(0, static_cast<std::int32_t>(sa.size()) - 1,
                         [&pairs](const suffix::MaximalMatch&) {
                           ++pairs;
                           return true;
                         });
  }
  state.counters["pairs/s"] = benchmark::Counter(
      static_cast<double>(pairs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MaximalMatchEnumeration)->Arg(500)->Arg(2000);

void BM_ShingleSet(benchmark::State& state) {
  std::vector<std::uint32_t> links(static_cast<std::size_t>(state.range(0)));
  std::iota(links.begin(), links.end(), 0u);
  std::uint64_t shingles = 0;
  for (auto _ : state) {
    const auto set = shingle::shingle_set(links, 5, 300, 42);
    shingles += set.size();
    benchmark::DoNotOptimize(shingles);
  }
  state.counters["shingles/s"] = benchmark::Counter(
      static_cast<double>(shingles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShingleSet)->Arg(16)->Arg(64)->Arg(256);

void BM_UnionFind(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(7);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ops(n * 4);
  for (auto& [a, b] : ops) {
    a = static_cast<std::uint32_t>(rng.below(n));
    b = static_cast<std::uint32_t>(rng.below(n));
  }
  for (auto _ : state) {
    dsu::UnionFind uf(n);
    for (const auto& [a, b] : ops) uf.merge(a, b);
    benchmark::DoNotOptimize(uf.set_count());
  }
  state.counters["ops/s"] = benchmark::Counter(
      static_cast<double>(ops.size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_UnionFind)->Arg(10'000)->Arg(100'000);

}  // namespace
