// Ablation: aggressive work generation (the paper's §V remedy for the CCD
// scaling loss — "a more aggressive work generation scheme is required to
// compensate for work loss").
//
// generation_batches controls how many pair batches each worker pushes to
// the master per protocol round; 1 reproduces the paper's behaviour, larger
// values keep the master's pending queue (and thus the workers) fuller at
// high processor counts.
#include <cstdio>

#include "common.hpp"
#include "pclust/mpsim/machine_model.hpp"
#include "pclust/pace/components.hpp"
#include "pclust/pace/redundancy.hpp"
#include "pclust/util/strings.hpp"
#include "pclust/util/table.hpp"

int main() {
  using namespace pclust;
  using namespace pclust::bench;

  const auto spec = synth::paper_160k(80.0 * 1000.0 * kScale / 160'000.0, 42);
  const synth::Dataset data = synth::generate(spec);
  const auto model = mpsim::MachineModel::bluegene_l();

  util::Table table({"generation", "CCD p=32", "CCD p=128", "CCD p=512",
                     "speedup 32->512"});
  table.set_title("Ablation: aggressive work generation (CCD phase, "
                  "80K-analog input)");
  for (std::uint32_t batches : {1u, 4u, 16u}) {
    pace::PaceParams params = bench_pace_params();
    params.generation_batches = batches;
    pace::PaceParams rr_params = params;
    rr_params.band = 0;

    std::vector<double> times;
    for (int p : {32, 128, 512}) {
      const auto rr =
          pace::remove_redundant(data.sequences, p, model, rr_params);
      const auto ccd = pace::detect_components(data.sequences, rr.survivors(),
                                               p, model, params);
      times.push_back(ccd.run.makespan);
      std::fprintf(stderr, "  [batches=%u p=%d done]\n", batches, p);
    }
    table.add_row({util::format("%u batch%s/round", batches,
                                batches == 1 ? "" : "es"),
                   util::format("%.2f", times[0]),
                   util::format("%.2f", times[1]),
                   util::format("%.2f", times[2]),
                   util::format("%.2fx", times[0] / times[2])});
  }
  table.add_footnote("paper §V: CCD scaling stalls because filtered pairs "
                     "leave workers starved; eager generation refills the "
                     "master's queue.");
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
