// Ablation: maximal-match filter vs all-versus-all.
//
// The paper reports that on the 40K input, 168M promising pairs were
// generated and only 7M aligned, vs C(40K,2) ≈ 800M all-vs-all alignments —
// a 99% work reduction. This bench reproduces the comparison on the scaled
// 40K analog: the pipeline's aligned-pair count and DP cells vs the
// brute-force baseline's.
#include <cstdio>

#include "common.hpp"
#include "pclust/pace/reference.hpp"
#include "pclust/util/strings.hpp"
#include "pclust/util/table.hpp"

int main() {
  using namespace pclust;
  using namespace pclust::bench;

  const synth::Dataset data = synth::generate(
      synth::paper_160k(40'000.0 * kScale / 160'000.0));
  const auto params = bench_pace_params();
  const std::uint64_t n = data.sequences.size();

  // Heuristic pipeline (RR + CCD, serial drivers).
  const auto rr = pace::remove_redundant_serial(data.sequences, params);
  const auto ccd = pace::detect_components_serial(data.sequences,
                                                  rr.survivors(), params);
  const std::uint64_t promising =
      rr.counters.promising_pairs + ccd.counters.promising_pairs;
  const std::uint64_t aligned =
      rr.counters.aligned_pairs + ccd.counters.aligned_pairs;

  // All-versus-all baseline (Definition-2 sweep over the same input).
  std::vector<seq::SeqId> all_ids(data.sequences.size());
  for (seq::SeqId i = 0; i < data.sequences.size(); ++i) all_ids[i] = i;
  pace::BruteForceStats brute;
  const auto brute_components =
      pace::detect_components_bruteforce(data.sequences, all_ids, params,
                                         &brute);

  util::Table table({"approach", "pair visits", "alignments computed",
                     "reduction vs all-pairs"});
  table.set_title(util::format(
      "Ablation: exact-match filtering, 40K-analog input (n = %llu)",
      static_cast<unsigned long long>(n)));
  const std::uint64_t all_pairs = n * (n - 1) / 2;
  table.add_row({"all-versus-all",
                 util::with_commas(static_cast<long long>(brute.alignments)),
                 util::with_commas(static_cast<long long>(brute.alignments)),
                 "0%"});
  table.add_row(
      {"pclust (filter + transitive closure)",
       util::with_commas(static_cast<long long>(promising)),
       util::with_commas(static_cast<long long>(aligned)),
       util::format("%.1f%%", 100.0 * (1.0 - static_cast<double>(aligned) /
                                                 static_cast<double>(
                                                     all_pairs)))});
  table.add_footnote(util::format(
      "components found: brute-force %zu vs heuristic %zu (size >= 5)",
      brute_components.size(), ccd.components.size()));
  table.add_footnote("paper (40K): 168M promising pairs, 7M aligned, ~800M "
                     "all-vs-all => 99% reduction");
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
