// Ablation: B_d (global similarity) vs B_m (domain based).
//
// The paper implemented B_d and proposed B_m as future work; pclust has
// both. This bench runs the full pipeline under each reduction on the same
// sample and compares family counts, coverage, quality vs ground truth, and
// edge-construction work (B_m needs no alignments at all).
#include <cstdio>

#include "common.hpp"
#include "pclust/quality/metrics.hpp"
#include "pclust/util/strings.hpp"
#include "pclust/util/table.hpp"

int main() {
  using namespace pclust;
  using namespace pclust::bench;

  const synth::Dataset data = synth::generate(synth::paper_160k(kScale));
  const auto benchmark = data.truth.benchmark_clusters(5);

  util::Table table({"reduction", "#DS", "#seq in DS", "PR", "SE", "CC",
                     "BGG+DSD time (s)"});
  table.set_title("Ablation: global-similarity (B_d) vs domain-based (B_m) "
                  "reduction, 160K analog");

  const auto run_case = [&](const char* name, bigraph::Reduction reduction) {
    pipeline::PipelineConfig config;
    config.pace = bench_pace_params();
    config.shingle = bench_shingle_params();
    config.reduction = reduction;
    config.bm.w = 10;
    const auto result = pipeline::run(data.sequences, config);
    const auto m = quality::compare_clusterings(result.family_clustering(),
                                                benchmark);
    table.add_row({name, std::to_string(result.families.size()),
                   std::to_string(result.sequences_in_subgraphs),
                   util::format("%.1f%%", m.precision * 100),
                   util::format("%.1f%%", m.sensitivity * 100),
                   util::format("%.1f%%", m.correlation * 100),
                   util::format("%.2f", result.bgg_dsd_seconds)});
  };

  run_case("B_d (global similarity)", bigraph::Reduction::kDuplicate);
  run_case("B_m (domain based, w=10)", bigraph::Reduction::kMatchBased);
  table.add_footnote("the paper's implementation supported only B_d; B_m is "
                     "its proposed domain-based variant (§III, §VI).");
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
