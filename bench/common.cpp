#include "common.hpp"

#include "pclust/mpsim/machine_model.hpp"
#include "pclust/util/strings.hpp"

namespace pclust::bench {

pace::PaceParams bench_pace_params() {
  pace::PaceParams params;
  params.psi = 10;
  params.band = 32;
  params.batch_size = 256;
  return params;
}

shingle::ShingleParams bench_shingle_params() {
  shingle::ShingleParams params;
  params.s1 = 4;
  params.c1 = 150;
  params.s2 = 2;
  params.c2 = 60;
  params.min_size = 5;
  params.tau = 0.4;
  return params;
}

RrCcdTimes run_rr_ccd(int paper_k, int p, std::uint64_t seed) {
  // paper_k thousand paper sequences, scaled: n = paper_k * 1000 * kScale.
  const auto spec = synth::paper_160k(
      static_cast<double>(paper_k) * 1000.0 * kScale / 160'000.0, seed);
  const synth::Dataset data = synth::generate(spec);
  const auto model = mpsim::MachineModel::bluegene_l();
  const auto params = bench_pace_params();

  RrCcdTimes out;
  out.sequences = data.sequences.size();
  out.processors = p;
  // RR verifies containment with full DP (95 % cutoff); CCD's 30 % overlap
  // test tolerates the banded accelerator.
  pace::PaceParams rr_params = params;
  rr_params.band = 0;
  const auto rr =
      pace::remove_redundant(data.sequences, p, model, rr_params);
  out.rr_seconds = rr.run.makespan;
  const auto survivors = rr.survivors();
  const auto ccd =
      pace::detect_components(data.sequences, survivors, p, model, params);
  out.ccd_seconds = ccd.run.makespan;
  out.promising =
      rr.counters.promising_pairs + ccd.counters.promising_pairs;
  out.aligned = rr.counters.aligned_pairs + ccd.counters.aligned_pairs;
  return out;
}

std::string paper_n_label(int paper_k) {
  return util::format("n=%dk", paper_k);
}

}  // namespace pclust::bench
