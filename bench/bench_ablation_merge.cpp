// Ablation: the transitive-closure merge filter.
//
// During CCD the master skips alignment for any promising pair already in
// one cluster; the paper observes >99.9% of pairs eliminated this way —
// the very effect that causes the poor CCD scaling of Table II. This bench
// quantifies the filter on scaled inputs and shows how the skip rate grows
// with input size (denser families => earlier merges => more skips).
#include <cstdio>

#include "common.hpp"
#include "pclust/util/strings.hpp"
#include "pclust/util/table.hpp"

int main() {
  using namespace pclust;
  using namespace pclust::bench;

  util::Table table({"input", "promising pairs", "duplicates", "same-cluster",
                     "aligned", "filtered"});
  table.set_title(
      "Ablation: CCD transitive-closure filtering (serial driver)");
  for (int paper_k : {10, 20, 40, 80}) {
    const auto spec = synth::paper_160k(
        static_cast<double>(paper_k) * 1000.0 * kScale / 160'000.0);
    const synth::Dataset data = synth::generate(spec);
    const auto params = bench_pace_params();
    const auto rr = pace::remove_redundant_serial(data.sequences, params);
    const auto ccd = pace::detect_components_serial(data.sequences,
                                                    rr.survivors(), params);
    const auto& c = ccd.counters;
    table.add_row(
        {paper_n_label(paper_k),
         util::with_commas(static_cast<long long>(c.promising_pairs)),
         util::with_commas(static_cast<long long>(c.duplicate_pairs)),
         util::with_commas(static_cast<long long>(c.filtered_pairs)),
         util::with_commas(static_cast<long long>(c.aligned_pairs)),
         util::format("%.2f%%",
                      100.0 * static_cast<double>(c.duplicate_pairs +
                                                  c.filtered_pairs) /
                          static_cast<double>(c.promising_pairs))});
    std::fprintf(stderr, "  [%s done]\n", paper_n_label(paper_k).c_str());
  }
  table.add_footnote(
      "paper: >99.9% of promising pairs eliminated before alignment on the "
      "full-size runs.");
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
