// Table II — RR and CCD phase run-times for the 80K input at p = 32, 64,
// 128, 512 (paper, seconds on BlueGene/L):
//
//        p:     32      64     128    512
//   RR      17,476  10,296   4,560  2,207     (scales ~linearly)
//   CCD      1,068     777     528    670     (scales poorly; worsens late)
//
// This bench replays the scaled 80K analog on the mpsim BlueGene/L model.
// Shape targets: RR dominates at every p and keeps improving; CCD improves
// much more slowly (the master's transitive-closure filter starves
// workers).
#include <cstdio>

#include "common.hpp"
#include "pclust/mpsim/machine_model.hpp"
#include "pclust/pace/components.hpp"
#include "pclust/pace/redundancy.hpp"
#include "pclust/util/strings.hpp"
#include "pclust/util/table.hpp"

int main() {
  using namespace pclust;
  using namespace pclust::bench;

  constexpr int kPaperK = 80;
  util::Table table({"Phase", "p=32", "p=64", "p=128", "p=512"});
  table.set_title("TABLE II analog — RR and CCD run-times (simulated "
                  "BlueGene/L seconds), 80K-analog input");

  std::vector<std::string> rr_row = {"RR"};
  std::vector<std::string> ccd_row = {"CCD"};
  std::vector<std::string> share_row = {"RR share"};
  for (int p : kProcessorCounts) {
    const auto t = run_rr_ccd(kPaperK, p);
    rr_row.push_back(util::format("%.1f", t.rr_seconds));
    ccd_row.push_back(util::format("%.1f", t.ccd_seconds));
    share_row.push_back(util::format("%.0f%%", 100.0 * t.rr_seconds /
                                                   t.total()));
    std::fprintf(stderr, "  [p=%d done: n=%zu]\n", p, t.sequences);
  }
  table.add_row(rr_row);
  table.add_row(ccd_row);
  table.add_row(share_row);
  table.add_footnote(
      "paper RR:  17,476 | 10,296 | 4,560 | 2,207   CCD: 1,068 | 777 | 528 "
      "| 670");
  std::fputs(table.to_string().c_str(), stdout);

  // ---- Full-scale master-load extrapolation ------------------------------
  // Promising-pair volume grows ~quadratically with family size, so the
  // paper's 80K run pushed ~1,700x more pairs through the master than this
  // scaled analog; at that volume the master's per-pair handling is what
  // flattens (and eventually worsens) the CCD curve. Replaying the same
  // runs with the per-pair master cost inflated by the volume ratio makes
  // the mechanism visible at bench scale.
  {
    const auto spec = synth::paper_160k(
        static_cast<double>(kPaperK) * 1000.0 * kScale / 160'000.0, 42);
    const synth::Dataset data = synth::generate(spec);
    auto model = mpsim::MachineModel::bluegene_l();
    model.find_cost *= 12.0;  // per-pair master load at full-scale volume
    const auto params = bench_pace_params();
    pace::PaceParams rr_params = params;
    rr_params.band = 0;

    util::Table extra({"Phase", "p=32", "p=64", "p=128", "p=512"});
    extra.set_title("\nFull-scale master-load extrapolation (per-pair master "
                    "cost x volume ratio): CCD flattens as in the paper");
    std::vector<std::string> rr2 = {"RR"};
    std::vector<std::string> ccd2 = {"CCD"};
    for (int p : kProcessorCounts) {
      const auto rr =
          pace::remove_redundant(data.sequences, p, model, rr_params);
      const auto ccd = pace::detect_components(data.sequences, rr.survivors(),
                                               p, model, params);
      rr2.push_back(util::format("%.1f", rr.run.makespan));
      ccd2.push_back(util::format("%.1f", ccd.run.makespan));
      std::fprintf(stderr, "  [extrapolated p=%d done]\n", p);
    }
    extra.add_row(rr2);
    extra.add_row(ccd2);
    std::fputs(extra.to_string().c_str(), stdout);
  }
  return 0;
}
