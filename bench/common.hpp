// Shared helpers for the bench harness.
//
// Every bench is a scaled analog of a paper experiment: the workload is the
// synthetic CAMERA substitute (synth presets), RR/CCD run on the mpsim
// BlueGene/L model, and DSD runs (really) on the host like the paper's
// serial Shingle code ran on one Xeon. kScale maps the paper's sequence
// counts onto sizes this harness can sweep in minutes:
// paper n (10K..160K) * kScale -> bench n.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pclust/pace/components.hpp"
#include "pclust/pace/params.hpp"
#include "pclust/pace/redundancy.hpp"
#include "pclust/pipeline/pipeline.hpp"
#include "pclust/synth/presets.hpp"

namespace pclust::bench {

/// Paper-size -> bench-size factor (1/40: the paper's 80 K input becomes
/// 2,000 sequences).
inline constexpr double kScale = 1.0 / 40.0;

/// The processor counts of the paper's BlueGene/L runs.
inline const std::vector<int> kProcessorCounts = {32, 64, 128, 512};

/// Paper input sizes (in thousands) used by Figs. 6-7.
inline const std::vector<int> kInputSizesK = {10, 20, 40, 80, 160};

/// PaceParams used by all performance benches: ψ = 10 as in the paper's
/// 40 K experiment, banded verification alignments (band 32) — the
/// production configuration.
[[nodiscard]] pace::PaceParams bench_pace_params();

/// Shingle parameters scaled to bench-size components (the paper's (5,300)
/// targets 20 K-sequence components).
[[nodiscard]] shingle::ShingleParams bench_shingle_params();

struct RrCcdTimes {
  std::size_t sequences = 0;
  int processors = 0;
  double rr_seconds = 0.0;        // simulated
  double ccd_seconds = 0.0;       // simulated
  std::uint64_t promising = 0;    // RR + CCD promising pairs
  std::uint64_t aligned = 0;      // RR + CCD aligned pairs
  [[nodiscard]] double total() const { return rr_seconds + ccd_seconds; }
};

/// Run RR then CCD for the paper_160k analog at `paper_k` thousand paper
/// sequences (scaled by kScale) on p simulated BlueGene/L ranks.
[[nodiscard]] RrCcdTimes run_rr_ccd(int paper_k, int p,
                                    std::uint64_t seed = 42);

/// Label like "n=10k" using PAPER units for axis compatibility.
[[nodiscard]] std::string paper_n_label(int paper_k);

}  // namespace pclust::bench
