// Ablation: the Shingle (s, c) parameter space.
//
// §IV-D: larger s lowers the probability two vertices share a shingle
// (stricter, denser subgraphs); larger c counteracts it (better coverage,
// more work). This bench sweeps both on a fixed set of component graphs
// and reports subgraph counts, coverage, density, and run time.
#include <cstdio>

#include "common.hpp"
#include "pclust/bigraph/builders.hpp"
#include "pclust/shingle/shingle.hpp"
#include "pclust/util/strings.hpp"
#include "pclust/util/table.hpp"
#include "pclust/util/timer.hpp"

int main() {
  using namespace pclust;
  using namespace pclust::bench;

  const synth::Dataset data = synth::generate(synth::paper_160k(kScale));
  const auto params = bench_pace_params();
  const auto rr = pace::remove_redundant_serial(data.sequences, params);
  const auto ccd = pace::detect_components_serial(data.sequences,
                                                  rr.survivors(), params);
  std::vector<bigraph::ComponentGraph> graphs;
  bigraph::BdParams bd;
  bd.pace = params;
  for (const auto& component : ccd.components) {
    if (component.size() >= 5) {
      graphs.push_back(bigraph::build_bd(data.sequences, component, bd));
    }
  }
  std::fprintf(stderr, "  [%zu component graphs built]\n", graphs.size());

  util::Table table({"(s, c)", "#DS", "#seq in DS", "mean density",
                     "DSD time (s)"});
  table.set_title("Ablation: Shingle (s, c) sweep on the 160K-analog "
                  "components (B_d reduction)");
  for (std::uint32_t s : {3u, 5u, 7u}) {
    for (std::uint32_t c : {50u, 150u, 300u}) {
      shingle::ShingleParams sp = bench_shingle_params();
      sp.s1 = s;
      sp.c1 = c;
      util::Timer timer;
      std::size_t subgraphs = 0, covered = 0;
      double density_sum = 0.0;
      for (const auto& graph : graphs) {
        for (const auto& family : shingle::report_families(graph, sp)) {
          ++subgraphs;
          covered += family.size();
          std::vector<std::uint32_t> nodes;
          for (seq::SeqId id : family) {
            for (std::uint32_t v = 0; v < graph.members.size(); ++v) {
              if (graph.members[v] == id) {
                nodes.push_back(v);
                break;
              }
            }
          }
          density_sum += bigraph::subgraph_density(graph.graph, nodes);
        }
      }
      table.add_row({util::format("(%u, %u)", s, c),
                     std::to_string(subgraphs), std::to_string(covered),
                     subgraphs ? util::format("%.0f%%", 100.0 * density_sum /
                                                            static_cast<double>(
                                                                subgraphs))
                               : "-",
                     util::format("%.3f", timer.elapsed_seconds())});
    }
    std::fprintf(stderr, "  [s=%u done]\n", s);
  }
  table.add_footnote("paper's tuned choice for the ORF data: (5, 300); "
                     "smaller s finds sparser subgraphs, larger c costs "
                     "time.");
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
