// Figure 7a — speedup of RR+CCD relative to the 32-node system, one series
// per input size, with the ideal line (paper: speedups closer to linear for
// larger inputs; from 128 to 512 nodes only 3.6 -> 6.7 vs ideal 4 -> 16).
//
// Shape targets: larger inputs scale better; all series fall away from
// ideal at high p.
#include <cstdio>

#include "common.hpp"
#include "pclust/util/strings.hpp"
#include "pclust/util/table.hpp"

int main() {
  using namespace pclust;
  using namespace pclust::bench;

  util::Table table({"series", "p=32", "p=64", "p=128", "p=512"});
  table.set_title("Figure 7a analog — RR+CCD speedup relative to p=32");
  // The paper's Fig. 7a plots n = 10K..80K (160K lacks a 32-node run).
  for (int paper_k : {10, 20, 40, 80}) {
    std::vector<std::string> row = {paper_n_label(paper_k)};
    double base = 0.0;
    for (int p : kProcessorCounts) {
      const auto t = run_rr_ccd(paper_k, p);
      if (p == 32) base = t.total();
      row.push_back(util::format("%.2fx", base / t.total()));
    }
    table.add_row(row);
    std::fprintf(stderr, "  [%s done]\n", paper_n_label(paper_k).c_str());
  }
  table.add_row({"ideal", "1.00x", "2.00x", "4.00x", "16.00x"});
  table.add_footnote(
      "paper: closer-to-linear for larger inputs; 128->512 gains only "
      "~1.9x of the ideal 4x.");
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
