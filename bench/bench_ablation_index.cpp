// Ablation: suffix-index backends.
//
// The maximal-match pairs can be enumerated from the flat SA+LCP interval
// scan (pclust's default) or from the materialized generalized suffix tree.
// Both produce the identical pair set; this bench compares build time and
// memory footprint — the reason the flat backend is the default.
#include <cstdio>

#include "common.hpp"
#include "pclust/suffix/lcp.hpp"
#include "pclust/suffix/maximal_match.hpp"
#include "pclust/suffix/suffix_array.hpp"
#include "pclust/suffix/suffix_tree.hpp"
#include "pclust/util/strings.hpp"
#include "pclust/util/table.hpp"
#include "pclust/util/timer.hpp"

int main() {
  using namespace pclust;
  using namespace pclust::bench;

  util::Table table({"input", "SA+LCP build (s)", "pairs", "flat enum (s)",
                     "+GST materialize (s)", "tree enum (s)", "GST nodes",
                     "GST bytes"});
  table.set_title("Ablation: flat SA+LCP enumeration vs materialized GST");

  for (int paper_k : {10, 40, 160}) {
    const auto spec = synth::paper_160k(
        static_cast<double>(paper_k) * 1000.0 * kScale / 160'000.0);
    const synth::Dataset data = synth::generate(spec);

    util::Timer timer;
    const suffix::ConcatText text(data.sequences);
    const auto sa =
        suffix::build_suffix_array(text.text(), seq::kIndexAlphabetSize);
    const auto lcp = suffix::build_lcp(text, sa);
    const double build_seconds = timer.elapsed_seconds();

    suffix::MaximalMatchParams mp;
    mp.min_length = 10;
    const suffix::MaximalMatchEnumerator enumerator(text, sa, lcp, mp);
    timer.reset();
    std::uint64_t pairs = 0;
    enumerator.enumerate(0, static_cast<std::int32_t>(sa.size()) - 1,
                         [&pairs](const suffix::MaximalMatch&) {
                           ++pairs;
                           return true;
                         });
    const double enum_seconds = timer.elapsed_seconds();

    timer.reset();
    const suffix::SuffixTree tree(text, sa, lcp);
    const double tree_seconds = timer.elapsed_seconds();
    const std::uint64_t tree_bytes =
        tree.node_count() * sizeof(suffix::SuffixTree::Node) +
        sa.size() * sizeof(std::int32_t);  // leaf-parent array

    timer.reset();
    std::uint64_t tree_pairs = 0;
    suffix::enumerate_from_tree(tree, text, sa, mp,
                                [&tree_pairs](const suffix::MaximalMatch&) {
                                  ++tree_pairs;
                                  return true;
                                });
    const double tree_enum_seconds = timer.elapsed_seconds();
    if (tree_pairs != pairs) {
      std::fprintf(stderr, "BACKEND MISMATCH: %llu vs %llu pairs\n",
                   static_cast<unsigned long long>(tree_pairs),
                   static_cast<unsigned long long>(pairs));
      return 1;
    }

    table.add_row(
        {paper_n_label(paper_k), util::format("%.3f", build_seconds),
         util::with_commas(static_cast<long long>(pairs)),
         util::format("%.3f", enum_seconds),
         util::format("%.3f", tree_seconds),
         util::format("%.3f", tree_enum_seconds),
         util::with_commas(static_cast<long long>(tree.node_count())),
         util::with_commas(static_cast<long long>(tree_bytes))});
    std::fprintf(stderr, "  [%s done]\n", paper_n_label(paper_k).c_str());
  }
  table.add_footnote("both backends enumerate the identical maximal-match "
                     "pair set (tested in tests/suffix).");
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
