// §V quality comparison — PR/SE/OQ/CC of the dense-subgraph clustering
// (Test) against the benchmark clustering the sample was drawn from
// (paper: the GOS clusters; here: the generator's ground-truth families).
//
// Paper (160K): PR = 95.75 %, SE = 56.89 %, OQ = 55.49 %, CC = 73.04 %.
// Shape targets: PR high (most of our co-clustering is preserved in the
// benchmark), SE clearly lower (dense subgraphs fragment families), CC in
// between.
#include <cstdio>

#include "common.hpp"
#include "pclust/quality/metrics.hpp"
#include "pclust/util/strings.hpp"
#include "pclust/util/table.hpp"

int main() {
  using namespace pclust;
  using namespace pclust::bench;

  util::Table table(
      {"data set", "#DS", "#benchmark clusters", "PR", "SE", "OQ", "CC"});
  table.set_title("Quality analog — pclust dense subgraphs vs benchmark "
                  "clustering (paper §V, eqs. 1-4)");

  const auto run_case = [&](const char* name, const synth::DatasetSpec& spec) {
    const synth::Dataset data = synth::generate(spec);
    pipeline::PipelineConfig config;
    config.pace = bench_pace_params();
    config.shingle = bench_shingle_params();
    const auto result = pipeline::run(data.sequences, config);
    const auto benchmark = data.truth.benchmark_clusters(5);
    const auto m = quality::compare_clusterings(result.family_clustering(),
                                                benchmark);
    table.add_row({name, std::to_string(result.families.size()),
                   std::to_string(benchmark.size()),
                   util::format("%.2f%%", m.precision * 100),
                   util::format("%.2f%%", m.sensitivity * 100),
                   util::format("%.2f%%", m.overlap_quality * 100),
                   util::format("%.2f%%", m.correlation * 100)});
  };

  run_case("160K analog", synth::paper_160k(kScale));
  run_case("22K analog", synth::paper_22k(kScale));

  table.add_footnote(
      "paper (160K): 850 DS vs 221 GOS clusters; PR=95.75% SE=56.89% "
      "OQ=55.49% CC=73.04%");
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
