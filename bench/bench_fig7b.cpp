// Figure 7b — serial dense-subgraph-detection run-time as a function of
// input size and shingle parameters (s=5, c=100/200/300/400).
//
// The paper ran the serial Shingle code on one Xeon; so do we (real wall
// time, not simulation). Shape targets: run-time increases with c (more
// shingles => more work) and with input size.
#include <cstdio>

#include "common.hpp"
#include "pclust/bigraph/builders.hpp"
#include "pclust/shingle/shingle.hpp"
#include "pclust/util/strings.hpp"
#include "pclust/util/table.hpp"
#include "pclust/util/timer.hpp"

int main() {
  using namespace pclust;
  using namespace pclust::bench;

  // Build a pool of component bipartite graphs once (from the 160K analog),
  // then time the Shingle stage alone for growing prefixes of the pool —
  // the paper's batches of connected components.
  const synth::Dataset data = synth::generate(synth::paper_160k(kScale));
  const auto pace_params = bench_pace_params();
  const auto rr = pace::remove_redundant_serial(data.sequences, pace_params);
  const auto ccd = pace::detect_components_serial(data.sequences,
                                                  rr.survivors(), pace_params);
  std::vector<bigraph::ComponentGraph> graphs;
  bigraph::BdParams bd;
  bd.pace = pace_params;
  // Ascending component size, so growing prefixes grow the input-size axis
  // smoothly (ccd.components is descending).
  for (auto it = ccd.components.rbegin(); it != ccd.components.rend(); ++it) {
    if (it->size() < 5) continue;
    graphs.push_back(bigraph::build_bd(data.sequences, *it, bd));
  }
  std::fprintf(stderr, "  [%zu component graphs built]\n", graphs.size());

  // Input-size axis: prefixes covering ~25/50/75/100 % of the DSD-stage
  // sequences (cumulative component sizes).
  std::size_t total_sequences = 0;
  for (const auto& g : graphs) total_sequences += g.members.size();
  std::vector<std::size_t> prefix_counts;
  std::vector<std::string> header = {"series"};
  for (double fraction : {0.2, 0.4, 0.7, 1.0}) {
    std::size_t covered = 0, count = 0;
    for (const auto& g : graphs) {
      if (static_cast<double>(covered) >=
          fraction * static_cast<double>(total_sequences)) {
        break;
      }
      covered += g.members.size();
      ++count;
    }
    // Keep the x-axis strictly increasing even when one giant component
    // dominates the tail.
    if (!prefix_counts.empty() && count <= prefix_counts.back()) {
      count = std::min(prefix_counts.back() + 1, graphs.size());
      covered = 0;
      for (std::size_t g = 0; g < count; ++g) {
        covered += graphs[g].members.size();
      }
    }
    prefix_counts.push_back(count);
    header.push_back(util::format("%zu seqs", covered));
  }
  util::Table table(header);
  table.set_title(
      "Figure 7b analog — serial DSD run-time (measured seconds) vs input "
      "size and (s, c)");
  for (std::uint32_t c : {100u, 200u, 300u, 400u}) {
    shingle::ShingleParams params = bench_shingle_params();
    params.s1 = 5;
    params.c1 = c;
    std::vector<std::string> row = {util::format("S=5, C=%u", c)};
    for (std::size_t count : prefix_counts) {
      util::Timer timer;
      std::size_t families = 0;
      for (std::size_t g = 0; g < count; ++g) {
        families += shingle::report_families(graphs[g], params).size();
      }
      row.push_back(util::format("%.3f", timer.elapsed_seconds()));
    }
    table.add_row(row);
    std::fprintf(stderr, "  [C=%u done]\n", c);
  }
  table.add_footnote("paper: run-time increases with C (more shingles) and "
                     "with input size; largest 20K component < 10 min.");
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
