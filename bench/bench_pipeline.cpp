// End-to-end pipeline benchmark: run the full four-phase pipeline on the
// scaled 160K analog and emit the structured run report as
// BENCH_pipeline.json. The report path is the same one `pclust families
// --report-out` uses, so the perf trajectory records real phase times
// (timing.*), the alignment-work identity, and the full metrics-registry
// snapshot per PR.
#include <cstdio>
#include <cstdlib>

#include "common.hpp"
#include "pclust/pipeline/report.hpp"
#include "pclust/util/metrics.hpp"
#include "pclust/util/telemetry.hpp"

int main() {
  using namespace pclust;
  using namespace pclust::bench;

  const synth::Dataset data = synth::generate(synth::paper_160k(kScale));
  pipeline::PipelineConfig config;
  config.pace = bench_pace_params();
  config.shingle = bench_shingle_params();
  config.min_component = config.shingle.min_size;

  // PCLUST_TELEMETRY_OUT streams telemetry during the bench — the overhead
  // gate in check.sh diffs this run's wall time against a plain run.
  const char* telemetry_out = std::getenv("PCLUST_TELEMETRY_OUT");
  if (telemetry_out && *telemetry_out) {
    util::telemetry::TelemetryConfig telemetry;
    telemetry.path = telemetry_out;
    telemetry.command = "bench_pipeline";
    if (const char* iv = std::getenv("PCLUST_TELEMETRY_INTERVAL");
        iv && *iv) {
      telemetry.interval = std::atof(iv);
    } else {
      telemetry.interval = 0.5;
    }
    util::telemetry::enable(telemetry);
  }

  util::metrics().reset();
  const pipeline::PipelineResult result = pipeline::run(data.sequences, config);

  pipeline::write_report("BENCH_pipeline.json", result, config,
                         {"bench_pipeline", "synth:paper_160k-analog"});
  if (telemetry_out && *telemetry_out) util::telemetry::disable();
  std::fprintf(stderr, "wrote BENCH_pipeline.json\n");
  std::printf(
      "pipeline bench: n=%zu  RR %.3fs  CCD %.3fs  BGG+DSD %.3fs  "
      "(%zu families, skip ratio see BENCH_pipeline.json)\n",
      result.input_sequences, result.rr_seconds, result.ccd_seconds,
      result.bgg_dsd_seconds, result.families.size());
  return 0;
}
