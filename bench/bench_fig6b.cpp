// Figure 6b — combined RR+CCD run-time as a function of input size, one
// series per processor count (the transpose of Fig. 6a).
//
// Shape targets: run-time grows superlinearly-to-quadratically with n
// (asymptotic worst case is quadratic; the clustering heuristic keeps the
// observed curve below it), and higher p sits lower.
#include <cstdio>

#include "common.hpp"
#include "pclust/util/strings.hpp"
#include "pclust/util/table.hpp"

int main() {
  using namespace pclust;
  using namespace pclust::bench;

  util::Table table({"series", "n=10k", "n=20k", "n=40k", "n=80k", "n=160k"});
  table.set_title("Figure 6b analog — RR+CCD run-time (simulated BG/L "
                  "seconds) vs input size (paper-unit n)");
  for (int p : kProcessorCounts) {
    std::vector<std::string> row = {util::format("p=%d", p)};
    for (int paper_k : kInputSizesK) {
      const auto t = run_rr_ccd(paper_k, p);
      row.push_back(util::format("%.1f", t.total()));
    }
    table.add_row(row);
    std::fprintf(stderr, "  [p=%d done]\n", p);
  }
  table.add_footnote("shape: superlinear growth in n; higher p lower.");
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
