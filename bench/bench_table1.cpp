// Table I — qualitative assessment on the 22K and 160K data sets.
//
// Paper (components with >= 5 sequences):
//   160,000 | 138,633 | 1,861 | 850 | 66,083 | 26 | 76% | 13,263
//    22,186 |  21,348 |     1 | 134 | 11,524 | 20 | 78% |  6,828
//
// This bench runs scaled analogs (kScale) and prints the same columns.
// Shape targets: RR removes ~13% / ~4%; many components collapse to fewer
// dense subgraphs; mean density in the 70s; one dominant largest subgraph.
#include <cstdio>

#include "common.hpp"
#include "pclust/util/strings.hpp"
#include "pclust/util/table.hpp"

int main() {
  using namespace pclust;
  using namespace pclust::bench;

  util::Table table({"data set", "#Input seq.", "#NR seq.", "#CC", "#DS",
                     "#Seq in DS", "Mean degree", "Mean density",
                     "Largest DS"});
  table.set_title(
      "TABLE I analog — qualitative assessment (components >= 5 sequences), "
      "scaled x" +
      util::format("%.3f", kScale));

  const auto run_case = [&](const char* name, synth::DatasetSpec spec) {
    const synth::Dataset data = synth::generate(spec);
    pipeline::PipelineConfig config;
    config.pace = bench_pace_params();
    config.shingle = bench_shingle_params();
    const auto r = pipeline::run(data.sequences, config);
    auto row = util::split(pipeline::table1_row(r), '|');
    for (auto& cell : row) cell = std::string(util::trim(cell));
    row.insert(row.begin(), name);
    table.add_row(row);
  };

  run_case("160K analog", synth::paper_160k(kScale));
  run_case("22K analog", synth::paper_22k(kScale));

  table.add_footnote("paper 160K: 138,633 NR | 1,861 CC | 850 DS | 66,083 in "
                     "DS | deg 26 | 76% | largest 13,263");
  table.add_footnote("paper 22K:   21,348 NR |     1 CC | 134 DS | 11,524 in "
                     "DS | deg 20 | 78% | largest  6,828");
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
