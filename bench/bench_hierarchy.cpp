// Hierarchical-master scaling bench: the paper's CCD phase on the
// paper_160k analog at the processor counts where the flat single master
// saturates (§V: the master serializes admission once workers outnumber its
// admission throughput). For each p we run CCD flat (masters=1) and with a
// sub-master tier, and record the simulated makespan, the coordinator
// busy/idle profile, the analyzer's saturation verdict, and the virtual
// speedup of the tree over the flat protocol at the same p.
//
// Everything gated downstream (pclust perf-diff) is VIRTUAL time — a pure
// function of the workload and the machine model, bit-stable across hosts —
// so BENCH_hierarchy.json can be compared tightly, unlike wall-clock
// benches. Emits BENCH_hierarchy.json in the working directory.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "pclust/mpsim/masterworker.hpp"
#include "pclust/pipeline/analysis.hpp"
#include "pclust/util/json.hpp"

namespace {

struct Row {
  int p = 0;
  int masters = 0;
  double ccd_seconds = 0.0;
  double speedup_vs_flat = 1.0;  // flat makespan / this makespan, same p
  double master_busy_fraction = 0.0;
  double worker_idle_fraction = 0.0;
  double submaster_busy_fraction = 0.0;
  bool saturated = false;
  double wall_seconds = 0.0;  // informational only: host-dependent
};

}  // namespace

int main() {
  using namespace pclust;
  using namespace pclust::bench;

  // The paper's largest input (160K sequences), bench-scaled, with the
  // family divergence/noise knobs turned toward the dense end of the
  // paper's range. Density is what exposes the CCD bottleneck: the cluster
  // filter skips most worker alignments (each skip costs the worker one
  // union-find probe) while the flat master still pays admission for every
  // candidate pair — at p=1024 rank 0 is busy ~74% of the phase while
  // workers idle ~93%, the analyzer's master-saturated regime. RR runs
  // once, flat (it is order-dependent and never hierarchical); the
  // survivors feed every CCD configuration identically.
  synth::DatasetSpec spec = synth::paper_160k(kScale);
  spec.noise_fraction = 0.05;
  spec.max_divergence = 0.22;
  spec.subfamily_divergence = 0.15;
  const synth::Dataset data = synth::generate(spec);
  const auto model = mpsim::MachineModel::bluegene_l();
  const auto params = bench_pace_params();
  pace::PaceParams rr_params = params;
  rr_params.band = 0;
  const auto rr = pace::remove_redundant(data.sequences, 32, model, rr_params);
  const auto survivors = rr.survivors();

  const std::vector<int> processor_counts = {256, 512, 1024};
  const std::vector<int> master_counts = {1, 4, 8};

  std::vector<Row> rows;
  for (const int p : processor_counts) {
    double flat_makespan = 0.0;
    std::vector<std::vector<seq::SeqId>> flat_components;
    for (const int masters : master_counts) {
      pace::PaceParams ccd_params = params;
      ccd_params.masters = masters;
      const auto t0 = std::chrono::steady_clock::now();
      const auto ccd = pace::detect_components(data.sequences, survivors, p,
                                               model, ccd_params);
      const auto t1 = std::chrono::steady_clock::now();

      // The tree must be a pure optimization: identical partition.
      if (masters == 1) {
        flat_makespan = ccd.run.makespan;
        flat_components = ccd.components;
      } else if (ccd.components != flat_components) {
        std::fprintf(stderr,
                     "FATAL: p=%d masters=%d changed the CCD partition\n", p,
                     masters);
        return 1;
      }

      const mpsim::MwTopology topo{p, masters};
      std::vector<pipeline::RankSample> samples(
          static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        auto& s = samples[static_cast<std::size_t>(r)];
        s.total = ccd.run.rank_times[static_cast<std::size_t>(r)];
        s.busy = ccd.run.rank_breakdown[static_cast<std::size_t>(r)].busy;
        s.comm = ccd.run.rank_breakdown[static_cast<std::size_t>(r)].comm;
        s.idle = ccd.run.rank_breakdown[static_cast<std::size_t>(r)].idle;
        s.level = topo.level_of(r);
      }
      const pipeline::PhaseAnalysis analysis =
          pipeline::analyze_phase("ccd", samples, {});

      Row row;
      row.p = p;
      row.masters = masters;
      row.ccd_seconds = ccd.run.makespan;
      row.speedup_vs_flat =
          ccd.run.makespan > 0.0 ? flat_makespan / ccd.run.makespan : 1.0;
      row.master_busy_fraction = analysis.master_busy_fraction;
      row.worker_idle_fraction = analysis.worker_idle_fraction;
      row.submaster_busy_fraction = analysis.submaster_busy_fraction;
      row.saturated = analysis.master_saturated;
      row.wall_seconds =
          std::chrono::duration<double>(t1 - t0).count();
      rows.push_back(row);

      std::printf(
          "p=%-5d masters=%-2d  CCD %.2fs  speedup %.2fx  root busy %.2f  "
          "worker idle %.2f  %s\n",
          p, masters, row.ccd_seconds, row.speedup_vs_flat,
          row.master_busy_fraction, row.worker_idle_fraction,
          row.saturated ? "SATURATED" : "clear");
    }
  }

  util::JsonWriter w;
  w.begin_object();
  w.key("schema").value("pclust-hierarchy-bench");
  w.key("version").value(1);
  w.key("input").begin_object();
  w.key("preset").value("synth:paper_160k-analog-dense");
  w.key("sequences").value(static_cast<std::uint64_t>(data.sequences.size()));
  w.key("survivors").value(static_cast<std::uint64_t>(survivors.size()));
  w.end_object();
  w.key("rows").begin_array();
  for (const Row& row : rows) {
    w.begin_object();
    w.key("p").value(row.p);
    w.key("masters").value(row.masters);
    w.key("ccd_virtual_seconds").value(row.ccd_seconds);
    w.key("speedup_vs_flat").value(row.speedup_vs_flat);
    w.key("master_busy_fraction").value(row.master_busy_fraction);
    w.key("worker_idle_fraction").value(row.worker_idle_fraction);
    w.key("submaster_busy_fraction").value(row.submaster_busy_fraction);
    w.key("saturated").value(row.saturated);
    w.key("wall_seconds").value(row.wall_seconds);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::FILE* f = std::fopen("BENCH_hierarchy.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot write BENCH_hierarchy.json\n");
    return 1;
  }
  std::fputs(w.str().c_str(), f);
  std::fputs("\n", f);
  std::fclose(f);
  std::fprintf(stderr, "wrote BENCH_hierarchy.json\n");
  return 0;
}
