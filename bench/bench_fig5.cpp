// Figure 5 — distribution of dense subgraphs as a function of their size
// (22K data set). The paper's histogram uses width-5 buckets starting at 5
// ("5-9", "10-14", ...), is strongly right-skewed, and the largest dense
// subgraph (>7K sequences) falls off the plot.
//
// Shape targets: monotone-ish decay from the smallest bucket, a long sparse
// tail, and one dominant subgraph far beyond the plotted range.
#include <cstdio>

#include "common.hpp"
#include "pclust/util/histogram.hpp"
#include "pclust/util/strings.hpp"

int main() {
  using namespace pclust;
  using namespace pclust::bench;

  const synth::Dataset data = synth::generate(synth::paper_22k(kScale));
  pipeline::PipelineConfig config;
  config.pace = bench_pace_params();
  config.shingle = bench_shingle_params();
  const auto result = pipeline::run(data.sequences, config);

  util::Histogram histogram(5, 5, 300);
  std::size_t largest = 0;
  for (const auto& family : result.families) {
    histogram.add(static_cast<std::int64_t>(family.members.size()));
    largest = std::max(largest, family.members.size());
  }

  std::printf("Figure 5 analog — dense subgraph size distribution "
              "(22K analog, %zu sequences, %zu dense subgraphs)\n\n",
              data.sequences.size(), result.families.size());
  std::printf("size-bucket\tcount\n%s\n",
              histogram.to_string().c_str());
  std::printf("largest dense subgraph: %zu sequences%s\n", largest,
              largest >= 300 ? " (beyond the plotted range, as in the paper)"
                             : "");
  std::printf("paper: buckets 5-9 .. 285-289 with counts decaying from ~45; "
              "largest DS ~6.8K (not plotted)\n");
  return 0;
}
