#include <cstdio>

#include <algorithm>
#include <stdexcept>

#include "commands.hpp"
#include "pclust/align/msa.hpp"
#include "pclust/pipeline/pipeline.hpp"
#include "pclust/quality/cluster_io.hpp"
#include "pclust/seq/fasta.hpp"
#include "pclust/util/options.hpp"
#include "pclust/util/strings.hpp"

namespace pclust::cli {

int cmd_families(int argc, const char* const* argv) {
  util::Options options;
  options.define("psi", "10", "min exact-match length for candidate pairs");
  options.define("min-family", "5", "dense-subgraph size cutoff");
  options.define("reduction", "bd",
                 "bipartite reduction: bd (global similarity) or bm "
                 "(domain based)");
  options.define("w", "10", "word length for the bm reduction");
  options.define("s", "5", "shingle size s");
  options.define("c", "300", "shingles per vertex c");
  options.define("tau", "0.5", "A~B Jaccard cutoff for bd");
  options.define("band", "32", "CCD alignment band (0 = full DP)");
  options.define("processors", "0",
                 "simulated BG/L ranks for RR+CCD (0 = serial)");
  options.define("dsd-processors", "0",
                 "simulated Xeon ranks for batched DSD (0 = serial)");
  options.define("threads", "1",
                 "real worker threads for every phase (0 = all cores)");
  options.define("out", "", "write families as a clustering file");
  options.define_flag("mask", "SEG-style low-complexity masking of input");
  options.define("show-alignments", "0",
                 "print a consensus alignment for the N largest families");
  options.parse(argc, argv);
  if (options.help_requested() || options.positionals().empty()) {
    std::fputs(options
                   .usage("pclust families <input.fa>",
                          "Identify protein families in a peptide FASTA "
                          "file (four-phase pclust pipeline).")
                   .c_str(),
               stdout);
    return options.help_requested() ? 0 : 2;
  }

  seq::SequenceSet sequences;
  seq::read_fasta_file(options.positionals()[0], sequences);
  std::printf("loaded %zu sequences from %s\n", sequences.size(),
              options.positionals()[0].c_str());

  pipeline::PipelineConfig config;
  config.pace.psi = static_cast<std::uint32_t>(options.get_int("psi"));
  config.pace.band = static_cast<std::uint32_t>(options.get_int("band"));
  config.shingle.s1 = static_cast<std::uint32_t>(options.get_int("s"));
  config.shingle.c1 = static_cast<std::uint32_t>(options.get_int("c"));
  config.shingle.tau = options.get_double("tau");
  config.shingle.min_size =
      static_cast<std::uint32_t>(options.get_int("min-family"));
  config.min_component = config.shingle.min_size;
  config.processors = static_cast<int>(options.get_int("processors"));
  config.mask_low_complexity = options.get_flag("mask");
  config.dsd_processors =
      static_cast<int>(options.get_int("dsd-processors"));
  const long long threads = options.get_int("threads");
  if (threads < 0) throw std::runtime_error("--threads must be >= 0");
  config.threads = static_cast<unsigned>(threads);
  const std::string reduction = options.get("reduction");
  if (reduction == "bm") {
    config.reduction = bigraph::Reduction::kMatchBased;
    config.bm.w = static_cast<std::uint32_t>(options.get_int("w"));
  } else if (reduction != "bd") {
    std::fprintf(stderr, "unknown reduction '%s' (use bd or bm)\n",
                 reduction.c_str());
    return 2;
  }

  const pipeline::PipelineResult result = pipeline::run(sequences, config);
  std::printf(
      "%zu input -> %zu non-redundant -> %zu components (>=%u) -> %zu "
      "families covering %zu sequences (largest %zu, mean density %.0f%%)\n",
      result.input_sequences, result.non_redundant_sequences,
      result.components_min_size, config.min_component,
      result.families.size(), result.sequences_in_subgraphs,
      result.largest_subgraph, result.mean_density * 100.0);
  std::printf("phase times: RR %s, CCD %s, BGG+DSD %s\n",
              util::format_duration(result.rr_seconds).c_str(),
              util::format_duration(result.ccd_seconds).c_str(),
              util::format_duration(result.bgg_dsd_seconds).c_str());
  if (result.dsd_simulated_seconds > 0.0) {
    std::printf("simulated batched-DSD makespan: %s on %d ranks\n",
                util::format_duration(result.dsd_simulated_seconds).c_str(),
                config.dsd_processors);
  }

  if (const std::string out = options.get("out"); !out.empty()) {
    quality::write_clustering_file(out, result.family_clustering(),
                                   sequences);
    std::printf("wrote clustering to %s\n", out.c_str());
  }

  const auto show =
      static_cast<std::size_t>(options.get_int("show-alignments"));
  for (std::size_t f = 0; f < std::min(show, result.families.size()); ++f) {
    const auto& family = result.families[f];
    std::vector<seq::SeqId> members(
        family.members.begin(),
        family.members.begin() +
            static_cast<std::ptrdiff_t>(
                std::min<std::size_t>(family.members.size(), 8)));
    const align::Msa msa =
        align::center_star_msa(sequences, members, align::blosum62());
    std::printf("\nfamily %zu (%zu members, density %.0f%%):\n", f + 1,
                family.members.size(), family.density * 100.0);
    const std::size_t width = std::min<std::size_t>(msa.columns(), 100);
    for (std::size_t r = 0; r < msa.rows.size(); ++r) {
      std::printf("  %-14s %s\n", sequences.name(msa.members[r]).c_str(),
                  msa.rows[r].substr(0, width).c_str());
    }
    std::printf("  %-14s %s\n", "consensus",
                msa.consensus().substr(0, width).c_str());
  }
  return 0;
}

}  // namespace pclust::cli
