#include <cstdio>

#include <algorithm>
#include <stdexcept>

#include "cli_common.hpp"
#include "commands.hpp"
#include "pclust/align/msa.hpp"
#include "pclust/mpsim/fault_plan.hpp"
#include "pclust/pipeline/pipeline.hpp"
#include "pclust/pipeline/report.hpp"
#include "pclust/quality/cluster_io.hpp"
#include "pclust/seq/fasta.hpp"
#include "pclust/util/io.hpp"
#include "pclust/util/metrics.hpp"
#include "pclust/util/options.hpp"
#include "pclust/util/strings.hpp"
#include "pclust/util/telemetry.hpp"
#include "pclust/util/trace.hpp"

namespace pclust::cli {

int cmd_families(int argc, const char* const* argv) {
  util::Options options;
  options.define("psi", "10", "min exact-match length for candidate pairs");
  options.define("min-family", "5", "dense-subgraph size cutoff");
  options.define("reduction", "bd",
                 "bipartite reduction: bd (global similarity) or bm "
                 "(domain based)");
  options.define("w", "10", "word length for the bm reduction");
  options.define("s", "5", "shingle size s");
  options.define("c", "300", "shingles per vertex c");
  options.define("tau", "0.5", "A~B Jaccard cutoff for bd");
  options.define("band", "32", "CCD alignment band (0 = full DP)");
  options.define("rr-band", "0",
                 "RR containment-alignment band (0 = full DP, the "
                 "default; >0 trades exactness for speed)");
  options.define("processors", "0",
                 "simulated BG/L ranks for RR+CCD (0 = serial)");
  options.define("masters", "1",
                 "master-tree width for simulated CCD/DSD: 1 = the flat "
                 "single-master protocol; N >= 2 adds N sub-masters (ranks "
                 "1..N) under the root, requires --processors >= N + 2 "
                 "(RR always runs flat; results are bit-identical)");
  options.define("dsd-processors", "0",
                 "simulated Xeon ranks for batched DSD (0 = serial)");
  options.define("threads", "1",
                 "real worker threads for every phase (0 = all cores)");
  options.define("out", "", "write families as a clustering file");
  options.define_flag("mask", "SEG-style low-complexity masking of input");
  options.define("show-alignments", "0",
                 "print a consensus alignment for the N largest families");
  options.define("on-bad-residue", "throw",
                 "invalid FASTA residue handling: throw, mask (replace "
                 "with X), or skip (drop the record)");
  options.define("checkpoint-dir", "",
                 "write phase-level checkpoints to this directory");
  options.define_flag("resume",
                      "resume from --checkpoint-dir, skipping completed "
                      "phases (exit 4 on input/config mismatch)");
  options.define("report-out", "",
                 "write a structured JSON run report (phase times, "
                 "alignment-work identity, faults, metrics) to this path");
  options.define("provenance-out", "",
                 "write the merge-provenance ledger to this path: one "
                 "JSONL evidence edge per union-find merge that survived "
                 "into the final families (phase, rule, alignment/shingle "
                 "evidence), byte-identical across --threads/--masters/"
                 "--resume; inspect with `pclust explain`");
  options.define("trace-out", "",
                 "write a Chrome trace-event JSON timeline (load in "
                 "Perfetto / chrome://tracing) to this path");
  options.define("telemetry-out", "",
                 "stream JSONL run telemetry to this path while the "
                 "pipeline executes: periodic samples (metrics deltas, "
                 "RSS, progress/ETA, per-rank busy/comm/idle), watchdog "
                 "warnings, and phase records; inspect live or after the "
                 "run with `pclust monitor`");
  options.define("telemetry-interval", "1",
                 "wall seconds between telemetry samples (also the "
                 "virtual-domain sampling interval of simulated phases)");
  options.define("telemetry-stall", "0",
                 "VIRTUAL-seconds no-progress window that emits a "
                 "deterministic stall warning during simulated phases "
                 "(0 = off; calibrate against a healthy run's "
                 "max_progress_gap)");
  options.define("watchdog-deadline", "0",
                 "WALL-seconds no-progress window after which the run "
                 "aborts with a `fatal` telemetry record and exit 1 "
                 "(0 = off; requires --telemetry-out)");
  options.define("crash", "",
                 "fault injection for simulated RR/CCD: comma-separated "
                 "rank@virtual-seconds crash schedule, e.g. 1@5,3@20 "
                 "(requires --processors >= 2)");
  options.define("straggle", "",
                 "fault injection: comma-separated rank@slowdown compute "
                 "multipliers, e.g. 2@4 (requires --processors >= 2)");
  options.define("submaster-crash", "",
                 "fault injection: crash sub-master i (1-based, i <= "
                 "--masters) at a virtual time, e.g. 1@5,2@20 — the root "
                 "replays its event log and re-homes its workers "
                 "(requires --masters >= 2)");
  options.define("submaster-straggle", "",
                 "fault injection: slow down sub-master i by a compute "
                 "multiplier, e.g. 1@4 (requires --masters >= 2)");
  options.define("drop", "0",
                 "fault injection: per-message drop probability in [0, 1) "
                 "for RR/CCD (each drop costs a retransmission delay)");
  options.define("dup", "0",
                 "fault injection: per-message duplicate-delivery "
                 "probability in [0, 1) for RR/CCD");
  options.define("fault-seed", "0",
                 "seed of the per-message drop/duplicate decisions");
  options.define("dsd-crash", "",
                 "fault injection for the simulated DSD phase: "
                 "rank@virtual-seconds crash schedule (requires "
                 "--dsd-processors >= 2; output is unchanged)");
  options.define("dsd-straggle", "",
                 "fault injection for DSD: rank@slowdown multipliers");
  options.define("heartbeat", "0",
                 "master-side liveness timeout in WALL seconds: a worker "
                 "silent this long (after --heartbeat-retries retries with "
                 "exponential backoff) is declared dead and its work "
                 "reassigned (0 = wait forever)");
  options.define("heartbeat-retries", "2",
                 "timed-out receives tolerated before declaring a worker "
                 "dead");
  options.define("heartbeat-max-timeout", "0",
                 "ceiling in WALL seconds on the exponential heartbeat "
                 "backoff (0 = uncapped)");
  options.define("phase-deadline", "0",
                 "per-phase WALL-clock watchdog in seconds: abort the "
                 "phase with an attributed error instead of hanging "
                 "(0 = off)");
  options.define("mem-budget", "",
                 "memory budget for the capacity ledger (e.g. 512m, 2g); "
                 "the run degrades along output-invariant levers under "
                 "pressure and exits resumable (code 5) past 2x budget");
  options.define("io-fault", "",
                 "seeded I/O fault plan, comma-separated "
                 "class:kind@N[:sticky] entries (classes families/"
                 "checkpoint/report/telemetry/trace/log/spill; kinds "
                 "enospc/eio/short/fsync; N=0 targets stream opens)");
  define_simd_option(options);
  options.parse(argc, argv);
  if (options.help_requested() || options.positionals().empty()) {
    std::fputs(options
                   .usage("pclust families <input.fa>",
                          "Identify protein families in a peptide FASTA "
                          "file (four-phase pclust pipeline).")
                   .c_str(),
               stdout);
    return options.help_requested() ? 0 : 2;
  }

  // Validate before touching any input: bad values exit 2, bad paths 3.
  pipeline::PipelineConfig config;
  config.pace.psi = static_cast<std::uint32_t>(
      get_int_in(options, "psi", 1, 10'000));
  config.pace.band =
      static_cast<std::uint32_t>(get_int_in(options, "band", 0, 1 << 20));
  config.rr_band =
      static_cast<std::uint32_t>(get_int_in(options, "rr-band", 0, 1 << 20));
  config.shingle.s1 =
      static_cast<std::uint32_t>(get_int_in(options, "s", 1, 1 << 16));
  config.shingle.c1 =
      static_cast<std::uint32_t>(get_int_in(options, "c", 1, 1 << 20));
  config.shingle.tau = get_double_in(options, "tau", 0.0, 1.0);
  config.shingle.min_size = static_cast<std::uint32_t>(
      get_int_in(options, "min-family", 1, 1 << 20));
  config.min_component = config.shingle.min_size;
  config.processors = static_cast<int>(
      get_int_in(options, "processors", 0, 1 << 16));
  if (config.processors == 1) {
    throw UsageError(
        "--processors 1 is not a valid simulation (master + no workers); "
        "use 0 for the serial path or >= 2 for simulated ranks");
  }
  config.pace.masters =
      static_cast<int>(get_int_in(options, "masters", 1, 1 << 12));
  if (config.pace.masters > 1 &&
      config.processors < config.pace.masters + 2) {
    throw UsageError(
        "--masters " + std::to_string(config.pace.masters) +
        " requires --processors >= " +
        std::to_string(config.pace.masters + 2) +
        " (root + sub-masters + at least one worker)");
  }
  config.mask_low_complexity = options.get_flag("mask");
  config.dsd_processors = static_cast<int>(
      get_int_in(options, "dsd-processors", 0, 1 << 16));
  config.threads = static_cast<unsigned>(
      get_int_in(options, "threads", 0, 1 << 16));
  const std::string reduction = options.get("reduction");
  if (reduction == "bm") {
    config.reduction = bigraph::Reduction::kMatchBased;
    config.bm.w =
        static_cast<std::uint32_t>(get_int_in(options, "w", 1, 1 << 16));
  } else if (reduction != "bd") {
    throw UsageError("unknown reduction '" + reduction +
                     "' (use bd or bm)");
  }

  seq::FastaOptions fasta;
  const std::string bad_residue = options.get("on-bad-residue");
  if (bad_residue == "mask") {
    fasta.on_bad_residue = seq::BadResiduePolicy::kMask;
  } else if (bad_residue == "skip") {
    fasta.on_bad_residue = seq::BadResiduePolicy::kSkipRecord;
  } else if (bad_residue != "throw") {
    throw UsageError("unknown --on-bad-residue '" + bad_residue +
                     "' (use throw, mask, or skip)");
  }
  fasta.log_summary = true;

  config.checkpoint_dir = options.get("checkpoint-dir");
  config.resume = options.get_flag("resume");
  if (config.resume && config.checkpoint_dir.empty()) {
    throw UsageError("--resume requires --checkpoint-dir");
  }

  const int masters = config.pace.masters;
  mpsim::FaultPlan plan;
  for (const auto& [rank, at] : parse_rank_at(options.get("crash"), "crash")) {
    if (rank == 0) {
      throw UsageError(
          "--crash: rank 0 is the master; crashing it is unrecoverable "
          "(use --checkpoint-dir / --resume for master failures)");
    }
    if (masters > 1 && rank <= masters) {
      throw UsageError(
          "--crash: rank " + std::to_string(rank) +
          " is a sub-master under --masters " + std::to_string(masters) +
          "; use --submaster-crash " + std::to_string(rank) + "@t instead");
    }
    if (at < 0.0) throw UsageError("--crash: time must be >= 0");
    plan.crashes.push_back({rank, at});
  }
  for (const auto& [rank, at] :
       parse_rank_at(options.get("submaster-crash"), "submaster-crash")) {
    if (masters < 2) {
      throw UsageError(
          "--submaster-crash requires --masters >= 2 (there are no "
          "sub-masters in the flat protocol)");
    }
    if (rank < 1 || rank > masters) {
      throw UsageError(
          "--submaster-crash: sub-master index must be in [1, " +
          std::to_string(masters) + "], got " + std::to_string(rank));
    }
    if (at < 0.0) throw UsageError("--submaster-crash: time must be >= 0");
    plan.crashes.push_back({rank, at});
  }
  for (const auto& [rank, factor] : parse_rank_at(
           options.get("submaster-straggle"), "submaster-straggle")) {
    if (masters < 2) {
      throw UsageError("--submaster-straggle requires --masters >= 2");
    }
    if (rank < 1 || rank > masters) {
      throw UsageError(
          "--submaster-straggle: sub-master index must be in [1, " +
          std::to_string(masters) + "], got " + std::to_string(rank));
    }
    if (factor < 1.0) {
      throw UsageError("--submaster-straggle: factor must be >= 1");
    }
    if (plan.straggler_factor.size() <= static_cast<std::size_t>(rank)) {
      plan.straggler_factor.resize(static_cast<std::size_t>(rank) + 1, 1.0);
    }
    plan.straggler_factor[static_cast<std::size_t>(rank)] = factor;
  }
  for (const auto& [rank, factor] :
       parse_rank_at(options.get("straggle"), "straggle")) {
    if (rank < 0) throw UsageError("--straggle: rank must be >= 0");
    if (factor < 1.0) throw UsageError("--straggle: factor must be >= 1");
    if (plan.straggler_factor.size() <= static_cast<std::size_t>(rank)) {
      plan.straggler_factor.resize(static_cast<std::size_t>(rank) + 1, 1.0);
    }
    plan.straggler_factor[static_cast<std::size_t>(rank)] = factor;
  }
  plan.drop_probability = get_double_in(options, "drop", 0.0, 0.999);
  plan.duplicate_probability = get_double_in(options, "dup", 0.0, 0.999);
  plan.seed = static_cast<std::uint64_t>(
      get_int_in(options, "fault-seed", 0, 1LL << 62));
  if (!plan.empty()) {
    if (config.processors < 2) {
      throw UsageError(
          "--crash/--straggle/--drop/--dup inject faults into the "
          "simulated machine; they require --processors >= 2");
    }
    plan.validate_protocol(config.processors, masters);
    config.fault_plan = &plan;
  }

  mpsim::FaultPlan dsd_plan;
  dsd_plan.seed = plan.seed;
  for (const auto& [rank, at] :
       parse_rank_at(options.get("dsd-crash"), "dsd-crash")) {
    if (rank == 0) {
      throw UsageError(
          "--dsd-crash: rank 0 is the DSD master; crashing it is "
          "unrecoverable");
    }
    if (at < 0.0) throw UsageError("--dsd-crash: time must be >= 0");
    dsd_plan.crashes.push_back({rank, at});
  }
  for (const auto& [rank, factor] :
       parse_rank_at(options.get("dsd-straggle"), "dsd-straggle")) {
    if (rank < 0) throw UsageError("--dsd-straggle: rank must be >= 0");
    if (factor < 1.0) throw UsageError("--dsd-straggle: factor must be >= 1");
    if (dsd_plan.straggler_factor.size() <= static_cast<std::size_t>(rank)) {
      dsd_plan.straggler_factor.resize(static_cast<std::size_t>(rank) + 1,
                                       1.0);
    }
    dsd_plan.straggler_factor[static_cast<std::size_t>(rank)] = factor;
  }
  if (!dsd_plan.empty()) {
    if (config.dsd_processors < 2) {
      throw UsageError(
          "--dsd-crash/--dsd-straggle require --dsd-processors >= 2");
    }
    dsd_plan.validate(config.dsd_processors);
    config.dsd_fault_plan = &dsd_plan;
  }

  config.pace.heartbeat_timeout =
      get_double_in(options, "heartbeat", 0.0, 3600.0);
  config.pace.heartbeat_retries = static_cast<std::uint32_t>(
      get_int_in(options, "heartbeat-retries", 0, 100));
  config.pace.heartbeat_max_timeout =
      get_double_in(options, "heartbeat-max-timeout", 0.0, 3600.0);
  config.pace.phase_deadline =
      get_double_in(options, "phase-deadline", 0.0, 86'400.0);

  if (const std::string budget = options.get("mem-budget"); !budget.empty()) {
    config.mem_budget_bytes = parse_mem_size(budget, "mem-budget");
  }
  util::io::IoFaultPlan io_plan;
  if (const std::string spec = options.get("io-fault"); !spec.empty()) {
    try {
      io_plan = util::io::IoFaultPlan::parse(spec);
    } catch (const std::invalid_argument& err) {
      throw UsageError(std::string("--io-fault: ") + err.what());
    }
  }
  // Installed even when empty: resets per-class ordinals and drop counters
  // so each run's injection schedule starts from write 1.
  util::io::io().configure(io_plan);

  require_readable(options.positionals()[0]);
  if (const std::string out = options.get("out"); !out.empty()) {
    require_writable(out);
  }
  const std::string report_out = options.get("report-out");
  if (!report_out.empty()) require_writable(report_out);
  const std::string provenance_out = options.get("provenance-out");
  if (!provenance_out.empty()) require_writable(provenance_out);
  config.provenance = !provenance_out.empty();
  const std::string trace_out = options.get("trace-out");
  if (!trace_out.empty()) require_writable(trace_out);
  util::telemetry::TelemetryConfig telemetry;
  telemetry.path = options.get("telemetry-out");
  telemetry.command = "families " + options.positionals()[0];
  telemetry.interval = get_double_in(options, "telemetry-interval", 0.01, 3600.0);
  telemetry.virtual_stall_seconds =
      get_double_in(options, "telemetry-stall", 0.0, 1e9);
  telemetry.watchdog_deadline =
      get_double_in(options, "watchdog-deadline", 0.0, 86'400.0);
  if (telemetry.path.empty() && telemetry.watchdog_deadline > 0.0) {
    throw UsageError("--watchdog-deadline requires --telemetry-out");
  }
  if (!telemetry.path.empty()) require_writable(telemetry.path);

  apply_simd_option(options);

  seq::SequenceSet sequences;
  seq::read_fasta_file(options.positionals()[0], sequences, fasta);
  std::printf("loaded %zu sequences from %s\n", sequences.size(),
              options.positionals()[0].c_str());

  // Start instrumentation from a clean slate so the report reflects this
  // run only (the registry is process-wide).
  util::metrics().reset();
  if (!trace_out.empty()) util::trace::enable();
  if (!telemetry.path.empty()) util::telemetry::enable(telemetry);

  const pipeline::PipelineResult result = pipeline::run(sequences, config);

  if (!provenance_out.empty()) {
    // The operator asked for the audit trail; losing it is fatal (exit 3),
    // same policy as a report.
    prov::write_ledger(provenance_out, result.provenance);
    const prov::LedgerCounts& c = result.provenance.counts;
    std::printf(
        "wrote provenance ledger to %s (%llu edges: %llu rr, %llu ccd, "
        "%llu dsd; complete=%s)\n",
        provenance_out.c_str(),
        static_cast<unsigned long long>(c.total_edges()),
        static_cast<unsigned long long>(c.rr_edges),
        static_cast<unsigned long long>(c.ccd_edges),
        static_cast<unsigned long long>(c.dsd_edges),
        c.identity_holds() ? "yes" : "NO");
  }
  if (!report_out.empty()) {
    // While the stream is still open, so the report's telemetry section
    // reflects the live status.
    pipeline::write_report(
        report_out, result, config,
        {"families", options.positionals()[0], provenance_out});
    std::printf("wrote run report to %s\n", report_out.c_str());
  }
  if (!telemetry.path.empty()) {
    util::telemetry::disable();
    std::printf("wrote telemetry to %s\n", telemetry.path.c_str());
  }
  if (!trace_out.empty()) {
    util::trace::write_file(trace_out);
    util::trace::disable();
    std::printf("wrote trace to %s\n", trace_out.c_str());
  }
  std::printf(
      "%zu input -> %zu non-redundant -> %zu components (>=%u) -> %zu "
      "families covering %zu sequences (largest %zu, mean density %.0f%%)\n",
      result.input_sequences, result.non_redundant_sequences,
      result.components_min_size, config.min_component,
      result.families.size(), result.sequences_in_subgraphs,
      result.largest_subgraph, result.mean_density * 100.0);
  std::printf("phase times: RR %s, CCD %s, BGG+DSD %s\n",
              util::format_duration(result.rr_seconds).c_str(),
              util::format_duration(result.ccd_seconds).c_str(),
              util::format_duration(result.bgg_dsd_seconds).c_str());
  if (result.dsd_simulated_seconds > 0.0) {
    std::printf("simulated batched-DSD makespan: %s on %d ranks\n",
                util::format_duration(result.dsd_simulated_seconds).c_str(),
                config.dsd_processors);
  }

  if (const std::string out = options.get("out"); !out.empty()) {
    quality::write_clustering_file(out, result.family_clustering(),
                                   sequences);
    std::printf("wrote clustering to %s\n", out.c_str());
  }

  const auto show =
      static_cast<std::size_t>(options.get_int("show-alignments"));
  for (std::size_t f = 0; f < std::min(show, result.families.size()); ++f) {
    const auto& family = result.families[f];
    std::vector<seq::SeqId> members(
        family.members.begin(),
        family.members.begin() +
            static_cast<std::ptrdiff_t>(
                std::min<std::size_t>(family.members.size(), 8)));
    const align::Msa msa =
        align::center_star_msa(sequences, members, align::blosum62());
    std::printf("\nfamily %zu (%zu members, density %.0f%%):\n", f + 1,
                family.members.size(), family.density * 100.0);
    const std::size_t width = std::min<std::size_t>(msa.columns(), 100);
    for (std::size_t r = 0; r < msa.rows.size(); ++r) {
      std::printf("  %-14s %s\n", sequences.name(msa.members[r]).c_str(),
                  msa.rows[r].substr(0, width).c_str());
    }
    std::printf("  %-14s %s\n", "consensus",
                msa.consensus().substr(0, width).c_str());
  }
  return 0;
}

}  // namespace pclust::cli
