#include <cstdio>

#include <limits>

#include "cli_common.hpp"
#include "commands.hpp"
#include "pclust/quality/cluster_io.hpp"
#include "pclust/seq/fasta.hpp"
#include "pclust/synth/presets.hpp"
#include "pclust/util/options.hpp"

namespace pclust::cli {

int cmd_generate(int argc, const char* const* argv) {
  util::Options options;
  options.define("n", "2000", "number of sequences");
  options.define("families", "20", "number of protein families");
  options.define("subfamilies", "1", "subfamilies per family");
  options.define("mean-length", "163", "mean sequence length (residues)");
  options.define("redundant", "0.13", "fraction of contained duplicates");
  options.define("noise", "0.30", "fraction of unrelated singletons");
  options.define("seed", "42", "random seed");
  options.define("preset", "",
                 "use a paper preset instead: 160k or 22k (overrides the "
                 "shape options; --n still scales it)");
  options.define("out", "sample.fa", "output FASTA path");
  options.define("truth", "", "also write the ground-truth clustering here");
  options.parse(argc, argv);
  if (options.help_requested()) {
    std::fputs(options
                   .usage("pclust generate",
                          "Synthesize a metagenomic peptide sample with "
                          "known family structure.")
                   .c_str(),
               stdout);
    return 0;
  }

  synth::DatasetSpec spec;
  const std::string preset = options.get("preset");
  const auto n =
      static_cast<std::uint32_t>(get_int_in(options, "n", 1, 100'000'000));
  const auto seed = static_cast<std::uint64_t>(
      get_int_in(options, "seed", 0, std::numeric_limits<int>::max()));
  if (preset == "160k") {
    spec = synth::paper_160k(static_cast<double>(n) / 160'000.0, seed);
  } else if (preset == "22k") {
    spec = synth::paper_22k(static_cast<double>(n) / 22'186.0, seed);
  } else if (preset.empty()) {
    spec.seed = seed;
    spec.num_sequences = n;
    spec.num_families =
        static_cast<std::uint32_t>(get_int_in(options, "families", 1, 1 << 24));
    spec.subfamilies_per_family = static_cast<std::uint32_t>(
        get_int_in(options, "subfamilies", 1, 1 << 16));
    spec.mean_length = static_cast<std::uint32_t>(
        get_int_in(options, "mean-length", 1, 1 << 20));
    spec.redundant_fraction = get_double_in(options, "redundant", 0.0, 1.0);
    spec.noise_fraction = get_double_in(options, "noise", 0.0, 1.0);
  } else {
    throw UsageError("unknown preset '" + preset + "' (use 160k or 22k)");
  }

  require_writable(options.get("out"));
  if (const std::string truth_path = options.get("truth");
      !truth_path.empty()) {
    require_writable(truth_path);
  }

  const synth::Dataset data = synth::generate(spec);
  seq::write_fasta_file(options.get("out"), data.sequences);
  std::printf("wrote %zu sequences to %s (mean length %.0f)\n",
              data.sequences.size(), options.get("out").c_str(),
              data.sequences.mean_length());

  if (const std::string truth_path = options.get("truth");
      !truth_path.empty()) {
    quality::write_clustering_file(
        truth_path, data.truth.benchmark_clusters(), data.sequences);
    std::printf("wrote ground-truth clustering to %s\n", truth_path.c_str());
  }
  return 0;
}

}  // namespace pclust::cli
