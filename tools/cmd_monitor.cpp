// `pclust monitor` — summarize (or follow) a telemetry JSONL stream
// produced by `--telemetry-out` on families/simulate/chaos.
//
// Reads the stream (tolerating a partial trailing line while the producer
// is mid-write), folds it into per-phase state, and prints a phase table
// (progress, rate, ETA, duration), warning counts by kind, and the top
// stragglers by cumulative busy virtual-time. With --follow it polls the
// file until the `end` record arrives. With --fail-on-stall it exits 1
// when the stream contains any stall warning or a fatal record — the CI
// gate over a seeded-straggler run.
#include <cstdio>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli_common.hpp"
#include "commands.hpp"
#include "pclust/util/json.hpp"
#include "pclust/util/jsonl.hpp"
#include "pclust/util/options.hpp"
#include "pclust/util/strings.hpp"
#include "pclust/util/table.hpp"

namespace pclust::cli {

namespace {

struct PhaseState {
  std::string mode;  // "virtual" | "wall"
  int ranks = 1;
  int masters = 1;
  bool ended = false;
  double seconds = 0.0;
  std::uint64_t enqueued = 0, done = 0, merges = 0;
  double rate = 0.0;
  double eta_seconds = -1.0;  // < 0: unknown
  double max_gap_wall = 0.0, max_gap_virtual = 0.0;
  double rt_p50 = 0.0, rt_p99 = 0.0;
  std::uint64_t rt_count = 0;
  std::uint64_t warnings = 0;
};

struct RankTotals {
  std::string level;
  double busy = 0.0, comm = 0.0, idle = 0.0;
};

struct StreamSummary {
  bool have_start = false;
  std::string command;
  double interval = 0.0;
  bool finished = false;  // `end` record seen
  bool fatal = false;
  std::string fatal_message;
  std::uint64_t records = 0;
  std::uint64_t samples = 0;
  std::uint64_t malformed = 0;
  std::uint64_t stalls = 0;
  std::vector<std::string> phase_order;
  std::map<std::string, PhaseState> phases;
  std::map<std::string, std::uint64_t> warning_counts;  // by kind
  std::vector<std::string> warning_lines;               // "kind phase: msg"
  std::map<int, RankTotals> rank_totals;  // cumulative over all samples
  std::uint64_t last_rss_kb = 0, hwm_kb = 0;
};

double num_or(const util::JsonValue& obj, const char* name, double fallback) {
  const util::JsonValue* v = obj.find(name);
  return v && v->is_number() ? v->number : fallback;
}

std::string str_or(const util::JsonValue& obj, const char* name) {
  const util::JsonValue* v = obj.find(name);
  return v && v->is_string() ? v->string_value : std::string();
}

void fold_progress(const util::JsonValue& rec, PhaseState& ph) {
  if (const util::JsonValue* p = rec.find("progress"); p && p->is_object()) {
    ph.enqueued = static_cast<std::uint64_t>(num_or(*p, "enqueued", 0.0));
    ph.done = static_cast<std::uint64_t>(num_or(*p, "done", 0.0));
    ph.merges = static_cast<std::uint64_t>(num_or(*p, "merges", 0.0));
  }
}

void fold_record(const util::JsonValue& rec, StreamSummary& s) {
  ++s.records;
  const std::string type = str_or(rec, "type");
  const auto phase_of = [&](const util::JsonValue& r) -> PhaseState* {
    const std::string name = str_or(r, "phase");
    if (name.empty()) return nullptr;
    auto it = s.phases.find(name);
    if (it == s.phases.end()) {
      s.phase_order.push_back(name);
      it = s.phases.emplace(name, PhaseState{}).first;
    }
    return &it->second;
  };

  if (type == "start") {
    s.have_start = true;
    s.command = str_or(rec, "command");
    s.interval = num_or(rec, "interval", 0.0);
  } else if (type == "phase") {
    PhaseState* ph = phase_of(rec);
    if (!ph) return;
    const std::string event = str_or(rec, "event");
    if (event == "begin") {
      ph->mode = str_or(rec, "mode");
      ph->ranks = static_cast<int>(num_or(rec, "ranks", 1.0));
      ph->masters = static_cast<int>(num_or(rec, "masters", 1.0));
    } else if (event == "end") {
      ph->ended = true;
      ph->seconds = num_or(rec, "seconds", 0.0);
      fold_progress(rec, *ph);
      if (const util::JsonValue* gap = rec.find("max_progress_gap");
          gap && gap->is_object()) {
        ph->max_gap_wall = num_or(*gap, "wall", 0.0);
        ph->max_gap_virtual = num_or(*gap, "virtual", 0.0);
      }
      if (const util::JsonValue* rt = rec.find("round_trip_us");
          rt && rt->is_object()) {
        ph->rt_count = static_cast<std::uint64_t>(num_or(*rt, "count", 0.0));
        ph->rt_p50 = num_or(*rt, "p50", 0.0);
        ph->rt_p99 = num_or(*rt, "p99", 0.0);
      }
    }
  } else if (type == "sample") {
    ++s.samples;
    if (const util::JsonValue* rss = rec.find("rss_kb");
        rss && rss->is_number()) {
      s.last_rss_kb = static_cast<std::uint64_t>(rss->number);
    }
    if (const util::JsonValue* hwm = rec.find("hwm_kb");
        hwm && hwm->is_number()) {
      s.hwm_kb = std::max(
          s.hwm_kb, static_cast<std::uint64_t>(hwm->number));
    }
    if (PhaseState* ph = phase_of(rec)) {
      if (!ph->ended) {
        fold_progress(rec, *ph);
        ph->rate = num_or(rec, "rate", ph->rate);
        ph->eta_seconds = num_or(rec, "eta_seconds", -1.0);
      }
    }
    if (const util::JsonValue* ranks = rec.find("ranks");
        ranks && ranks->is_array()) {
      for (const util::JsonValue& r : ranks->array) {
        if (!r.is_object()) continue;
        RankTotals& t =
            s.rank_totals[static_cast<int>(num_or(r, "rank", 0.0))];
        if (t.level.empty()) t.level = str_or(r, "level");
        t.busy += num_or(r, "busy", 0.0);
        t.comm += num_or(r, "comm", 0.0);
        t.idle += num_or(r, "idle", 0.0);
      }
    }
  } else if (type == "warning") {
    const std::string kind = str_or(rec, "kind");
    ++s.warning_counts[kind];
    if (kind == "stall") ++s.stalls;
    if (PhaseState* ph = phase_of(rec)) ++ph->warnings;
    const std::string phase = str_or(rec, "phase");
    s.warning_lines.push_back(kind + (phase.empty() ? "" : " [" + phase + "]") +
                              ": " + str_or(rec, "message"));
  } else if (type == "fatal") {
    s.fatal = true;
    s.fatal_message = str_or(rec, "message");
  } else if (type == "end") {
    s.finished = true;
  }
}

/// Fold every complete line the reader can surface into @p s. A torn
/// trailing line — the producer was killed or is mid-write — stays
/// buffered inside the reader and is never parsed; when the writer later
/// finishes the line, the next drain consumes it whole. Malformed
/// interior lines are counted, not fatal. Returns the number of lines
/// consumed; sets @p readable false when the file cannot be opened.
std::size_t drain_stream(util::JsonlTailReader& reader, StreamSummary& s,
                         bool* readable) {
  std::vector<std::string> lines;
  const bool ok = reader.poll(lines);
  if (readable) *readable = ok;
  for (const std::string& line : lines) {
    try {
      fold_record(util::parse_json(line), s);
    } catch (const util::JsonError&) {
      ++s.malformed;
    }
  }
  return lines.size();
}

std::string fmt_duration(double seconds) {
  return seconds < 0.0 ? "-" : util::format("%.2fs", seconds);
}

std::string fmt_progress(const PhaseState& ph) {
  if (ph.enqueued == 0 && ph.done == 0) return "-";
  std::string out = util::with_commas(static_cast<long long>(ph.done)) + "/" +
                    util::with_commas(static_cast<long long>(ph.enqueued));
  if (ph.enqueued > 0) {
    out += util::format(" (%.0f%%)", 100.0 * static_cast<double>(ph.done) /
                                         static_cast<double>(ph.enqueued));
  }
  return out;
}

void render_text(const StreamSummary& s, const std::string& path,
                 int stragglers) {
  std::printf("telemetry %s — %s%s: %llu records, %llu samples, %llu "
              "warnings (%llu stalls)%s\n",
              path.c_str(), s.command.empty() ? "?" : s.command.c_str(),
              s.finished ? "" : " [RUNNING]",
              static_cast<unsigned long long>(s.records),
              static_cast<unsigned long long>(s.samples),
              static_cast<unsigned long long>(
                  [&] {
                    std::uint64_t n = 0;
                    for (const auto& [k, v] : s.warning_counts) n += v;
                    return n;
                  }()),
              static_cast<unsigned long long>(s.stalls),
              s.fatal ? " FATAL" : "");
  if (s.malformed > 0) {
    std::printf("  (%llu malformed lines skipped)\n",
                static_cast<unsigned long long>(s.malformed));
  }
  if (s.hwm_kb > 0) {
    std::printf("memory: rss %llu kB, high-water %llu kB\n",
                static_cast<unsigned long long>(s.last_rss_kb),
                static_cast<unsigned long long>(s.hwm_kb));
  }

  util::Table table({"phase", "mode", "p", "status", "progress", "merges",
                     "rate/s", "eta", "seconds", "rt p50/p99 us"});
  for (const std::string& name : s.phase_order) {
    const PhaseState& ph = s.phases.at(name);
    table.add_row(
        {name, ph.mode.empty() ? "?" : ph.mode,
         ph.masters > 1 ? util::format("%d(m=%d)", ph.ranks, ph.masters)
                        : std::to_string(ph.ranks),
         ph.ended ? "done" : "running", fmt_progress(ph),
         ph.merges > 0 ? util::with_commas(static_cast<long long>(ph.merges))
                       : "-",
         ph.ended || ph.rate <= 0.0 ? "-" : util::format("%.0f", ph.rate),
         ph.ended ? "-" : fmt_duration(ph.eta_seconds),
         ph.ended ? util::format("%.2f", ph.seconds) : "-",
         ph.rt_count > 0
             ? util::format("%.0f/%.0f", ph.rt_p50, ph.rt_p99)
             : "-"});
  }
  if (!s.phase_order.empty()) std::fputs(table.to_string().c_str(), stdout);

  if (!s.warning_lines.empty()) {
    std::printf("warnings:\n");
    for (const std::string& line : s.warning_lines) {
      std::printf("  %s\n", line.c_str());
    }
  }
  if (s.fatal) std::printf("FATAL: %s\n", s.fatal_message.c_str());

  if (!s.rank_totals.empty() && stragglers > 0) {
    std::vector<std::pair<int, RankTotals>> order(s.rank_totals.begin(),
                                                  s.rank_totals.end());
    std::sort(order.begin(), order.end(),
              [](const auto& a, const auto& b) {
                return a.second.busy > b.second.busy;
              });
    util::Table top({"rank", "level", "busy (vs)", "comm (vs)", "idle (vs)"});
    top.set_title("top stragglers by cumulative busy virtual-time");
    const auto n = std::min<std::size_t>(order.size(),
                                         static_cast<std::size_t>(stragglers));
    for (std::size_t i = 0; i < n; ++i) {
      top.add_row({std::to_string(order[i].first), order[i].second.level,
                   util::format("%.3f", order[i].second.busy),
                   util::format("%.3f", order[i].second.comm),
                   util::format("%.3f", order[i].second.idle)});
    }
    std::fputs(top.to_string().c_str(), stdout);
  }
}

void render_json(const StreamSummary& s) {
  util::JsonWriter w;
  w.begin_object();
  w.key("command").value(s.command);
  w.key("finished").value(s.finished);
  w.key("fatal").value(s.fatal);
  w.key("records").value(s.records);
  w.key("samples").value(s.samples);
  w.key("stalls").value(s.stalls);
  w.key("malformed").value(s.malformed);
  w.key("warnings").begin_object();
  for (const auto& [kind, count] : s.warning_counts) {
    w.key(kind).value(count);
  }
  w.end_object();
  w.key("phases").begin_array();
  for (const std::string& name : s.phase_order) {
    const PhaseState& ph = s.phases.at(name);
    w.begin_object();
    w.key("phase").value(name);
    w.key("mode").value(ph.mode);
    w.key("ranks").value(std::int64_t{ph.ranks});
    w.key("masters").value(std::int64_t{ph.masters});
    w.key("done").value(ph.ended);
    w.key("enqueued").value(ph.enqueued);
    w.key("completed").value(ph.done);
    w.key("merges").value(ph.merges);
    if (ph.ended) w.key("seconds").value(ph.seconds);
    if (!ph.ended && ph.eta_seconds >= 0.0) {
      w.key("eta_seconds").value(ph.eta_seconds);
    }
    w.key("max_progress_gap").begin_object();
    w.key("wall").value(ph.max_gap_wall);
    w.key("virtual").value(ph.max_gap_virtual);
    w.end_object();
    w.key("warnings").value(ph.warnings);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::printf("%s\n", w.str().c_str());
}

}  // namespace

int cmd_monitor(int argc, const char* const* argv) {
  util::Options options;
  options.define_flag("follow",
                      "poll the stream until its `end` record arrives "
                      "(or --follow-timeout), then summarize");
  options.define("follow-timeout", "0",
                 "give up following after this many wall seconds without "
                 "the file growing (0 = wait forever)");
  options.define_flag("fail-on-stall",
                      "exit 1 when the stream contains any stall warning "
                      "or a fatal watchdog record (CI gate)");
  options.define_flag("json", "emit the summary as one JSON object");
  options.define("stragglers", "3",
                 "rows in the top-stragglers table (0 = omit)");
  options.parse(argc, argv);
  if (options.help_requested() || options.positionals().empty()) {
    std::fputs(options
                   .usage("pclust monitor <telemetry.jsonl>",
                          "Summarize a --telemetry-out JSONL stream: phase "
                          "progress/ETA, warnings, and per-rank straggler "
                          "totals; optionally follow a live stream and "
                          "gate on stalls.")
                   .c_str(),
               stdout);
    return options.help_requested() ? 0 : 2;
  }
  const std::string path = options.positionals()[0];
  require_readable(path);
  const int stragglers =
      static_cast<int>(get_int_in(options, "stragglers", 0, 1 << 16));
  const double follow_timeout =
      get_double_in(options, "follow-timeout", 0.0, 86'400.0);

  util::JsonlTailReader reader(path);
  StreamSummary s;
  bool readable = true;
  drain_stream(reader, s, &readable);
  if (!readable) throw IoError("cannot open telemetry stream: " + path);
  if (options.get_flag("follow")) {
    // Capped exponential backoff: a chatty stream is polled every 50 ms
    // (sub-interval latency for a live dashboard), a quiet one decays to
    // one poll per 2 s so following an hours-long run costs no measurable
    // CPU. Any new data snaps the delay back to the floor. Stagnation
    // accounting uses the ACTUAL slept time, so --follow-timeout means the
    // same wall seconds at every backoff level.
    constexpr double kMinPoll = 0.05;
    constexpr double kMaxPoll = 2.0;
    double poll = kMinPoll;
    double stagnant = 0.0;
    while (!s.finished) {
      std::this_thread::sleep_for(std::chrono::duration<double>(poll));
      // A rotated/truncated stream resets the reader to the start; the
      // folded state must restart with it or records double-count.
      std::error_code ec;
      const auto size = std::filesystem::file_size(path, ec);
      if (!ec && size < reader.offset()) s = StreamSummary{};
      if (drain_stream(reader, s, nullptr) == 0) {
        stagnant += poll;
        poll = std::min(poll * 2.0, kMaxPoll);
        if (follow_timeout > 0.0 && stagnant >= follow_timeout) {
          std::fprintf(stderr,
                       "monitor: stream idle for %.0fs without an end "
                       "record; giving up\n",
                       stagnant);
          break;
        }
      } else {
        stagnant = 0.0;
        poll = kMinPoll;
      }
    }
  }

  if (!s.have_start) {
    throw IoError(path + " is not a pclust telemetry stream (no start record)");
  }
  if (options.get_flag("json")) {
    render_json(s);
  } else {
    render_text(s, path, stragglers);
  }

  if (options.get_flag("fail-on-stall") && (s.stalls > 0 || s.fatal)) {
    std::fprintf(stderr,
                 "monitor: FAIL — %llu stall warning(s)%s in %s\n",
                 static_cast<unsigned long long>(s.stalls),
                 s.fatal ? " and a fatal watchdog record" : "",
                 path.c_str());
    return 1;
  }
  return 0;
}

}  // namespace pclust::cli
