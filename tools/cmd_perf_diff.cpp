#include <cstdio>

#include <fstream>
#include <sstream>
#include <string>

#include "cli_common.hpp"
#include "commands.hpp"
#include "pclust/pipeline/perfdiff.hpp"
#include "pclust/util/json.hpp"
#include "pclust/util/options.hpp"

namespace pclust::cli {

namespace {

util::JsonValue load_json(const std::string& path) {
  require_readable(path);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return util::parse_json(buffer.str());
  } catch (const util::JsonError& e) {
    throw IoError(path + ": " + e.what());
  }
}

}  // namespace

/// `pclust perf-diff --baseline a.json --candidate b.json`: the
/// perf-regression gate. Compares phase times, kernel rates, skip ratio,
/// and memory peaks against a relative tolerance; exit 1 on regression so
/// check.sh can gate on the committed BENCH_*.json baselines.
int cmd_perf_diff(int argc, const char* const* argv) {
  util::Options options;
  options.define("baseline", "", "baseline artifact (committed BENCH_*.json)");
  options.define("candidate", "", "candidate artifact (freshly measured)");
  options.define("tolerance", "0.15",
                 "allowed relative slowdown per metric (0.15 = +-15 %)");
  options.define("min-seconds", "0.05",
                 "baseline phases/kernels faster than this are reported but "
                 "never gated (timer noise)");
  options.define_flag("quiet", "print regressions only");
  options.parse(argc, argv);
  if (options.help_requested() || !options.positionals().empty() ||
      options.get("baseline").empty() || options.get("candidate").empty()) {
    std::fputs(options
                   .usage("pclust perf-diff --baseline BENCH_pipeline.json "
                          "--candidate new.json",
                          "Perf-regression gate between two benchmark "
                          "artifacts of the same kind (two run reports or "
                          "two kernel documents). Exits 0 when every gated "
                          "metric is within tolerance, 1 on regression. "
                          "Score-only kernels must additionally show "
                          "speedup_vs_full >= 1.0 in the candidate.")
                   .c_str(),
               stdout);
    return options.help_requested() ? 0 : 2;
  }

  pipeline::PerfDiffOptions opts;
  opts.tolerance = get_double_in(options, "tolerance", 0.0, 100.0);
  opts.min_seconds = get_double_in(options, "min-seconds", 0.0, 1e9);

  const util::JsonValue baseline = load_json(options.get("baseline"));
  const util::JsonValue candidate = load_json(options.get("candidate"));
  const pipeline::PerfDiffResult result =
      pipeline::perf_diff(baseline, candidate, opts);

  if (options.get_flag("quiet")) {
    for (const pipeline::PerfFinding& f : result.findings) {
      if (!f.regression) continue;
      std::printf("REGRESSION %s: %.6g -> %.6g (%.2fx) %s\n",
                  f.metric.c_str(), f.baseline, f.candidate, f.ratio,
                  f.note.c_str());
    }
  } else {
    std::fputs(pipeline::render_perf_diff(result).c_str(), stdout);
  }
  return result.has_regression() ? 1 : 0;
}

}  // namespace pclust::cli
