// `pclust chaos` — seeded fault-injection sweep over the whole pipeline.
//
// Every seed builds one deterministic fault scenario, runs the pipeline
// under it, and asserts the resilience contract:
//
//   class 0  order-preserving faults (drop + duplicate + straggler) on
//            EVERY simulated phase at p = 2 — family output must be
//            BIT-IDENTICAL to the fault-free serial run.
//   class 1  worker crashes in CCD and DSD at the sweep topology — both
//            phases are confluent, so output must be bit-identical to the
//            fault-free run at the SAME topology.
//   class 2  worker crash inside RR — RR heals to a valid (but possibly
//            different) redundancy removal, so the contract is the
//            alignment-work identity, well-formed disjoint families, and a
//            validating run report.
//   class 3  mid-write kill: a checkpoint is truncated between two runs —
//            --resume must roll back to the last-good generation (or
//            recompute), quarantine the damaged file, and still produce
//            the fault-free serial output.
//   class 4  checkpoint corruption: a seeded bit flip anywhere in the file
//            — same contract as class 3, and never an abort.
//   class 5  requeue storm: every worker but one crashes at the SAME
//            virtual instant (one heartbeat window) in both CCD and DSD —
//            the master requeues everything at once onto the lone
//            survivor; families and the alignment-work identity must match
//            the fault-free run bit for bit.
//   class 6  sub-master crash under the hierarchical protocol
//            (--masters >= 2, needs p >= masters + 2): the root replays
//            the dead shard's forwarded event log and re-homes its
//            workers; output must still equal the fault-free run (which is
//            itself bit-identical to the flat protocol's output).
//   class 7  artifact I/O storm: seeded ENOSPC/EIO faults at the IoEnv
//            layer, cycling over artifact classes. Checkpoint storms and
//            telemetry storms must leave families bit-identical (drop /
//            roll-back-and-continue policies); a sticky families or
//            report storm must fail with a structured, class-attributed
//            IoError and leave no torn artifact behind; transient faults
//            must heal through the retry layer (io.retries > 0).
//   class 8  memory-budget degradation: --mem-budget at 55–65 % of the
//            unconstrained serial peak — the run must complete
//            bit-identically through output-invariant levers only, with a
//            populated degradation log and a validating report.
//
// Every run also captures the merge-provenance ledger. Wherever the family
// contract is bit-identity (classes 0, 1, 3–8), the rendered ledger must
// equal the fault-free golden's byte for byte — the canonical-derivation
// claim under fire; where healing may change the output (class 2), the
// ledger must still cover every final-partition merge exactly once.
//
// Exits 0 when every seed upholds its contract, 1 otherwise.
#include <cstdio>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "commands.hpp"
#include "pclust/mpsim/fault_plan.hpp"
#include "pclust/pipeline/pipeline.hpp"
#include "pclust/pipeline/report.hpp"
#include "pclust/prov/ledger.hpp"
#include "pclust/quality/cluster_io.hpp"
#include "pclust/seq/fasta.hpp"
#include "pclust/synth/generator.hpp"
#include "pclust/util/checkpoint.hpp"
#include "pclust/util/io.hpp"
#include "pclust/util/json.hpp"
#include "pclust/util/memgov.hpp"
#include "pclust/util/metrics.hpp"
#include "pclust/util/options.hpp"
#include "pclust/util/telemetry.hpp"

namespace pclust::cli {

namespace {

bool same_families(const std::vector<pipeline::Family>& a,
                   const std::vector<pipeline::Family>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].members != b[i].members ||
        a[i].mean_degree != b[i].mean_degree ||
        a[i].density != b[i].density) {
      return false;
    }
  }
  return true;
}

/// attempted + skipped == promising - duplicate, per phase. The invariant
/// must hold under every fault plan: healing may re-align pairs, but every
/// admitted candidate is resolved exactly once.
bool work_identity(const pace::EngineCounters& c, std::string* why) {
  const std::uint64_t candidates = c.promising_pairs - c.duplicate_pairs;
  if (c.aligned_pairs + c.filtered_pairs != candidates) {
    *why = "work identity violated: aligned " +
           std::to_string(c.aligned_pairs) + " + filtered " +
           std::to_string(c.filtered_pairs) + " != candidates " +
           std::to_string(candidates);
    return false;
  }
  return true;
}

bool families_well_formed(const std::vector<pipeline::Family>& families,
                          std::string* why) {
  std::vector<char> used;
  for (std::size_t f = 0; f < families.size(); ++f) {
    const auto& m = families[f].members;
    if (m.empty()) {
      *why = "family " + std::to_string(f) + " is empty";
      return false;
    }
    if (f > 0 && families[f - 1].members.size() < m.size()) {
      *why = "families not sorted by descending size";
      return false;
    }
    for (const seq::SeqId id : m) {
      if (used.size() <= id) used.resize(id + 1, 0);
      if (used[id]) {
        *why = "sequence " + std::to_string(id) + " in two families";
        return false;
      }
      used[id] = 1;
    }
  }
  return true;
}

/// The healed run's provenance must (a) cover every final-partition merge
/// exactly once and (b) — since its family output equals the golden's —
/// render to the golden ledger's exact bytes.
bool ledger_matches(const pipeline::PipelineResult& result,
                    const std::string& golden_ledger, std::string* why) {
  if (!result.provenance.counts.identity_holds()) {
    *why = "provenance merge identity violated under faults";
    return false;
  }
  if (prov::render_ledger(result.provenance) != golden_ledger) {
    *why = "provenance ledger differs from the fault-free golden's bytes";
    return false;
  }
  return true;
}

bool report_validates(const pipeline::PipelineResult& result,
                      const pipeline::PipelineConfig& config,
                      std::string* why) {
  const std::string doc =
      pipeline::render_report(result, config, {"chaos", "<synthetic>"});
  std::string error;
  if (!pipeline::validate_report(util::parse_json(doc), &error)) {
    *why = "run report failed validation: " + error;
    return false;
  }
  return true;
}

void truncate_file(const std::filesystem::path& path, double keep_fraction) {
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(
      path, static_cast<std::uintmax_t>(static_cast<double>(size) *
                                        keep_fraction));
}

void flip_bit(const std::filesystem::path& path, std::uint64_t seed) {
  const auto size = std::filesystem::file_size(path);
  const std::uint64_t offset = (seed * 2654435761ull) % size;
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.get(byte);
  byte = static_cast<char>(byte ^ (1 << (seed % 8)));
  f.seekp(static_cast<std::streamoff>(offset));
  f.put(byte);
}

bool phase_logged(const pipeline::PipelineResult& result,
                  const std::string& entry) {
  for (const std::string& e : result.phase_log) {
    if (e == entry) return true;
  }
  return false;
}

}  // namespace

int cmd_chaos(int argc, const char* const* argv) {
  util::Options options;
  options.define("seeds", "16", "number of fault scenarios to sweep");
  options.define("n", "300", "synthetic sample size (ignored with --input)");
  options.define("input", "", "FASTA input (default: synthesize a sample)");
  options.define("processors", "4",
                 "simulated ranks for RR+CCD in the crash classes (>= 3)");
  options.define("dsd-processors", "3",
                 "simulated ranks for batched DSD (>= 3 enables DSD "
                 "crashes)");
  options.define("masters", "2",
                 "sub-master count for the hierarchical crash class "
                 "(skipped when --processors < masters + 2)");
  options.define("threads", "1",
                 "real worker threads for every run (0 = all cores)");
  options.define("workdir", "",
                 "scratch directory for checkpoint scenarios (default: a "
                 "temp dir; removed afterwards unless given explicitly)");
  options.define("telemetry-out", "",
                 "stream JSONL run telemetry for the whole sweep to this "
                 "path; every per-seed pipeline run contributes its phase "
                 "records (inspect with `pclust monitor`)");
  options.define("telemetry-interval", "1",
                 "wall seconds between telemetry samples");
  define_simd_option(options);
  options.parse(argc, argv);
  if (options.help_requested()) {
    std::fputs(options
                   .usage("pclust chaos",
                          "Sweep seeded fault plans (crashes, message "
                          "drops/duplicates, stragglers, damaged "
                          "checkpoints) over the pipeline and verify the "
                          "self-healing guarantees.")
                   .c_str(),
               stdout);
    return 0;
  }

  const auto seeds = static_cast<std::uint64_t>(
      get_int_in(options, "seeds", 1, 10'000));
  const int processors =
      static_cast<int>(get_int_in(options, "processors", 3, 1 << 10));
  const int dsd_processors =
      static_cast<int>(get_int_in(options, "dsd-processors", 2, 1 << 10));
  const int masters =
      static_cast<int>(get_int_in(options, "masters", 2, 1 << 10));
  const auto threads =
      static_cast<unsigned>(get_int_in(options, "threads", 0, 1 << 16));
  apply_simd_option(options);

  seq::SequenceSet sequences;
  if (const std::string input = options.get("input"); !input.empty()) {
    require_readable(input);
    seq::read_fasta_file(input, sequences);
  } else {
    synth::DatasetSpec spec;
    spec.num_sequences = static_cast<std::uint32_t>(
        get_int_in(options, "n", 10, 1'000'000));
    spec.num_families = std::max<std::uint32_t>(4, spec.num_sequences / 40);
    spec.redundant_fraction = 0.15;
    spec.noise_fraction = 0.2;
    spec.seed = 42;
    sequences = synth::generate(spec).sequences;
  }
  std::printf("chaos: %zu sequences, %llu seeds, rr/ccd p=%d, dsd p=%d\n",
              sequences.size(), static_cast<unsigned long long>(seeds),
              processors, dsd_processors);

  util::telemetry::TelemetryConfig telemetry;
  telemetry.path = options.get("telemetry-out");
  telemetry.command = "chaos";
  telemetry.interval = get_double_in(options, "telemetry-interval", 0.01, 3600.0);
  if (!telemetry.path.empty()) {
    require_writable(telemetry.path);
    util::telemetry::enable(telemetry);
  }

  const bool own_workdir = options.get("workdir").empty();
  const std::filesystem::path workdir =
      own_workdir ? std::filesystem::temp_directory_path() /
                        "pclust-chaos-scratch"
                  : std::filesystem::path(options.get("workdir"));

  pipeline::PipelineConfig base;
  base.threads = threads;
  // Capture merge provenance on every run: the sweep doubles as the
  // ledger's determinism gauntlet (byte-equality wherever families are).
  base.provenance = true;

  // Fault-free goldens: the serial reference and the sweep topology.
  util::metrics().reset();
  const pipeline::PipelineResult golden_serial = pipeline::run(sequences, base);
  // The unconstrained capacity peak calibrates the memory-budget class:
  // class 8 budgets a fraction of this and must still land bit-identically.
  const std::uint64_t golden_high_water = util::governor().high_water();
  pipeline::PipelineConfig parallel_config = base;
  parallel_config.processors = processors;
  parallel_config.dsd_processors = dsd_processors;
  util::metrics().reset();
  const pipeline::PipelineResult golden_parallel =
      pipeline::run(sequences, parallel_config);
  const std::string golden_serial_ledger =
      prov::render_ledger(golden_serial.provenance);
  const std::string golden_parallel_ledger =
      prov::render_ledger(golden_parallel.provenance);
  std::printf("chaos: goldens computed (serial: %zu families, p=%d: %zu; "
              "ledgers %s)\n",
              golden_serial.families.size(), processors,
              golden_parallel.families.size(),
              golden_serial_ledger == golden_parallel_ledger
                  ? "identical across topologies"
                  : "DIFFER across topologies");
  if (golden_serial_ledger != golden_parallel_ledger) {
    std::fprintf(stderr,
                 "chaos: fault-free provenance ledgers differ between "
                 "serial and p=%d — canonical derivation is broken\n",
                 processors);
    return 1;
  }

  std::uint64_t failures = 0;
  const auto report_failure = [&](std::uint64_t seed, const char* label,
                                  const std::string& why) {
    ++failures;
    std::fprintf(stderr, "chaos: seed %llu (%s): FAIL — %s\n",
                 static_cast<unsigned long long>(seed), label, why.c_str());
  };

  for (std::uint64_t seed = 0; seed < seeds; ++seed) {
    const int klass = static_cast<int>(seed % 9);
    std::string why;
    util::metrics().reset();

    if (klass == 5) {
      // Requeue storm: all workers but the last crash at the same virtual
      // instant — one heartbeat window — in CCD and (when wide enough)
      // DSD. The master absorbs the simultaneous failure burst, requeues
      // every outstanding pair onto the lone survivor, and the confluent
      // phases still land bit-identically.
      mpsim::FaultPlan ccd_plan;
      ccd_plan.seed = seed;
      const double at = static_cast<double>(seed % 3) * 1e-3;
      for (int w = 1; w < processors - 1; ++w) {
        ccd_plan.crashes.push_back({w, at});
      }
      mpsim::FaultPlan dsd_plan;
      dsd_plan.seed = seed;
      if (dsd_processors >= 3) {
        for (int w = 1; w < dsd_processors - 1; ++w) {
          dsd_plan.crashes.push_back({w, 0.0});
        }
      } else {
        dsd_plan.duplicate_probability = 0.3;
      }
      pipeline::PipelineConfig cfg = parallel_config;
      cfg.ccd_fault_plan = &ccd_plan;
      cfg.dsd_fault_plan = &dsd_plan;
      const pipeline::PipelineResult result = pipeline::run(sequences, cfg);
      if (!same_families(result.families, golden_parallel.families)) {
        report_failure(seed, "requeue-storm",
                       "families differ from the fault-free run at p=" +
                           std::to_string(processors));
      } else if (!work_identity(result.rr.counters, &why) ||
                 !work_identity(result.ccd.counters, &why) ||
                 !ledger_matches(result, golden_parallel_ledger, &why) ||
                 !report_validates(result, cfg, &why)) {
        report_failure(seed, "requeue-storm", why);
      } else if (result.ccd.run.crashed_ranks.size() !=
                 static_cast<std::size_t>(processors - 2)) {
        report_failure(seed, "requeue-storm",
                       "expected " + std::to_string(processors - 2) +
                           " simultaneous CCD crashes, saw " +
                           std::to_string(result.ccd.run.crashed_ranks.size()));
      } else {
        std::printf("chaos: seed %llu (requeue-storm): ok, %d simultaneous "
                    "crashes healed bit-identically (%llu pairs requeued)\n",
                    static_cast<unsigned long long>(seed), processors - 2,
                    static_cast<unsigned long long>(
                        result.ccd.run.counter("pairs_requeued")));
      }
      continue;
    }
    if (klass == 6) {
      if (processors < masters + 2) {
        std::printf("chaos: seed %llu (submaster-crash): skipped "
                    "(--processors %d < masters %d + 2)\n",
                    static_cast<unsigned long long>(seed), processors,
                    masters);
        continue;
      }
      // Hierarchical protocol with a sub-master death: the root replays
      // the dead shard's forwarded events and re-homes its orphans. The
      // hierarchical fault-free output equals the flat golden, so the
      // healed run must match it bit for bit too.
      pipeline::PipelineConfig cfg = parallel_config;
      cfg.pace.masters = masters;
      mpsim::FaultPlan ccd_plan;
      ccd_plan.seed = seed;
      ccd_plan.crashes.push_back(
          {1 + static_cast<int>(seed % masters),
           static_cast<double>(seed % 3) * 1e-3});
      cfg.ccd_fault_plan = &ccd_plan;
      mpsim::FaultPlan dsd_plan;
      dsd_plan.seed = seed;
      if (dsd_processors >= masters + 2) {
        dsd_plan.crashes.push_back({1 + static_cast<int>(seed % masters),
                                    0.0});
      } else {
        dsd_plan.duplicate_probability = 0.3;
      }
      cfg.dsd_fault_plan = &dsd_plan;
      const pipeline::PipelineResult result = pipeline::run(sequences, cfg);
      if (!same_families(result.families, golden_parallel.families)) {
        report_failure(seed, "submaster-crash",
                       "families differ from the fault-free flat run at p=" +
                           std::to_string(processors));
      } else if (!work_identity(result.rr.counters, &why) ||
                 !work_identity(result.ccd.counters, &why) ||
                 !ledger_matches(result, golden_parallel_ledger, &why) ||
                 !report_validates(result, cfg, &why)) {
        report_failure(seed, "submaster-crash", why);
      } else if (result.ccd.run.counter("submasters_failed") == 0) {
        report_failure(seed, "submaster-crash",
                       "no sub-master failure was recorded in the CCD run");
      } else {
        std::printf("chaos: seed %llu (submaster-crash): ok, root replayed "
                    "the shard log (%llu workers re-homed)\n",
                    static_cast<unsigned long long>(seed),
                    static_cast<unsigned long long>(
                        result.ccd.run.counter("workers_rehomed")));
      }
      continue;
    }
    if (klass == 7) {
      // Artifact I/O storm at the IoEnv layer. The scenario cycles over
      // artifact classes and sticky/transient faults; the per-class
      // degradation policy decides the contract for each.
      const std::uint64_t idx = seed / 9;
      static const struct {
        util::io::ArtifactClass cls;
        const char* name;
      } kTargets[] = {
          {util::io::ArtifactClass::kCheckpoint, "checkpoint"},
          {util::io::ArtifactClass::kTelemetry, "telemetry"},
          {util::io::ArtifactClass::kFamilies, "families"},
          {util::io::ArtifactClass::kReport, "report"},
      };
      const auto& target = kTargets[idx % 4];
      const bool sticky = (idx / 4) % 2 == 0;
      const std::string spec = std::string(target.name) +
                               (seed % 2 == 0 ? ":enospc@1" : ":eio@1") +
                               (sticky ? ":sticky" : "");
      const util::io::IoFaultPlan plan = util::io::IoFaultPlan::parse(spec);
      const std::string label = "io-storm[" + spec + "]";
      const std::filesystem::path dir =
          workdir / ("seed-" + std::to_string(seed));
      std::filesystem::remove_all(dir);
      std::filesystem::create_directories(dir);

      if (target.cls == util::io::ArtifactClass::kCheckpoint) {
        // Checkpoint writes roll back and continue: even a sticky storm
        // must not change the families, and a clean --resume afterwards
        // (no checkpoints survived) recomputes the same output.
        pipeline::PipelineConfig cfg = base;
        cfg.checkpoint_dir = dir.string();
        util::io::io().configure(plan);
        try {
          const pipeline::PipelineResult result =
              pipeline::run(sequences, cfg);
          util::io::io().reset();
          const std::uint64_t write_failures =
              util::metrics().counter("checkpoint.write_failures").value();
          const std::uint64_t retries =
              util::metrics().counter("io.retries").value();
          if (!same_families(result.families, golden_serial.families)) {
            report_failure(seed, label.c_str(),
                           "families differ under a checkpoint storm");
          } else if (!ledger_matches(result, golden_serial_ledger, &why)) {
            report_failure(seed, label.c_str(), why);
          } else if (sticky && write_failures == 0) {
            report_failure(seed, label.c_str(),
                           "sticky storm recorded no checkpoint write "
                           "failures");
          } else if (!sticky && (write_failures != 0 || retries == 0)) {
            report_failure(seed, label.c_str(),
                           "transient fault did not heal through the retry "
                           "layer");
          } else {
            util::metrics().reset();
            cfg.resume = true;
            const pipeline::PipelineResult resumed =
                pipeline::run(sequences, cfg);
            if (!same_families(resumed.families, golden_serial.families)) {
              report_failure(seed, label.c_str(),
                             "post-storm --resume diverged from the serial "
                             "run");
            } else if (!ledger_matches(resumed, golden_serial_ledger,
                                       &why)) {
              report_failure(seed, label.c_str(),
                             "post-storm --resume: " + why);
            } else {
              std::printf("chaos: seed %llu (%s): ok, run + resume "
                          "bit-identical (%llu checkpoint writes failed)\n",
                          static_cast<unsigned long long>(seed),
                          label.c_str(),
                          static_cast<unsigned long long>(write_failures));
            }
          }
        } catch (const std::exception& e) {
          util::io::io().reset();
          report_failure(seed, label.c_str(),
                         std::string("checkpoint storm aborted the run: ") +
                             e.what());
        }
        continue;
      }

      if (target.cls == util::io::ArtifactClass::kTelemetry) {
        if (!telemetry.path.empty()) {
          std::printf("chaos: seed %llu (%s): skipped (global "
                      "--telemetry-out stream is active)\n",
                      static_cast<unsigned long long>(seed), label.c_str());
          continue;
        }
        // Telemetry appends are drop-and-count: a storm must never touch
        // the families, only the stream.
        util::telemetry::TelemetryConfig tc;
        tc.path = (dir / "telemetry.jsonl").string();
        tc.command = "chaos";
        tc.interval = 3600.0;
        util::io::io().configure(plan);
        util::telemetry::enable(tc);
        try {
          const pipeline::PipelineResult result =
              pipeline::run(sequences, base);
          util::telemetry::disable();
          util::io::io().reset();
          const std::uint64_t dropped =
              util::metrics().counter("io.dropped.telemetry").value();
          if (!same_families(result.families, golden_serial.families)) {
            report_failure(seed, label.c_str(),
                           "families differ under a telemetry storm");
          } else if (dropped == 0) {
            report_failure(seed, label.c_str(),
                           "storm on the telemetry stream dropped no "
                           "records");
          } else {
            std::printf("chaos: seed %llu (%s): ok, %llu records dropped, "
                        "families untouched\n",
                        static_cast<unsigned long long>(seed), label.c_str(),
                        static_cast<unsigned long long>(dropped));
          }
        } catch (const std::exception& e) {
          util::telemetry::disable();
          util::io::io().reset();
          report_failure(seed, label.c_str(),
                         std::string("telemetry storm aborted the run: ") +
                             e.what());
        }
        continue;
      }

      // Families / report: primary artifacts are fatal-on-failure. A
      // sticky storm must surface a class-attributed IoError and leave no
      // torn file; a transient fault must heal through the retry layer.
      const pipeline::PipelineResult result = pipeline::run(sequences, base);
      const bool is_report = target.cls == util::io::ArtifactClass::kReport;
      const std::filesystem::path out =
          dir / (is_report ? "report.json" : "families.tsv");
      const pipeline::ReportInfo info{"chaos", "<synthetic>"};
      const auto write_artifact = [&](const std::filesystem::path& path) {
        if (is_report) {
          pipeline::write_report(path, result, base, info);
        } else {
          quality::write_clustering_file(path.string(),
                                         result.family_clustering(),
                                         sequences);
        }
      };
      util::io::io().configure(plan);
      if (sticky) {
        std::string message;
        try {
          write_artifact(out);
        } catch (const util::io::IoError& e) {
          message = e.what();
        }
        util::io::io().reset();
        const std::string want = std::string("io[") + target.name + "]";
        if (message.empty()) {
          report_failure(seed, label.c_str(),
                         "sticky storm did not fail the write");
        } else if (message.find(want) == std::string::npos) {
          report_failure(seed, label.c_str(),
                         "error lacks the artifact class: " + message);
        } else if (std::filesystem::exists(out)) {
          report_failure(seed, label.c_str(),
                         "failed commit left a torn artifact behind");
        } else {
          write_artifact(out);  // fault-free retry by the operator
          std::printf("chaos: seed %llu (%s): ok, structured failure "
                      "(%s), clean rewrite succeeded\n",
                      static_cast<unsigned long long>(seed), label.c_str(),
                      want.c_str());
        }
      } else {
        try {
          write_artifact(out);
          util::io::io().reset();
          const std::uint64_t retries =
              util::metrics().counter("io.retries").value();
          // Verify the healed artifact is whole. The report embeds the
          // live metrics registry (including the retry just recorded), so
          // a byte-compare against a re-render is only valid for the
          // families file; the report is checked semantically instead.
          bool whole = true;
          std::string defect;
          if (is_report) {
            std::ifstream in(out, std::ios::binary);
            const std::string doc((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
            whole = pipeline::validate_report(util::parse_json(doc), &defect);
          } else {
            const std::filesystem::path clean = out.string() + ".clean";
            write_artifact(clean);
            std::ifstream a(out, std::ios::binary);
            std::ifstream b(clean, std::ios::binary);
            const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                                      std::istreambuf_iterator<char>());
            const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                                      std::istreambuf_iterator<char>());
            whole = bytes_a == bytes_b;
            defect = "healed artifact differs from a clean write";
          }
          if (retries == 0) {
            report_failure(seed, label.c_str(),
                           "transient fault healed without a recorded "
                           "retry");
          } else if (!whole) {
            report_failure(seed, label.c_str(), defect);
          } else {
            std::printf("chaos: seed %llu (%s): ok, transient fault healed "
                        "(%llu retries), artifact verified whole\n",
                        static_cast<unsigned long long>(seed), label.c_str(),
                        static_cast<unsigned long long>(retries));
          }
        } catch (const std::exception& e) {
          util::io::io().reset();
          report_failure(seed, label.c_str(),
                         std::string("transient fault was not healed: ") +
                             e.what());
        }
      }
      continue;
    }
    if (klass == 8) {
      // Memory-budget degradation: 55–65 % of the unconstrained serial
      // peak. Output-invariant levers must absorb the squeeze — same
      // families, a populated degradation log, a validating report.
      const double frac = 0.55 + 0.05 * static_cast<double>((seed / 9) % 3);
      pipeline::PipelineConfig cfg = base;
      cfg.mem_budget_bytes = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(
                 static_cast<double>(golden_high_water) * frac));
      const std::string label =
          "mem-budget[" + std::to_string(static_cast<int>(frac * 100)) +
          "%]";
      try {
        const pipeline::PipelineResult result = pipeline::run(sequences, cfg);
        const auto events = util::governor().degradation_log();
        if (!same_families(result.families, golden_serial.families)) {
          report_failure(seed, label.c_str(),
                         "budgeted families differ from the unconstrained "
                         "run");
        } else if (events.empty()) {
          report_failure(seed, label.c_str(),
                         "run under a 2x-exceedable budget recorded no "
                         "degradation events");
        } else if (!ledger_matches(result, golden_serial_ledger, &why) ||
                   !report_validates(result, cfg, &why)) {
          report_failure(seed, label.c_str(), why);
        } else {
          std::printf("chaos: seed %llu (%s): ok, bit-identical through %zu "
                      "degradation action(s), peak %llu / budget %llu\n",
                      static_cast<unsigned long long>(seed), label.c_str(),
                      events.size(),
                      static_cast<unsigned long long>(
                          util::governor().high_water()),
                      static_cast<unsigned long long>(cfg.mem_budget_bytes));
        }
      } catch (const util::MemoryBudgetExceeded& e) {
        report_failure(seed, label.c_str(),
                       std::string("degradation failed to keep the run "
                                   "under budget: ") +
                           e.what());
      }
      continue;
    }

    if (klass == 0) {
      // Order-preserving faults on every phase at p = 2: the protocol's
      // round structure makes drops, duplicates, and stragglers invisible
      // to the verdict order, so even RR must match the serial run bit
      // for bit.
      mpsim::FaultPlan plan;
      plan.seed = seed;
      plan.drop_probability = 0.2 + 0.05 * static_cast<double>(seed % 3);
      plan.duplicate_probability = 0.2;
      plan.straggler_factor = {1.0, 2.0 + static_cast<double>(seed % 4)};
      mpsim::FaultPlan dsd_plan = plan;
      pipeline::PipelineConfig cfg = base;
      cfg.processors = 2;
      cfg.dsd_processors = 2;
      cfg.fault_plan = &plan;
      cfg.dsd_fault_plan = &dsd_plan;
      const pipeline::PipelineResult result = pipeline::run(sequences, cfg);
      if (!same_families(result.families, golden_serial.families)) {
        report_failure(seed, "order-preserving@p2",
                       "families differ from the fault-free serial run");
      } else if (!work_identity(result.rr.counters, &why) ||
                 !work_identity(result.ccd.counters, &why) ||
                 !ledger_matches(result, golden_serial_ledger, &why) ||
                 !report_validates(result, cfg, &why)) {
        report_failure(seed, "order-preserving@p2", why);
      } else {
        std::printf("chaos: seed %llu (order-preserving@p2): ok, "
                    "bit-identical to serial\n",
                    static_cast<unsigned long long>(seed));
      }
    } else if (klass == 1) {
      // CCD + DSD worker crashes (plus a straggler): both phases apply
      // verdicts confluently, so healing must reproduce the fault-free
      // output of the same topology exactly.
      mpsim::FaultPlan ccd_plan;
      ccd_plan.seed = seed;
      ccd_plan.crashes.push_back(
          {1 + static_cast<int>(seed % (processors - 1)),
           static_cast<double>(seed % 3) * 1e-3});
      ccd_plan.straggler_factor.resize(processors, 1.0);
      ccd_plan.straggler_factor[processors - 1] = 3.0;
      mpsim::FaultPlan dsd_plan;
      dsd_plan.seed = seed;
      if (dsd_processors >= 3) {
        dsd_plan.crashes.push_back(
            {1 + static_cast<int>(seed % (dsd_processors - 1)), 0.0});
      } else {
        dsd_plan.duplicate_probability = 0.3;
      }
      pipeline::PipelineConfig cfg = parallel_config;
      cfg.ccd_fault_plan = &ccd_plan;
      cfg.dsd_fault_plan = &dsd_plan;
      const pipeline::PipelineResult result = pipeline::run(sequences, cfg);
      if (!same_families(result.families, golden_parallel.families)) {
        report_failure(seed, "ccd+dsd-crash",
                       "families differ from the fault-free run at p=" +
                           std::to_string(processors));
      } else if (!work_identity(result.rr.counters, &why) ||
                 !work_identity(result.ccd.counters, &why) ||
                 !ledger_matches(result, golden_parallel_ledger, &why) ||
                 !report_validates(result, cfg, &why)) {
        report_failure(seed, "ccd+dsd-crash", why);
      } else {
        std::printf("chaos: seed %llu (ccd+dsd-crash): ok, healed "
                    "bit-identically (%llu streams adopted)\n",
                    static_cast<unsigned long long>(seed),
                    static_cast<unsigned long long>(
                        result.ccd.run.counter("streams_adopted") +
                        result.dsd_run.counter("streams_adopted")));
      }
    } else if (klass == 2) {
      // RR worker crash: RR's verdict application is order-dependent, so
      // the healed output may legitimately differ — the contract is a
      // valid, complete, internally consistent run.
      mpsim::FaultPlan rr_plan;
      rr_plan.seed = seed;
      rr_plan.crashes.push_back(
          {1 + static_cast<int>(seed % (processors - 1)),
           static_cast<double>(seed % 4) * 5e-4});
      pipeline::PipelineConfig cfg = parallel_config;
      cfg.rr_fault_plan = &rr_plan;
      const pipeline::PipelineResult result = pipeline::run(sequences, cfg);
      if (result.families.empty() && !golden_parallel.families.empty()) {
        report_failure(seed, "rr-crash", "run produced no families");
      } else if (!work_identity(result.rr.counters, &why) ||
                 !work_identity(result.ccd.counters, &why) ||
                 !families_well_formed(result.families, &why) ||
                 !report_validates(result, cfg, &why)) {
        report_failure(seed, "rr-crash", why);
      } else if (!result.provenance.counts.identity_holds()) {
        // RR healing may change the partition, so no golden to compare —
        // but whatever partition emerged must still be fully evidenced.
        report_failure(seed, "rr-crash",
                       "provenance merge identity violated on the healed "
                       "partition");
      } else {
        std::printf("chaos: seed %llu (rr-crash): ok, healed to a valid "
                    "clustering (%zu families)\n",
                    static_cast<unsigned long long>(seed),
                    result.families.size());
      }
    } else {
      // Classes 3 + 4: damage a checkpoint between runs, then --resume.
      // Two fault-free runs first, so a last-good backup generation
      // exists; the damaged primary must be quarantined and either rolled
      // back or recomputed — never an abort, always the serial output.
      const char* label = klass == 3 ? "mid-write-kill" : "corrupt-ckpt";
      const std::filesystem::path dir =
          workdir / ("seed-" + std::to_string(seed));
      std::filesystem::remove_all(dir);
      pipeline::PipelineConfig cfg = base;
      cfg.checkpoint_dir = dir.string();
      (void)pipeline::run(sequences, cfg);
      util::metrics().reset();
      (void)pipeline::run(sequences, cfg);  // rotates gen 1 to *.1

      const char* const names[] = {"rr.ckpt", "ccd.ckpt", "families.ckpt"};
      const std::filesystem::path victim = dir / names[(seed / 5) % 3];
      if (klass == 3) {
        // A kill mid-write leaves a short file (tmp+rename makes this
        // impossible for the primary in real runs, but a torn disk or a
        // kill during an overwrite on a non-atomic filesystem does not).
        truncate_file(victim, 0.25 * static_cast<double>(seed % 4));
      } else {
        flip_bit(victim, seed);
      }

      util::metrics().reset();
      cfg.resume = true;
      try {
        const pipeline::PipelineResult result = pipeline::run(sequences, cfg);
        const std::string stem = victim.stem().string();  // "rr", "ccd", ...
        const std::string phase = stem == "families" ? "families" : stem;
        if (!same_families(result.families, golden_serial.families)) {
          report_failure(seed, label,
                         "resumed families differ from the serial run");
        } else if (!std::filesystem::exists(
                       util::checkpoint_quarantine_path(victim))) {
          report_failure(seed, label,
                         "damaged checkpoint was not quarantined to " +
                             util::checkpoint_quarantine_path(victim)
                                 .string());
        } else if (!phase_logged(result, phase + ":resumed-backup")) {
          report_failure(seed, label,
                         "expected " + phase +
                             ":resumed-backup in the phase log");
        } else if (!ledger_matches(result, golden_serial_ledger, &why) ||
                   !report_validates(result, cfg, &why)) {
          report_failure(seed, label, why);
        } else {
          std::printf("chaos: seed %llu (%s): ok, %s quarantined and "
                      "rolled back\n",
                      static_cast<unsigned long long>(seed), label,
                      victim.filename().c_str());
        }
      } catch (const util::CheckpointError& e) {
        report_failure(seed, label,
                       std::string("resume aborted on damaged checkpoint: ") +
                           e.what());
      }
    }
  }

  if (own_workdir) {
    std::error_code ec;
    std::filesystem::remove_all(workdir, ec);
  }
  if (!telemetry.path.empty()) {
    util::telemetry::disable();
    std::printf("wrote telemetry to %s\n", telemetry.path.c_str());
  }
  if (failures != 0) {
    std::fprintf(stderr, "chaos: %llu of %llu seeds FAILED\n",
                 static_cast<unsigned long long>(failures),
                 static_cast<unsigned long long>(seeds));
    return 1;
  }
  std::printf("chaos: all %llu seeds upheld the resilience contract\n",
              static_cast<unsigned long long>(seeds));
  return 0;
}

}  // namespace pclust::cli
