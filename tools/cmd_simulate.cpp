#include <cstdio>

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cli_common.hpp"
#include "commands.hpp"
#include "pclust/exec/pool.hpp"
#include "pclust/mpsim/fault_plan.hpp"
#include "pclust/mpsim/machine_model.hpp"
#include "pclust/pace/components.hpp"
#include "pclust/pace/redundancy.hpp"
#include "pclust/seq/fasta.hpp"
#include "pclust/synth/presets.hpp"
#include "pclust/util/options.hpp"
#include "pclust/util/strings.hpp"
#include "pclust/util/table.hpp"
#include "pclust/util/telemetry.hpp"

namespace pclust::cli {

int cmd_simulate(int argc, const char* const* argv) {
  util::Options options;
  options.define("n", "2000", "synthetic input size (ignored with a FASTA)");
  options.define("processors", "32,64,128,512",
                 "comma-separated simulated rank counts");
  options.define("machine", "bluegene",
                 "machine model: bluegene or xeon");
  options.define("masters", "1",
                 "master-tree width for the CCD phase: 1 = flat single "
                 "master; N >= 2 adds N sub-masters (ranks 1..N) under the "
                 "root — every simulated rank count must be >= N + 2 (RR "
                 "always runs flat; results are bit-identical)");
  options.define("psi", "10", "min exact-match length");
  options.define("band", "32", "CCD band (RR always runs full DP)");
  options.define("seed", "42", "workload seed");
  options.define("threads", "1",
                 "real worker threads per simulation (0 = all cores)");
  options.define("crash", "",
                 "fault injection: comma-separated rank@virtual-seconds "
                 "crash schedule, e.g. 1@5,3@20");
  options.define("drop", "0",
                 "fault injection: per-message drop probability in [0, 1) "
                 "(dropped copies are retransmitted with a delay)");
  options.define("dup", "0",
                 "fault injection: per-message duplicate-delivery "
                 "probability in [0, 1)");
  options.define("straggle", "",
                 "fault injection: comma-separated rank@slowdown compute "
                 "multipliers, e.g. 2@4");
  options.define("submaster-crash", "",
                 "fault injection: crash sub-master i (1-based, i <= "
                 "--masters) at a virtual time, e.g. 1@5 (requires "
                 "--masters >= 2; CCD phase only — RR runs flat)");
  options.define("submaster-straggle", "",
                 "fault injection: slow down sub-master i by a compute "
                 "multiplier, e.g. 1@4 (requires --masters >= 2)");
  options.define("heartbeat", "0",
                 "master declares a silent worker dead after this many wall "
                 "seconds (0 = wait forever)");
  options.define("fault-seed", "1", "seed for per-message fault decisions");
  options.define("telemetry-out", "",
                 "stream JSONL run telemetry for the whole sweep to this "
                 "path (one phase record pair per p/phase combination); "
                 "inspect with `pclust monitor`");
  options.define("telemetry-interval", "1",
                 "wall seconds between telemetry samples (also the "
                 "virtual-domain sampling interval)");
  define_simd_option(options);
  options.parse(argc, argv);
  if (options.help_requested()) {
    std::fputs(options
                   .usage("pclust simulate [input.fa]",
                          "Replay the RR and CCD phases on the simulated "
                          "distributed-memory machine and report virtual "
                          "run-times per processor count.")
                   .c_str(),
               stdout);
    return 0;
  }

  apply_simd_option(options);

  pace::PaceParams ccd_params;
  ccd_params.psi =
      static_cast<std::uint32_t>(get_int_in(options, "psi", 1, 10'000));
  ccd_params.band =
      static_cast<std::uint32_t>(get_int_in(options, "band", 0, 1 << 20));
  ccd_params.heartbeat_timeout =
      get_double_in(options, "heartbeat", 0.0, 86'400.0);
  ccd_params.masters =
      static_cast<int>(get_int_in(options, "masters", 1, 1 << 12));
  const int masters = ccd_params.masters;
  pace::PaceParams rr_params = ccd_params;
  rr_params.band = 0;
  // RR applies verdicts order-dependently and always runs flat; only the
  // CCD phase hosts the sub-master tier.
  rr_params.masters = 1;

  mpsim::FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(
      get_int_in(options, "fault-seed", 0, std::numeric_limits<int>::max()));
  plan.drop_probability = get_double_in(options, "drop", 0.0, 0.999);
  plan.duplicate_probability = get_double_in(options, "dup", 0.0, 0.999);
  for (const auto& [rank, at] : parse_rank_at(options.get("crash"), "crash")) {
    if (rank == 0) {
      throw UsageError(
          "--crash: rank 0 is the master; crashing it is unrecoverable "
          "(use --checkpoint-dir / --resume for master failures)");
    }
    if (masters > 1 && rank <= masters) {
      throw UsageError(
          "--crash: rank " + std::to_string(rank) +
          " is a sub-master under --masters " + std::to_string(masters) +
          "; use --submaster-crash " + std::to_string(rank) + "@t instead");
    }
    if (at < 0.0) throw UsageError("--crash: time must be >= 0");
    plan.crashes.push_back({rank, at});
  }
  for (const auto& [rank, at] :
       parse_rank_at(options.get("submaster-crash"), "submaster-crash")) {
    if (masters < 2) {
      throw UsageError(
          "--submaster-crash requires --masters >= 2 (there are no "
          "sub-masters in the flat protocol)");
    }
    if (rank < 1 || rank > masters) {
      throw UsageError(
          "--submaster-crash: sub-master index must be in [1, " +
          std::to_string(masters) + "], got " + std::to_string(rank));
    }
    if (at < 0.0) throw UsageError("--submaster-crash: time must be >= 0");
    plan.crashes.push_back({rank, at});
  }
  for (const auto& [rank, factor] : parse_rank_at(
           options.get("submaster-straggle"), "submaster-straggle")) {
    if (masters < 2) {
      throw UsageError("--submaster-straggle requires --masters >= 2");
    }
    if (rank < 1 || rank > masters) {
      throw UsageError(
          "--submaster-straggle: sub-master index must be in [1, " +
          std::to_string(masters) + "], got " + std::to_string(rank));
    }
    if (factor < 1.0) {
      throw UsageError("--submaster-straggle: factor must be >= 1");
    }
    if (plan.straggler_factor.size() <= static_cast<std::size_t>(rank)) {
      plan.straggler_factor.resize(static_cast<std::size_t>(rank) + 1, 1.0);
    }
    plan.straggler_factor[static_cast<std::size_t>(rank)] = factor;
  }
  for (const auto& [rank, factor] :
       parse_rank_at(options.get("straggle"), "straggle")) {
    if (rank < 0) throw UsageError("--straggle: rank must be >= 0");
    if (factor < 1.0) throw UsageError("--straggle: factor must be >= 1");
    if (plan.straggler_factor.size() <= static_cast<std::size_t>(rank)) {
      plan.straggler_factor.resize(static_cast<std::size_t>(rank) + 1, 1.0);
    }
    plan.straggler_factor[static_cast<std::size_t>(rank)] = factor;
  }
  const mpsim::FaultPlan* plan_arg = plan.empty() ? nullptr : &plan;

  seq::SequenceSet sequences;
  if (!options.positionals().empty()) {
    require_readable(options.positionals()[0]);
    seq::read_fasta_file(options.positionals()[0], sequences);
  } else {
    const auto spec = synth::paper_160k(
        get_double_in(options, "n", 1.0, 10'000'000.0) / 160'000.0,
        static_cast<std::uint64_t>(
            get_int_in(options, "seed", 0, std::numeric_limits<int>::max())));
    sequences = synth::generate(spec).sequences;
  }

  const std::string machine = options.get("machine");
  if (machine != "bluegene" && machine != "xeon") {
    throw UsageError("unknown --machine '" + machine +
                     "' (use bluegene or xeon)");
  }
  const auto model = machine == "xeon" ? mpsim::MachineModel::xeon_cluster()
                                       : mpsim::MachineModel::bluegene_l();

  exec::Pool pool(
      static_cast<unsigned>(get_int_in(options, "threads", 0, 1 << 16)));
  exec::Pool* pool_arg = pool.size() > 1 ? &pool : nullptr;

  util::telemetry::TelemetryConfig telemetry;
  telemetry.path = options.get("telemetry-out");
  telemetry.command = "simulate";
  telemetry.interval = get_double_in(options, "telemetry-interval", 0.01, 3600.0);
  if (!telemetry.path.empty()) {
    require_writable(telemetry.path);
    util::telemetry::enable(telemetry);
  }

  util::Table table({"p", "RR (s)", "CCD (s)", "total (s)", "RR share",
                     "aligned pairs"});
  table.set_title(util::format("Simulated %s, n = %zu%s", model.name.c_str(),
                               sequences.size(),
                               plan_arg ? " (fault plan active)" : ""));
  for (const std::string& token :
       util::split(options.get("processors"), ',')) {
    int p = 0;
    try {
      p = static_cast<int>(std::stol(std::string(util::trim(token))));
    } catch (const std::exception&) {
      throw UsageError("--processors: expected an integer, got '" +
                       std::string(util::trim(token)) + "'");
    }
    if (p < 2) {
      throw UsageError("--processors: each rank count must be >= 2 (master "
                       "plus at least one worker), got " + std::to_string(p));
    }
    if (masters > 1 && p < masters + 2) {
      throw UsageError("--processors: rank count " + std::to_string(p) +
                       " cannot host --masters " + std::to_string(masters) +
                       " (need >= masters + 2)");
    }
    if (plan_arg) plan.validate_protocol(p, masters);
    // Phase names carry the rank count so one stream covers the sweep.
    const std::string rr_phase = "rr@p=" + std::to_string(p);
    util::telemetry::phase_begin(rr_phase, true, p, 1);
    const auto rr = pace::remove_redundant(sequences, p, model, rr_params,
                                           pool_arg, plan_arg);
    util::telemetry::phase_end(rr_phase, rr.run.makespan);
    const std::string ccd_phase = "ccd@p=" + std::to_string(p);
    util::telemetry::phase_begin(ccd_phase, true, p, std::max(1, masters));
    const auto ccd = pace::detect_components(sequences, rr.survivors(), p,
                                             model, ccd_params, pool_arg,
                                             plan_arg);
    util::telemetry::phase_end(ccd_phase, ccd.run.makespan);
    const double total = rr.run.makespan + ccd.run.makespan;
    table.add_row(
        {std::to_string(p), util::format("%.2f", rr.run.makespan),
         util::format("%.2f", ccd.run.makespan), util::format("%.2f", total),
         util::format("%.0f%%", 100.0 * rr.run.makespan / total),
         util::with_commas(static_cast<long long>(
             rr.counters.aligned_pairs + ccd.counters.aligned_pairs))});
    if (plan_arg) {
      const auto report = [](const char* phase, const mpsim::RunResult& run) {
        if (run.crashed_ranks.empty() && run.counter("workers_timed_out") == 0)
          return;
        std::string ranks;
        for (const int r : run.crashed_ranks) {
          ranks += (ranks.empty() ? "" : ",") + std::to_string(r);
        }
        std::fprintf(
            stderr,
            "  [%s: crashed ranks {%s}; %llu pairs requeued, %llu streams "
            "adopted, %llu workers timed out]\n",
            phase, ranks.c_str(),
            static_cast<unsigned long long>(run.counter("pairs_requeued")),
            static_cast<unsigned long long>(run.counter("streams_adopted")),
            static_cast<unsigned long long>(run.counter("workers_timed_out")));
      };
      report("RR", rr.run);
      report("CCD", ccd.run);
    }
    std::fprintf(stderr, "  [p=%d done]\n", p);
  }
  std::fputs(table.to_string().c_str(), stdout);
  if (!telemetry.path.empty()) {
    util::telemetry::disable();
    std::printf("wrote telemetry to %s\n", telemetry.path.c_str());
  }
  return 0;
}

}  // namespace pclust::cli
