#include <cstdio>

#include <stdexcept>

#include "commands.hpp"
#include "pclust/exec/pool.hpp"
#include "pclust/mpsim/machine_model.hpp"
#include "pclust/pace/components.hpp"
#include "pclust/pace/redundancy.hpp"
#include "pclust/seq/fasta.hpp"
#include "pclust/synth/presets.hpp"
#include "pclust/util/options.hpp"
#include "pclust/util/strings.hpp"
#include "pclust/util/table.hpp"

namespace pclust::cli {

int cmd_simulate(int argc, const char* const* argv) {
  util::Options options;
  options.define("n", "2000", "synthetic input size (ignored with a FASTA)");
  options.define("processors", "32,64,128,512",
                 "comma-separated simulated rank counts");
  options.define("machine", "bluegene",
                 "machine model: bluegene or xeon");
  options.define("psi", "10", "min exact-match length");
  options.define("band", "32", "CCD band (RR always runs full DP)");
  options.define("seed", "42", "workload seed");
  options.define("threads", "1",
                 "real worker threads per simulation (0 = all cores)");
  options.parse(argc, argv);
  if (options.help_requested()) {
    std::fputs(options
                   .usage("pclust simulate [input.fa]",
                          "Replay the RR and CCD phases on the simulated "
                          "distributed-memory machine and report virtual "
                          "run-times per processor count.")
                   .c_str(),
               stdout);
    return 0;
  }

  seq::SequenceSet sequences;
  if (!options.positionals().empty()) {
    seq::read_fasta_file(options.positionals()[0], sequences);
  } else {
    const auto spec = synth::paper_160k(
        options.get_double("n") / 160'000.0,
        static_cast<std::uint64_t>(options.get_int("seed")));
    sequences = synth::generate(spec).sequences;
  }

  const std::string machine = options.get("machine");
  const auto model = machine == "xeon" ? mpsim::MachineModel::xeon_cluster()
                                       : mpsim::MachineModel::bluegene_l();

  pace::PaceParams ccd_params;
  ccd_params.psi = static_cast<std::uint32_t>(options.get_int("psi"));
  ccd_params.band = static_cast<std::uint32_t>(options.get_int("band"));
  pace::PaceParams rr_params = ccd_params;
  rr_params.band = 0;

  const long long threads = options.get_int("threads");
  if (threads < 0) throw std::runtime_error("--threads must be >= 0");
  exec::Pool pool(static_cast<unsigned>(threads));
  exec::Pool* pool_arg = pool.size() > 1 ? &pool : nullptr;

  util::Table table({"p", "RR (s)", "CCD (s)", "total (s)", "RR share",
                     "aligned pairs"});
  table.set_title(util::format("Simulated %s, n = %zu", model.name.c_str(),
                               sequences.size()));
  for (const std::string& token :
       util::split(options.get("processors"), ',')) {
    const int p = static_cast<int>(std::stol(std::string(util::trim(token))));
    const auto rr =
        pace::remove_redundant(sequences, p, model, rr_params, pool_arg);
    const auto ccd = pace::detect_components(sequences, rr.survivors(), p,
                                             model, ccd_params, pool_arg);
    const double total = rr.run.makespan + ccd.run.makespan;
    table.add_row(
        {std::to_string(p), util::format("%.2f", rr.run.makespan),
         util::format("%.2f", ccd.run.makespan), util::format("%.2f", total),
         util::format("%.0f%%", 100.0 * rr.run.makespan / total),
         util::with_commas(static_cast<long long>(
             rr.counters.aligned_pairs + ccd.counters.aligned_pairs))});
    std::fprintf(stderr, "  [p=%d done]\n", p);
  }
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}

}  // namespace pclust::cli
