// `pclust explain` — decision-level audit of a merge-provenance ledger.
//
//   pclust explain input.fa prov.jsonl --pair readA,readB
//       Why are these two sequences in the same family? Prints the unique
//       merge chain between them through the evidence forest.
//   pclust explain input.fa prov.jsonl --family 3 --clusters fams.tsv
//       What holds family 3 together? Prints its spanning evidence tree
//       summary with weak links (lowest-score bridges first) and hub
//       vertices whose removal fragments the family (fusion signature).
//
// All output is deterministic (the ledger is a canonical derivation and
// every ranking has a total order), so two invocations over the same
// inputs are byte-identical — check.sh relies on this.
#include <cstdio>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "cli_common.hpp"
#include "commands.hpp"
#include "pclust/prov/explain.hpp"
#include "pclust/prov/ledger.hpp"
#include "pclust/quality/cluster_io.hpp"
#include "pclust/seq/fasta.hpp"
#include "pclust/util/json.hpp"
#include "pclust/util/options.hpp"

namespace pclust::cli {

namespace {

/// "name" (exact FASTA name) or a bare decimal SeqId.
seq::SeqId resolve_sequence(
    const std::string& token,
    const std::unordered_map<std::string, seq::SeqId>& by_name,
    std::size_t universe) {
  if (const auto it = by_name.find(token); it != by_name.end()) {
    return it->second;
  }
  if (!token.empty() &&
      token.find_first_not_of("0123456789") == std::string::npos) {
    const unsigned long long id = std::stoull(token);
    if (id < universe) return static_cast<seq::SeqId>(id);
  }
  throw UsageError("unknown sequence '" + token +
                   "' (not a FASTA name or a valid id)");
}

double identity_pct(const prov::Edge& e) {
  return e.columns == 0
             ? 0.0
             : 100.0 * static_cast<double>(e.matches) /
                   static_cast<double>(e.columns);
}

/// "ccd/overlap score=45 identity=61.4% (89/145)" — the human edge label.
std::string describe_edge(const prov::Edge& e) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s/%s score=%d identity=%.1f%% (%u/%u)",
                std::string(prov::phase_name(e.phase)).c_str(),
                std::string(prov::rule_name(e.rule)).c_str(), e.score,
                identity_pct(e), e.matches, e.columns);
  return buf;
}

void edge_to_json(util::JsonWriter& w, const prov::Edge& e) {
  w.key("phase").value(prov::phase_name(e.phase));
  w.key("rule").value(prov::rule_name(e.rule));
  w.key("score").value(static_cast<std::int64_t>(e.score));
  w.key("matches").value(static_cast<std::uint64_t>(e.matches));
  w.key("columns").value(static_cast<std::uint64_t>(e.columns));
  w.key("a_span").value(static_cast<std::uint64_t>(e.a_span));
  w.key("b_span").value(static_cast<std::uint64_t>(e.b_span));
}

int explain_pair(const prov::EvidenceForest& forest,
                 const seq::SequenceSet& set, seq::SeqId a, seq::SeqId b,
                 bool json) {
  const bool connected = forest.connected(a, b);
  const std::vector<std::uint32_t> chain =
      connected ? forest.path(a, b) : std::vector<std::uint32_t>{};
  if (json) {
    util::JsonWriter w;
    w.begin_object();
    w.key("schema").value("pclust-explain");
    w.key("version").value(1);
    w.key("mode").value("pair");
    w.key("a").begin_object().key("id").value(
        static_cast<std::uint64_t>(a));
    w.key("name").value(set.name(a)).end_object();
    w.key("b").begin_object().key("id").value(
        static_cast<std::uint64_t>(b));
    w.key("name").value(set.name(b)).end_object();
    w.key("connected").value(connected);
    w.key("chain").begin_array();
    std::uint32_t at = a;
    for (const std::uint32_t idx : chain) {
      const prov::Edge& e = forest.edge(idx);
      const std::uint32_t next = e.a == at ? e.b : e.a;
      w.begin_object();
      w.key("from").value(static_cast<std::uint64_t>(at));
      w.key("to").value(static_cast<std::uint64_t>(next));
      edge_to_json(w, e);
      w.end_object();
      at = next;
    }
    w.end_array();
    w.end_object();
    std::printf("%s\n", w.str().c_str());
    return 0;
  }
  if (a == b) {
    std::printf("%s and %s are the same sequence (id %u)\n",
                set.name(a).c_str(), set.name(b).c_str(), a);
    return 0;
  }
  if (!connected) {
    std::printf(
        "no merge chain: %s (id %u) and %s (id %u) sit in different "
        "evidence trees — the pipeline never merged them\n",
        set.name(a).c_str(), a, set.name(b).c_str(), b);
    return 0;
  }
  std::printf("merge chain %s (id %u) -> %s (id %u), %zu edge%s:\n",
              set.name(a).c_str(), a, set.name(b).c_str(), b, chain.size(),
              chain.size() == 1 ? "" : "s");
  std::uint32_t at = a;
  for (const std::uint32_t idx : chain) {
    const prov::Edge& e = forest.edge(idx);
    const std::uint32_t next = e.a == at ? e.b : e.a;
    std::printf("  %s (id %u) --[%s]--> %s (id %u)\n", set.name(at).c_str(),
                at, describe_edge(e).c_str(), set.name(next).c_str(), next);
    at = next;
  }
  return 0;
}

int explain_family(const prov::EvidenceForest& forest,
                   const prov::Ledger& ledger, const seq::SequenceSet& set,
                   std::size_t index1,
                   const std::vector<std::vector<seq::SeqId>>& clustering,
                   std::size_t top, bool json) {
  if (index1 == 0 || index1 > clustering.size()) {
    throw UsageError("--family " + std::to_string(index1) +
                     " out of range (the clustering holds " +
                     std::to_string(clustering.size()) + " families)");
  }
  const std::vector<seq::SeqId>& members = clustering[index1 - 1];
  const prov::FamilyAudit audit = prov::audit_family(
      forest, ledger,
      std::vector<std::uint32_t>(members.begin(), members.end()));
  const std::size_t weak_shown =
      top == 0 ? audit.weak_links.size()
               : std::min(top, audit.weak_links.size());
  const std::size_t hubs_shown =
      top == 0 ? audit.hubs.size() : std::min(top, audit.hubs.size());
  if (json) {
    util::JsonWriter w;
    w.begin_object();
    w.key("schema").value("pclust-explain");
    w.key("version").value(1);
    w.key("mode").value("family");
    w.key("family").value(static_cast<std::uint64_t>(index1));
    w.key("members").begin_array();
    for (const seq::SeqId m : audit.members) {
      w.value(static_cast<std::uint64_t>(m));
    }
    w.end_array();
    w.key("connected").value(audit.connected);
    w.key("tree_edges")
        .value(static_cast<std::uint64_t>(audit.weak_links.size()));
    w.key("dsd_support").value(audit.dsd_support);
    w.key("steiner_vertices").begin_array();
    for (const std::uint32_t v : audit.steiner_vertices) {
      w.value(static_cast<std::uint64_t>(v));
    }
    w.end_array();
    w.key("weak_links").begin_array();
    for (std::size_t i = 0; i < weak_shown; ++i) {
      const prov::Edge& e = forest.edge(audit.weak_links[i]);
      w.begin_object();
      w.key("a").value(static_cast<std::uint64_t>(e.a));
      w.key("b").value(static_cast<std::uint64_t>(e.b));
      edge_to_json(w, e);
      w.end_object();
    }
    w.end_array();
    w.key("hubs").begin_array();
    for (std::size_t i = 0; i < hubs_shown; ++i) {
      const prov::Hub& h = audit.hubs[i];
      w.begin_object();
      w.key("seq").value(static_cast<std::uint64_t>(h.seq));
      w.key("name").value(set.name(h.seq));
      w.key("parts").value(static_cast<std::uint64_t>(h.parts));
      w.key("min_part").value(static_cast<std::uint64_t>(h.min_part));
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::printf("%s\n", w.str().c_str());
    return 0;
  }
  std::printf("family %zu: %zu members\n", index1, audit.members.size());
  if (!audit.connected) {
    std::printf(
        "  WARNING: members span multiple evidence trees — the ledger does "
        "not match this clustering\n");
  }
  std::printf(
      "  evidence tree: %zu edges, %zu bridging non-member vertices\n",
      audit.weak_links.size(), audit.steiner_vertices.size());
  std::printf("  dsd corroboration: %llu shingle-merge edges\n",
              static_cast<unsigned long long>(audit.dsd_support));
  std::printf("  weak links (weakest first):\n");
  if (weak_shown == 0) std::printf("    none\n");
  for (std::size_t i = 0; i < weak_shown; ++i) {
    const prov::Edge& e = forest.edge(audit.weak_links[i]);
    std::printf("    %2zu. %s (id %u) -- %s (id %u)  %s\n", i + 1,
                set.name(e.a).c_str(), e.a, set.name(e.b).c_str(), e.b,
                describe_edge(e).c_str());
  }
  std::printf("  hubs (fusion signature):\n");
  if (hubs_shown == 0) std::printf("    none\n");
  for (std::size_t i = 0; i < hubs_shown; ++i) {
    const prov::Hub& h = audit.hubs[i];
    std::printf(
        "    %2zu. %s (id %u): removal splits the members into %u parts "
        "(smallest %u)\n",
        i + 1, set.name(h.seq).c_str(), h.seq, h.parts, h.min_part);
  }
  return 0;
}

}  // namespace

int cmd_explain(int argc, const char* const* argv) {
  util::Options options;
  options.define("pair", "",
                 "two sequences (names or ids) separated by a comma: print "
                 "the merge chain that put them in one family");
  options.define("family", "0",
                 "1-based family index (descending size, the order of "
                 "`families --out`): print its spanning evidence tree with "
                 "weak-link and hub rankings; requires --clusters");
  options.define("clusters", "",
                 "clustering file (from `families --out`) that defines the "
                 "family memberships for --family");
  options.define("top", "10",
                 "cap on the weak links / hubs printed (0 = all)");
  options.define_flag("json", "machine-readable audit (one JSON document)");
  options.define("on-bad-residue", "throw",
                 "invalid FASTA residue handling, MUST match the families "
                 "run that wrote the ledger (ids are FASTA-order): throw, "
                 "mask, or skip");
  options.parse(argc, argv);
  if (options.help_requested() || options.positionals().size() != 2) {
    std::fputs(options
                   .usage("pclust explain <input.fa> <provenance.jsonl>",
                          "Explain family formation from a merge-provenance "
                          "ledger (families --provenance-out): --pair "
                          "prints the merge chain between two sequences, "
                          "--family the spanning evidence of one family.")
                   .c_str(),
               stdout);
    return options.help_requested() ? 0 : 2;
  }
  const std::string pair = options.get("pair");
  const auto family =
      static_cast<std::size_t>(get_int_in(options, "family", 0, 1LL << 32));
  const std::string clusters = options.get("clusters");
  const auto top =
      static_cast<std::size_t>(get_int_in(options, "top", 0, 1LL << 32));
  const bool json = options.get_flag("json");
  if (pair.empty() == (family == 0)) {
    throw UsageError("exactly one of --pair or --family is required");
  }
  if (family != 0 && clusters.empty()) {
    throw UsageError("--family requires --clusters");
  }

  seq::FastaOptions fasta;
  const std::string bad_residue = options.get("on-bad-residue");
  if (bad_residue == "mask") {
    fasta.on_bad_residue = seq::BadResiduePolicy::kMask;
  } else if (bad_residue == "skip") {
    fasta.on_bad_residue = seq::BadResiduePolicy::kSkipRecord;
  } else if (bad_residue != "throw") {
    throw UsageError("unknown --on-bad-residue '" + bad_residue +
                     "' (use throw, mask, or skip)");
  }
  require_readable(options.positionals()[0]);
  require_readable(options.positionals()[1]);
  if (!clusters.empty()) require_readable(clusters);

  seq::SequenceSet set;
  seq::read_fasta_file(options.positionals()[0], set, fasta);
  const prov::Ledger ledger = prov::read_ledger(options.positionals()[1]);
  if (ledger.sequences != set.size()) {
    throw UsageError(
        "ledger was written for " + std::to_string(ledger.sequences) +
        " sequences but the FASTA holds " + std::to_string(set.size()) +
        " — wrong input file (or mismatched --on-bad-residue)?");
  }
  const prov::EvidenceForest forest(ledger);

  if (!pair.empty()) {
    const std::size_t comma = pair.find(',');
    if (comma == std::string::npos || comma == 0 ||
        comma + 1 == pair.size()) {
      throw UsageError("--pair wants two sequences separated by a comma");
    }
    std::unordered_map<std::string, seq::SeqId> by_name;
    by_name.reserve(set.size());
    for (seq::SeqId id = 0; id < set.size(); ++id) by_name[set.name(id)] = id;
    const seq::SeqId a =
        resolve_sequence(pair.substr(0, comma), by_name, set.size());
    const seq::SeqId b =
        resolve_sequence(pair.substr(comma + 1), by_name, set.size());
    return explain_pair(forest, set, a, b, json);
  }
  const std::vector<std::vector<seq::SeqId>> clustering =
      quality::read_clustering_file(clusters, set);
  return explain_family(forest, ledger, set, family, clustering, top, json);
}

}  // namespace pclust::cli
