#include <cstdio>

#include <fstream>
#include <sstream>
#include <string>

#include "cli_common.hpp"
#include "commands.hpp"
#include "pclust/pipeline/analysis.hpp"
#include "pclust/util/json.hpp"
#include "pclust/util/options.hpp"

namespace pclust::cli {

/// `pclust analyze report.json`: per-phase imbalance factor, critical
/// path, straggler ranks, and the CCD master-saturation verdict, computed
/// from the report's rank_times section. Exit 1 when --max-imbalance or
/// --fail-on-saturation trips, so scripts can gate on scaling health.
int cmd_analyze(int argc, const char* const* argv) {
  util::Options options;
  options.define("top", "3", "straggler ranks listed per phase");
  options.define("saturation-busy", "0.6",
                 "master busy fraction at/above which the master counts as "
                 "saturated");
  options.define("saturation-idle", "0.3",
                 "mean worker idle fraction at/above which workers count as "
                 "starved");
  options.define("max-imbalance", "-1",
                 "exit non-zero if any phase's imbalance factor exceeds "
                 "this (-1 = report only)");
  options.define_flag("fail-on-saturation",
                      "exit non-zero when a phase's master is saturated");
  options.define_flag("json", "emit the analysis as JSON instead of text");
  options.parse(argc, argv);
  if (options.help_requested() || options.positionals().size() != 1) {
    std::fputs(options
                   .usage("pclust analyze <report.json>",
                          "Load-imbalance and critical-path analysis of a "
                          "run report's rank_times section: imbalance "
                          "factor (max/mean worker busy time), critical "
                          "path (max busy+comm over ranks), top-k "
                          "stragglers, and a master-saturation diagnosis "
                          "(the paper's CCD scaling bottleneck).")
                   .c_str(),
               stdout);
    return options.help_requested() ? 0 : 2;
  }

  pipeline::AnalysisOptions opts;
  opts.top_k = static_cast<std::size_t>(get_int_in(options, "top", 1, 1024));
  opts.saturation_busy =
      get_double_in(options, "saturation-busy", 0.0, 1.0);
  opts.saturation_idle =
      get_double_in(options, "saturation-idle", 0.0, 1.0);
  const double max_imbalance =
      get_double_in(options, "max-imbalance", -1.0, 1e9);

  const std::string& path = options.positionals()[0];
  require_readable(path);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();

  pipeline::ReportAnalysis analysis;
  try {
    const util::JsonValue report = util::parse_json(buffer.str());
    analysis = pipeline::analyze_report(report, opts);
  } catch (const util::JsonError& e) {
    throw IoError(path + ": " + e.what());
  }

  if (options.get_flag("json")) {
    std::printf("%s\n", pipeline::render_analysis_json(analysis).c_str());
  } else {
    std::fputs(pipeline::render_analysis(analysis).c_str(), stdout);
  }

  if (max_imbalance >= 0.0 && analysis.max_imbalance() > max_imbalance) {
    std::fprintf(stderr,
                 "analyze: imbalance factor %.3f exceeds --max-imbalance "
                 "%.3f\n",
                 analysis.max_imbalance(), max_imbalance);
    return 1;
  }
  if (options.get_flag("fail-on-saturation") && analysis.any_master_saturated()) {
    std::fprintf(stderr, "analyze: a phase's master rank is saturated\n");
    return 1;
  }
  return 0;
}

}  // namespace pclust::cli
