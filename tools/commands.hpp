// Subcommand entry points of the `pclust` command-line tool.
#pragma once

namespace pclust::cli {

/// `pclust generate` — synthesize a metagenomic sample (FASTA + truth).
int cmd_generate(int argc, const char* const* argv);

/// `pclust families` — run the pipeline on a FASTA file, emit families.
int cmd_families(int argc, const char* const* argv);

/// `pclust compare` — pair-counting metrics between two clusterings.
int cmd_compare(int argc, const char* const* argv);

/// `pclust simulate` — RR/CCD scalability sweep on the simulated machine.
int cmd_simulate(int argc, const char* const* argv);

/// `pclust report-check` — validate a structured run report.
int cmd_report_check(int argc, const char* const* argv);

/// `pclust chaos` — seeded fault-injection sweep verifying self-healing.
int cmd_chaos(int argc, const char* const* argv);

/// `pclust analyze` — load-imbalance / critical-path analysis of a report.
int cmd_analyze(int argc, const char* const* argv);

/// `pclust monitor` — summarize/follow a --telemetry-out JSONL stream.
int cmd_monitor(int argc, const char* const* argv);

/// `pclust explain` — audit family formation from a provenance ledger.
int cmd_explain(int argc, const char* const* argv);

/// `pclust perf-diff` — perf-regression gate between two bench artifacts.
int cmd_perf_diff(int argc, const char* const* argv);

}  // namespace pclust::cli
