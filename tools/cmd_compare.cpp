#include <cstdio>

#include "cli_common.hpp"
#include "commands.hpp"
#include "pclust/quality/cluster_io.hpp"
#include "pclust/quality/metrics.hpp"
#include "pclust/seq/fasta.hpp"
#include "pclust/util/options.hpp"
#include "pclust/util/strings.hpp"

namespace pclust::cli {

int cmd_compare(int argc, const char* const* argv) {
  util::Options options;
  options.parse(argc, argv);
  if (options.help_requested() || options.positionals().size() != 3) {
    std::fputs(options
                   .usage("pclust compare <sequences.fa> <test.tsv> "
                          "<benchmark.tsv>",
                          "Pair-counting comparison of two clusterings "
                          "(paper §V, eqs. 1-4). Only sequences present in "
                          "both clusterings are scored.")
                   .c_str(),
               stdout);
    return options.help_requested() ? 0 : 2;
  }

  for (const std::string& path : options.positionals()) {
    require_readable(path);
  }

  seq::SequenceSet sequences;
  seq::read_fasta_file(options.positionals()[0], sequences);
  const auto test =
      quality::read_clustering_file(options.positionals()[1], sequences);
  const auto benchmark =
      quality::read_clustering_file(options.positionals()[2], sequences);
  const quality::Metrics m = quality::compare_clusterings(test, benchmark);

  std::printf("test: %zu clusters   benchmark: %zu clusters   common "
              "sequences: %zu\n",
              test.size(), benchmark.size(), m.common_sequences);
  std::printf("TP=%s TN=%s FP=%s FN=%s\n",
              util::with_commas(static_cast<long long>(m.counts.tp)).c_str(),
              util::with_commas(static_cast<long long>(m.counts.tn)).c_str(),
              util::with_commas(static_cast<long long>(m.counts.fp)).c_str(),
              util::with_commas(static_cast<long long>(m.counts.fn)).c_str());
  std::printf("PR=%.2f%%  SE=%.2f%%  OQ=%.2f%%  CC=%.2f%%\n",
              m.precision * 100.0, m.sensitivity * 100.0,
              m.overlap_quality * 100.0, m.correlation * 100.0);
  return 0;
}

}  // namespace pclust::cli
