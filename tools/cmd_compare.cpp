#include <cstdio>

#include <fstream>
#include <sstream>
#include <string>

#include "cli_common.hpp"
#include "commands.hpp"
#include "pclust/pipeline/report.hpp"
#include "pclust/quality/cluster_io.hpp"
#include "pclust/quality/metrics.hpp"
#include "pclust/seq/fasta.hpp"
#include "pclust/util/json.hpp"
#include "pclust/util/options.hpp"
#include "pclust/util/strings.hpp"

namespace pclust::cli {

namespace {

util::JsonValue load_report(const std::string& path) {
  require_readable(path);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return util::parse_json(buffer.str());
  } catch (const util::JsonError& e) {
    throw IoError(path + ": " + e.what());
  }
}

/// Look up phases[name] in a report; nullptr when absent.
const util::JsonValue* find_phase(const util::JsonValue& report,
                                  const std::string& name) {
  const util::JsonValue* phases = report.find("phases");
  if (!phases || !phases->is_array()) return nullptr;
  for (const util::JsonValue& phase : phases->array) {
    const util::JsonValue* n = phase.find("name");
    if (n && n->is_string() && n->as_string() == name) return &phase;
  }
  return nullptr;
}

void diff_number(const char* label, double a, double b, const char* unit) {
  const double delta = b - a;
  const double pct = a != 0.0 ? 100.0 * delta / a : 0.0;
  std::printf("  %-28s %14.6g %14.6g   %+.6g%s (%+.1f%%)\n", label, a, b,
              delta, unit, pct);
}

void diff_u64(const char* label, std::uint64_t a, std::uint64_t b) {
  std::printf("  %-28s %14llu %14llu   %+lld\n", label,
              static_cast<unsigned long long>(a),
              static_cast<unsigned long long>(b),
              static_cast<long long>(b) - static_cast<long long>(a));
}

std::uint64_t u64_at(const util::JsonValue& obj, const char* key) {
  const util::JsonValue* v = obj.find(key);
  return v && v->is_number() ? v->as_u64() : 0;
}

double num_at(const util::JsonValue& obj, const char* key) {
  const util::JsonValue* v = obj.find(key);
  return v && v->is_number() ? v->as_number() : 0.0;
}

/// `pclust compare --reports a.json b.json`: structured diff of two run
/// reports — phase times, alignment-work counters, and Table-I quantities.
int compare_reports(const std::string& path_a, const std::string& path_b) {
  const util::JsonValue a = load_report(path_a);
  const util::JsonValue b = load_report(path_b);
  std::string error;
  if (!pipeline::validate_report(a, &error)) {
    throw IoError(path_a + ": invalid run report: " + error);
  }
  if (!pipeline::validate_report(b, &error)) {
    throw IoError(path_b + ": invalid run report: " + error);
  }

  std::printf("run-report diff\n  A: %s\n  B: %s\n", path_a.c_str(),
              path_b.c_str());
  std::printf("\nphase times\n  %-28s %14s %14s   %s\n", "phase", "A (s)",
              "B (s)", "delta");
  for (const char* name : {"rr", "ccd", "bgg+dsd"}) {
    const util::JsonValue* pa = find_phase(a, name);
    const util::JsonValue* pb = find_phase(b, name);
    if (!pa || !pb) continue;
    diff_number(name, num_at(*pa, "seconds"), num_at(*pb, "seconds"), "s");
  }

  const util::JsonValue& align_a = a.at("alignment");
  const util::JsonValue& align_b = b.at("alignment");
  std::printf("\nalignment work\n  %-28s %14s %14s   %s\n", "counter", "A",
              "B", "delta");
  for (const char* key :
       {"candidate_pairs", "attempted", "skipped_by_cluster_filter",
        "duplicate_pairs"}) {
    diff_u64(key, u64_at(align_a, key), u64_at(align_b, key));
  }
  diff_number("skip_ratio", num_at(align_a, "skip_ratio"),
              num_at(align_b, "skip_ratio"), "");

  const util::JsonValue& t1_a = a.at("table1");
  const util::JsonValue& t1_b = b.at("table1");
  std::printf("\ntable 1\n  %-28s %14s %14s   %s\n", "quantity", "A", "B",
              "delta");
  for (const char* key :
       {"input_sequences", "non_redundant_sequences", "components_min_size",
        "dense_subgraph_count", "sequences_in_subgraphs",
        "largest_subgraph"}) {
    diff_u64(key, u64_at(t1_a, key), u64_at(t1_b, key));
  }
  diff_number("mean_degree", num_at(t1_a, "mean_degree"),
              num_at(t1_b, "mean_degree"), "");
  diff_number("mean_density", num_at(t1_a, "mean_density"),
              num_at(t1_b, "mean_density"), "");
  return 0;
}

}  // namespace

int cmd_compare(int argc, const char* const* argv) {
  util::Options options;
  options.define_flag("reports",
                      "diff two pclust run reports (from families "
                      "--report-out) instead of comparing clusterings");
  options.parse(argc, argv);
  const bool reports = options.get_flag("reports");
  const std::size_t want = reports ? 2 : 3;
  if (options.help_requested() || options.positionals().size() != want) {
    std::fputs(options
                   .usage("pclust compare <sequences.fa> <test.tsv> "
                          "<benchmark.tsv>\n"
                          "       pclust compare --reports <a.json> <b.json>",
                          "Pair-counting comparison of two clusterings "
                          "(paper §V, eqs. 1-4). Only sequences present in "
                          "both clusterings are scored. With --reports, "
                          "diff two structured run reports instead (phase "
                          "times, alignment counters, Table-I quantities).")
                   .c_str(),
               stdout);
    return options.help_requested() ? 0 : 2;
  }
  if (reports) {
    return compare_reports(options.positionals()[0],
                           options.positionals()[1]);
  }

  for (const std::string& path : options.positionals()) {
    require_readable(path);
  }

  seq::SequenceSet sequences;
  seq::read_fasta_file(options.positionals()[0], sequences);
  const auto test =
      quality::read_clustering_file(options.positionals()[1], sequences);
  const auto benchmark =
      quality::read_clustering_file(options.positionals()[2], sequences);
  const quality::Metrics m = quality::compare_clusterings(test, benchmark);

  std::printf("test: %zu clusters   benchmark: %zu clusters   common "
              "sequences: %zu\n",
              test.size(), benchmark.size(), m.common_sequences);
  std::printf("TP=%s TN=%s FP=%s FN=%s\n",
              util::with_commas(static_cast<long long>(m.counts.tp)).c_str(),
              util::with_commas(static_cast<long long>(m.counts.tn)).c_str(),
              util::with_commas(static_cast<long long>(m.counts.fp)).c_str(),
              util::with_commas(static_cast<long long>(m.counts.fn)).c_str());
  std::printf("PR=%.2f%%  SE=%.2f%%  OQ=%.2f%%  CC=%.2f%%\n",
              m.precision * 100.0, m.sensitivity * 100.0,
              m.overlap_quality * 100.0, m.correlation * 100.0);
  return 0;
}

}  // namespace pclust::cli
