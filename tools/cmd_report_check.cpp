#include <cstdio>

#include <fstream>
#include <sstream>
#include <string>

#include "cli_common.hpp"
#include "commands.hpp"
#include "pclust/pipeline/report.hpp"
#include "pclust/util/json.hpp"
#include "pclust/util/options.hpp"

namespace pclust::cli {

int cmd_report_check(int argc, const char* const* argv) {
  util::Options options;
  options.define("min-ccd-skip-ratio", "-1",
                 "additionally require the CCD phase's skip_ratio to be at "
                 "least this value (the paper's >99.9 % cluster-filter "
                 "claim; -1 = no threshold)");
  options.parse(argc, argv);
  if (options.help_requested() || options.positionals().size() != 1) {
    std::fputs(options
                   .usage("pclust report-check <report.json>",
                          "Validate a structured run report (from families "
                          "--report-out): schema, phase provenance, the "
                          "alignment-work identity attempted + "
                          "skipped_by_cluster_filter == candidate_pairs, "
                          "degradation levers (action/phase enums), and the "
                          "merge-provenance identity (edges cover the final "
                          "partition's merges one-for-one).")
                   .c_str(),
               stdout);
    return options.help_requested() ? 0 : 2;
  }
  const double min_skip_ratio =
      get_double_in(options, "min-ccd-skip-ratio", -1.0, 1.0);

  const std::string& path = options.positionals()[0];
  require_readable(path);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();

  util::JsonValue report;
  try {
    report = util::parse_json(buffer.str());
  } catch (const util::JsonError& e) {
    std::fprintf(stderr, "report-check: %s: %s\n", path.c_str(), e.what());
    return kExitIo;
  }

  std::string error;
  if (!pipeline::validate_report(report, &error)) {
    std::fprintf(stderr, "report-check: %s: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }

  if (min_skip_ratio >= 0.0) {
    const util::JsonValue* ccd = nullptr;
    for (const util::JsonValue& phase : report.at("phases").array) {
      if (phase.at("name").as_string() == "ccd") ccd = &phase;
    }
    if (!ccd || ccd->find("skip_ratio") == nullptr) {
      std::fprintf(stderr,
                   "report-check: %s: no ccd phase with a skip_ratio\n",
                   path.c_str());
      return 1;
    }
    const double ratio = ccd->at("skip_ratio").as_number();
    if (ratio < min_skip_ratio) {
      std::fprintf(stderr,
                   "report-check: %s: ccd skip_ratio %.6f below required "
                   "%.6f\n",
                   path.c_str(), ratio, min_skip_ratio);
      return 1;
    }
  }

  const util::JsonValue& alignment = report.at("alignment");
  std::printf(
      "%s: valid run report (candidate_pairs=%llu attempted=%llu "
      "skipped=%llu skip_ratio=%.6f)\n",
      path.c_str(),
      static_cast<unsigned long long>(
          alignment.at("candidate_pairs").as_u64()),
      static_cast<unsigned long long>(alignment.at("attempted").as_u64()),
      static_cast<unsigned long long>(
          alignment.at("skipped_by_cluster_filter").as_u64()),
      alignment.at("skip_ratio").as_number());
  if (const util::JsonValue* degr = report.find("degradation")) {
    std::printf(
        "%s: degradation section valid (%zu lever event(s) within budget "
        "%llu bytes)\n",
        path.c_str(), degr->at("events").array.size(),
        static_cast<unsigned long long>(degr->at("budget_bytes").as_u64()));
  }
  if (const util::JsonValue* prov = report.find("provenance")) {
    std::printf(
        "%s: provenance section valid (%llu evidence edge(s), merge "
        "identity holds)\n",
        path.c_str(),
        static_cast<unsigned long long>(
            prov->at("edges").at("total").as_u64()));
  }
  return 0;
}

}  // namespace pclust::cli
