// pclust — command-line front end for the pipeline.
//
//   pclust generate  --n 2000 --families 20 --out sample.fa --truth truth.tsv
//   pclust families  sample.fa --out families.tsv
//   pclust compare   sample.fa families.tsv truth.tsv
//   pclust simulate  --paper-k 80 --processors 32,64,128,512
#include <cstdio>
#include <cstring>
#include <exception>
#include <stdexcept>

#include "cli_common.hpp"
#include "commands.hpp"
#include "pclust/util/checkpoint.hpp"
#include "pclust/util/io.hpp"
#include "pclust/util/log.hpp"
#include "pclust/util/memgov.hpp"
#include "pclust/util/telemetry.hpp"

namespace {

void print_usage() {
  std::fputs(
      "pclust — parallel protein family identification (Wu & Kalyanaraman, "
      "SC'08)\n\n"
      "Usage: pclust <command> [options]\n\n"
      "Commands:\n"
      "  generate   Synthesize a metagenomic peptide sample with ground "
      "truth.\n"
      "  families   Identify protein families in a FASTA file.\n"
      "  compare    Compare two clustering files (PR/SE/OQ/CC) or, with\n"
      "             --reports, diff two structured run reports.\n"
      "  simulate   Replay the RR/CCD phases on the simulated BlueGene/L.\n"
      "  report-check  Validate a run report written by families "
      "--report-out.\n"
      "  analyze    Load-imbalance / critical-path analysis of a run "
      "report.\n"
      "  monitor    Summarize (or follow) a --telemetry-out JSONL stream:\n"
      "             phase table, ETA, warnings, top stragglers.\n"
      "  explain    Audit family formation from a families "
      "--provenance-out\n"
      "             ledger: merge chains (--pair), spanning evidence with\n"
      "             weak links and fusion hubs (--family).\n"
      "  perf-diff  Compare two BENCH_*.json artifacts; non-zero exit on "
      "regression.\n"
      "  chaos      Sweep seeded fault plans and verify the pipeline "
      "self-heals.\n"
      "\nRun 'pclust <command> --help' for command options.\n",
      stdout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pclust;
  util::set_log_level(util::LogLevel::kInfo);
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const char* command = argv[1];
  // Subcommands parse argv[1:] so their positionals start after the verb.
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  try {
    if (std::strcmp(command, "generate") == 0) {
      return cli::cmd_generate(sub_argc, sub_argv);
    }
    if (std::strcmp(command, "families") == 0) {
      return cli::cmd_families(sub_argc, sub_argv);
    }
    if (std::strcmp(command, "compare") == 0) {
      return cli::cmd_compare(sub_argc, sub_argv);
    }
    if (std::strcmp(command, "simulate") == 0) {
      return cli::cmd_simulate(sub_argc, sub_argv);
    }
    if (std::strcmp(command, "report-check") == 0) {
      return cli::cmd_report_check(sub_argc, sub_argv);
    }
    if (std::strcmp(command, "analyze") == 0) {
      return cli::cmd_analyze(sub_argc, sub_argv);
    }
    if (std::strcmp(command, "monitor") == 0) {
      return cli::cmd_monitor(sub_argc, sub_argv);
    }
    if (std::strcmp(command, "explain") == 0) {
      return cli::cmd_explain(sub_argc, sub_argv);
    }
    if (std::strcmp(command, "perf-diff") == 0) {
      return cli::cmd_perf_diff(sub_argc, sub_argv);
    }
    if (std::strcmp(command, "chaos") == 0) {
      return cli::cmd_chaos(sub_argc, sub_argv);
    }
    if (std::strcmp(command, "--help") == 0 ||
        std::strcmp(command, "-h") == 0) {
      print_usage();
      return 0;
    }
    std::fprintf(stderr, "pclust: unknown command '%s'\n\n", command);
    print_usage();
    return 2;
  } catch (const cli::UsageError& e) {
    std::fprintf(stderr, "pclust %s: %s\n", command, e.what());
    return cli::kExitUsage;
  } catch (const cli::IoError& e) {
    std::fprintf(stderr, "pclust %s: %s\n", command, e.what());
    util::telemetry::disable();
    return cli::kExitIo;
  } catch (const util::io::IoError& e) {
    // A persistent artifact write failure (real or injected): the message
    // carries the artifact class and path, so the operator knows exactly
    // which output was lost and whether --resume applies.
    std::fprintf(stderr, "pclust %s: %s\n", command, e.what());
    util::telemetry::disable();
    return cli::kExitIo;
  } catch (const util::MemoryBudgetExceeded& e) {
    // Structured resource exit: checkpoints (if any) were flushed at the
    // phase boundary that threw, so the message's --resume guidance holds.
    std::fprintf(stderr, "pclust %s: %s\n", command, e.what());
    util::telemetry::disable();
    return cli::kExitResource;
  } catch (const util::CheckpointError& e) {
    std::fprintf(stderr, "pclust %s: %s\n", command, e.what());
    util::telemetry::disable();
    return cli::kExitCheckpoint;
  } catch (const std::invalid_argument& e) {
    // Parameter validation from the option parser or the library — a usage
    // problem, not a crash.
    std::fprintf(stderr, "pclust %s: %s\n", command, e.what());
    return cli::kExitUsage;
  } catch (const std::exception& e) {
    // Covers WatchdogDeadlineExceeded and protocol deadline aborts: close
    // the telemetry stream so the file still ends with a parseable `end`
    // record (disable() is a no-op when telemetry never started).
    std::fprintf(stderr, "pclust %s: %s\n", command, e.what());
    util::telemetry::disable();
    return 1;
  }
}
