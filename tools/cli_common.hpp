// Shared validation helpers and exit-code conventions for the pclust CLI.
//
// Exit codes:
//   0  success
//   1  unexpected runtime failure
//   2  usage error (bad flag value, missing argument)
//   3  I/O error (missing input, unwritable output, artifact write failure)
//   4  checkpoint mismatch (fingerprint/corruption on --resume)
//   5  resource exhaustion (--mem-budget exceeded despite degradation)
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "pclust/util/options.hpp"

namespace pclust::cli {

inline constexpr int kExitUsage = 2;
inline constexpr int kExitIo = 3;
inline constexpr int kExitCheckpoint = 4;
inline constexpr int kExitResource = 5;

/// A command-line value failed validation; main() maps this to exit 2.
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A required path is missing or not writable; main() maps this to exit 3.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Throws IoError unless @p path exists and is readable.
void require_readable(const std::string& path);

/// Throws IoError unless @p path can be created/overwritten (its parent
/// directory exists and is writable — probed by opening for append).
void require_writable(const std::string& path);

/// --name as an integer in [min, max]; throws UsageError otherwise.
long long get_int_in(const util::Options& options, const std::string& name,
                     long long min, long long max);

/// --name as a double in [min, max]; throws UsageError otherwise.
double get_double_in(const util::Options& options, const std::string& name,
                     double min, double max);

/// Parses a byte size with an optional k/m/g suffix (binary units), e.g.
/// "512m" -> 536870912, "2g", "1048576". Throws UsageError (naming
/// --@p flag) on junk or a zero/negative size.
std::uint64_t parse_mem_size(const std::string& text, const char* flag);

/// Parses "rank@value" pairs from a comma-separated list, e.g.
/// "1@5.0,3@12" -> {(1, 5.0), (3, 12.0)}. Empty input -> empty list.
/// Throws UsageError (naming --@p flag) on malformed entries.
std::vector<std::pair<int, double>> parse_rank_at(const std::string& text,
                                                  const char* flag);

/// Defines the shared --simd option (auto|avx2|sse2|off) on @p options.
void define_simd_option(util::Options& options);

/// Applies --simd: parses the value (UsageError on junk), clamps to the
/// host's capability, and logs the ISA the alignment kernels will use.
void apply_simd_option(const util::Options& options);

}  // namespace pclust::cli
