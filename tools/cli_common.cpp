#include "cli_common.hpp"

#include <cstdio>

#include <filesystem>
#include <fstream>
#include <limits>

#include "pclust/align/simd.hpp"
#include "pclust/util/strings.hpp"

namespace pclust::cli {

void require_readable(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw IoError("cannot read '" + path + "': no such file or not readable");
  }
}

void require_writable(const std::string& path) {
  namespace fs = std::filesystem;
  const fs::path target(path);
  const fs::path parent =
      target.has_parent_path() ? target.parent_path() : fs::path(".");
  std::error_code ec;
  if (!fs::exists(parent, ec)) {
    throw IoError("cannot write '" + path + "': directory '" +
                  parent.string() + "' does not exist");
  }
  // Probe with append mode: creates the file if absent but never truncates
  // an existing one.
  std::ofstream probe(path, std::ios::app);
  if (!probe) {
    throw IoError("cannot write '" + path + "': permission denied");
  }
  probe.close();
  if (fs::exists(target, ec) && fs::file_size(target, ec) == 0) {
    fs::remove(target, ec);  // drop the empty probe artifact
  }
}

long long get_int_in(const util::Options& options, const std::string& name,
                     long long min, long long max) {
  const long long value = options.get_int(name);
  if (value < min || value > max) {
    throw UsageError("--" + name + " must be in [" + std::to_string(min) +
                     ", " + std::to_string(max) + "], got " +
                     std::to_string(value));
  }
  return value;
}

double get_double_in(const util::Options& options, const std::string& name,
                     double min, double max) {
  const double value = options.get_double(name);
  if (!(value >= min && value <= max)) {
    throw UsageError("--" + name + " must be in [" +
                     util::format("%g", min) + ", " +
                     util::format("%g", max) + "], got " +
                     util::format("%g", value));
  }
  return value;
}

std::uint64_t parse_mem_size(const std::string& text, const char* flag) {
  const std::string entry(util::trim(text));
  const auto bad = [&] {
    return UsageError(std::string("--") + flag +
                      ": expected a size like 512m, 2g, or 1048576, got '" +
                      entry + "'");
  };
  if (entry.empty()) throw bad();
  std::uint64_t multiplier = 1;
  std::string digits = entry;
  switch (entry.back()) {
    case 'k': case 'K': multiplier = 1ull << 10; break;
    case 'm': case 'M': multiplier = 1ull << 20; break;
    case 'g': case 'G': multiplier = 1ull << 30; break;
    default:
      if (entry.back() < '0' || entry.back() > '9') throw bad();
  }
  if (multiplier > 1) digits.pop_back();
  if (digits.empty()) throw bad();
  std::uint64_t value = 0;
  try {
    std::size_t used = 0;
    value = std::stoull(digits, &used);
    if (used != digits.size()) throw bad();
  } catch (const UsageError&) {
    throw;
  } catch (const std::exception&) {
    throw bad();
  }
  if (value == 0 || value > std::numeric_limits<std::uint64_t>::max() /
                                multiplier) {
    throw bad();
  }
  return value * multiplier;
}

std::vector<std::pair<int, double>> parse_rank_at(const std::string& text,
                                                  const char* flag) {
  std::vector<std::pair<int, double>> out;
  if (text.empty()) return out;
  for (const std::string& token : util::split(text, ',')) {
    const std::string entry(util::trim(token));
    const auto at = entry.find('@');
    if (at == std::string::npos || at == 0 || at + 1 == entry.size()) {
      throw UsageError(std::string("--") + flag + ": expected rank@value, got '" +
                       entry + "'");
    }
    try {
      std::size_t used = 0;
      const int rank = std::stoi(entry.substr(0, at), &used);
      if (used != at) throw std::invalid_argument(entry);
      const std::string value_text = entry.substr(at + 1);
      const double value = std::stod(value_text, &used);
      if (used != value_text.size()) throw std::invalid_argument(entry);
      out.emplace_back(rank, value);
    } catch (const std::exception&) {
      throw UsageError(std::string("--") + flag + ": expected rank@value, got '" +
                       entry + "'");
    }
  }
  return out;
}

void define_simd_option(util::Options& options) {
  options.define("simd", "auto",
                 "alignment kernel instruction set: auto (widest the host "
                 "supports), avx2, sse2, or off (scalar)");
}

void apply_simd_option(const util::Options& options) {
  const std::string value = options.get("simd");
  const auto requested = align::parse_isa(value);
  if (!requested) {
    throw UsageError("unknown --simd '" + value +
                     "' (use auto, avx2, sse2, or off)");
  }
  const align::Isa effective = align::set_isa(*requested);
  std::printf("alignment SIMD: %s (%u pairs per batch)\n",
              align::isa_name(effective), align::isa_lanes(effective));
}

}  // namespace pclust::cli
