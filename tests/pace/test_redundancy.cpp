#include "pclust/pace/redundancy.hpp"

#include <gtest/gtest.h>

#include "pclust/align/predicates.hpp"
#include "pclust/pace/reference.hpp"
#include "pclust/synth/generator.hpp"

namespace pclust::pace {
namespace {

synth::Dataset make_data(std::uint64_t seed, std::uint32_t n = 200) {
  synth::DatasetSpec spec;
  spec.seed = seed;
  spec.num_sequences = n;
  spec.num_families = 4;
  spec.mean_length = 80;
  spec.redundant_fraction = 0.15;
  spec.noise_fraction = 0.20;
  return synth::generate(spec);
}

/// The order-independent correctness property of RR (DESIGN.md §6):
/// every removed sequence is contained in a surviving one, and its recorded
/// container is genuine.
void check_rr_invariants(const seq::SequenceSet& set,
                         const RedundancyResult& r) {
  ASSERT_EQ(r.removed.size(), set.size());
  for (seq::SeqId id = 0; id < set.size(); ++id) {
    if (!r.removed[id]) {
      EXPECT_EQ(r.container[id], seq::kInvalidSeqId);
      continue;
    }
    const seq::SeqId keeper = r.container[id];
    ASSERT_NE(keeper, seq::kInvalidSeqId);
    EXPECT_FALSE(r.removed[keeper])
        << set.name(id) << " removed into removed " << set.name(keeper);
    EXPECT_TRUE(align::test_containment(set.residues(id),
                                        set.residues(keeper),
                                        align::blosum62())
                    .accepted)
        << set.name(id) << " not actually contained in " << set.name(keeper);
  }
}

TEST(RedundancySerial, InvariantsHold) {
  const auto d = make_data(11);
  const auto r = remove_redundant_serial(d.sequences);
  check_rr_invariants(d.sequences, r);
}

TEST(RedundancySerial, FindsInjectedDuplicates) {
  const auto d = make_data(12);
  const auto r = remove_redundant_serial(d.sequences);
  // Every injected duplicate shares a >= psi exact match with its source,
  // so RR must remove (at least) roughly the injected fraction.
  std::size_t injected = d.truth.redundant_count();
  EXPECT_GE(r.removed_count(), injected * 9 / 10);
  // And it must not wipe out the data set.
  EXPECT_LT(r.removed_count(), d.sequences.size() / 2);
}

TEST(RedundancySerial, InjectedDuplicatesRemovedSpecifically) {
  const auto d = make_data(13);
  const auto r = remove_redundant_serial(d.sequences);
  std::size_t missed = 0;
  for (seq::SeqId id = 0; id < d.sequences.size(); ++id) {
    if (d.truth.redundant[id] && !r.removed[id]) ++missed;
  }
  // A duplicate can occasionally survive when its source was itself removed
  // first; allow a small tail.
  EXPECT_LE(missed, d.truth.redundant_count() / 10);
}

TEST(RedundancySerial, NoiseNeverRemoved) {
  const auto d = make_data(14);
  const auto r = remove_redundant_serial(d.sequences);
  for (seq::SeqId id = 0; id < d.sequences.size(); ++id) {
    if (d.truth.family[id] == -1) {
      EXPECT_FALSE(r.removed[id]) << "noise " << d.sequences.name(id);
    }
  }
}

TEST(RedundancySerial, SurvivorsPlusRemovedIsAll) {
  const auto d = make_data(15);
  const auto r = remove_redundant_serial(d.sequences);
  EXPECT_EQ(r.survivors().size() + r.removed_count(), d.sequences.size());
}

TEST(RedundancySerial, CountersConsistent) {
  const auto d = make_data(16);
  const auto r = remove_redundant_serial(d.sequences);
  EXPECT_EQ(r.counters.promising_pairs,
            r.counters.duplicate_pairs + r.counters.filtered_pairs +
                r.counters.aligned_pairs);
  EXPECT_GT(r.counters.promising_pairs, 0u);
}

TEST(RedundancyParallel, MatchesSerialInvariants) {
  const auto d = make_data(17);
  const auto r =
      remove_redundant(d.sequences, 4, mpsim::MachineModel::free());
  check_rr_invariants(d.sequences, r);
}

TEST(RedundancyParallel, SameRemovalCountAcrossProcessorCounts) {
  const auto d = make_data(18);
  const auto serial = remove_redundant_serial(d.sequences);
  for (int p : {2, 3, 8}) {
    const auto par =
        remove_redundant(d.sequences, p, mpsim::MachineModel::free());
    // The removed SET can differ slightly with verdict order (removal
    // chains), but the invariants hold and the counts agree closely.
    check_rr_invariants(d.sequences, par);
    EXPECT_NEAR(static_cast<double>(par.removed_count()),
                static_cast<double>(serial.removed_count()),
                static_cast<double>(serial.removed_count()) * 0.1 + 2);
  }
}

TEST(RedundancyParallel, PromisingPairsMatchSerial) {
  const auto d = make_data(19, 120);
  const auto serial = remove_redundant_serial(d.sequences);
  const auto par =
      remove_redundant(d.sequences, 5, mpsim::MachineModel::free());
  // Pair generation is partition-independent.
  EXPECT_EQ(par.counters.promising_pairs, serial.counters.promising_pairs);
}

TEST(RedundancyParallel, VirtualTimePositiveUnderRealModel) {
  const auto d = make_data(20, 120);
  const auto r =
      remove_redundant(d.sequences, 4, mpsim::MachineModel::bluegene_l());
  EXPECT_GT(r.run.makespan, 0.0);
  EXPECT_EQ(r.run.rank_times.size(), 4u);
}

TEST(RedundancyParallel, RequiresTwoRanks) {
  const auto d = make_data(21, 60);
  EXPECT_THROW(
      remove_redundant(d.sequences, 1, mpsim::MachineModel::free()),
      std::invalid_argument);
}

TEST(RedundancyVsBruteForce, NoSurvivorContainedInSurvivor) {
  // After RR, no surviving sequence may be contained in another survivor
  // that shares a psi-length match (the filter's completeness guarantee).
  const auto d = make_data(22, 100);
  const auto r = remove_redundant_serial(d.sequences);
  const auto survivors = r.survivors();
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    for (std::size_t j = 0; j < survivors.size(); ++j) {
      if (i == j) continue;
      const auto inner = d.sequences.residues(survivors[i]);
      const auto outer = d.sequences.residues(survivors[j]);
      const auto out =
          align::test_containment(inner, outer, align::blosum62());
      if (!out.accepted) continue;
      // Containment at >= 95 % similarity over >= 10 residues implies a
      // 10-residue exact match only if the region is long enough; tolerate
      // short-sequence corner cases below 2 * psi.
      EXPECT_LT(inner.size(), 20u)
          << d.sequences.name(survivors[i]) << " still contained in "
          << d.sequences.name(survivors[j]);
    }
  }
}

TEST(BruteForceReference, AgreesOnInjectedDuplicates) {
  const auto d = make_data(23, 80);
  BruteForceStats stats;
  const auto removed =
      remove_redundant_bruteforce(d.sequences, PaceParams{}, &stats);
  EXPECT_EQ(stats.alignments, 80ull * 79 / 2);
  std::size_t found = 0;
  for (seq::SeqId id = 0; id < d.sequences.size(); ++id) {
    if (d.truth.redundant[id] && removed[id]) ++found;
  }
  EXPECT_GE(found, d.truth.redundant_count() * 8 / 10);
}

}  // namespace
}  // namespace pclust::pace
