#include "pclust/pace/components.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "pclust/pace/redundancy.hpp"
#include "pclust/pace/reference.hpp"
#include "pclust/synth/generator.hpp"

namespace pclust::pace {
namespace {

synth::Dataset make_data(std::uint64_t seed, std::uint32_t n = 150) {
  synth::DatasetSpec spec;
  spec.seed = seed;
  spec.num_sequences = n;
  spec.num_families = 4;
  spec.mean_length = 80;
  spec.redundant_fraction = 0.0;  // CCD runs on non-redundant input
  spec.noise_fraction = 0.20;
  spec.max_divergence = 0.20;
  return synth::generate(spec);
}

std::vector<seq::SeqId> all_ids(const seq::SequenceSet& set) {
  std::vector<seq::SeqId> ids(set.size());
  std::iota(ids.begin(), ids.end(), seq::SeqId{0});
  return ids;
}

using Partition = std::set<std::set<seq::SeqId>>;

Partition as_partition(const std::vector<std::vector<seq::SeqId>>& comps) {
  Partition out;
  for (const auto& c : comps) out.insert({c.begin(), c.end()});
  return out;
}

TEST(ComponentsSerial, CoversAllInputIds) {
  const auto d = make_data(31);
  const auto ids = all_ids(d.sequences);
  const auto r = detect_components_serial(d.sequences, ids);
  std::size_t total = 0;
  std::set<seq::SeqId> seen;
  for (const auto& c : r.components) {
    for (auto id : c) EXPECT_TRUE(seen.insert(id).second);
    total += c.size();
  }
  EXPECT_EQ(total, ids.size());
}

TEST(ComponentsSerial, DescendingSizeOrder) {
  const auto d = make_data(32);
  const auto r = detect_components_serial(d.sequences, all_ids(d.sequences));
  for (std::size_t i = 1; i < r.components.size(); ++i) {
    EXPECT_GE(r.components[i - 1].size(), r.components[i].size());
  }
}

TEST(ComponentsSerial, RefinesBruteForcePartition) {
  // Always-true invariant: the heuristic tests a SUBSET of all pairs with
  // the same predicate, so its partition refines the brute-force one —
  // every heuristic component lies inside one brute-force component.
  for (std::uint64_t seed : {33u, 34u, 35u}) {
    const auto d = make_data(seed, 80);
    const auto ids = all_ids(d.sequences);
    const auto heuristic = detect_components_serial(d.sequences, ids);
    const auto brute = detect_components_bruteforce(d.sequences, ids);
    std::vector<std::size_t> brute_comp(d.sequences.size());
    for (std::size_t c = 0; c < brute.size(); ++c) {
      for (auto id : brute[c]) brute_comp[id] = c;
    }
    for (const auto& comp : heuristic.components) {
      for (auto id : comp) {
        EXPECT_EQ(brute_comp[id], brute_comp[comp.front()])
            << "seed " << seed << ": heuristic component crosses "
            << "brute-force components";
      }
    }
  }
}

TEST(ComponentsSerial, MatchesBruteForceWithPermissivePsi) {
  // With ψ small enough to admit every true overlap of this data, the
  // partitions must agree exactly (DESIGN.md §6).
  PaceParams params;
  params.psi = 5;
  params.bucket_prefix = 3;
  for (std::uint64_t seed : {33u, 34u, 35u}) {
    const auto d = make_data(seed, 80);
    const auto ids = all_ids(d.sequences);
    const auto heuristic = detect_components_serial(d.sequences, ids, params);
    const auto brute = detect_components_bruteforce(d.sequences, ids);
    EXPECT_EQ(as_partition(heuristic.components), as_partition(brute))
        << "seed " << seed;
  }
}

TEST(ComponentsSerial, FamiliesLandInOneComponent) {
  const auto d = make_data(36);
  const auto r = detect_components_serial(d.sequences, all_ids(d.sequences));
  // Map each sequence to its component.
  std::vector<std::size_t> comp_of(d.sequences.size());
  for (std::size_t c = 0; c < r.components.size(); ++c) {
    for (auto id : r.components[c]) comp_of[id] = c;
  }
  // Members of one family should overwhelmingly share a component.
  for (const auto& family : d.truth.benchmark_clusters()) {
    std::map<std::size_t, std::size_t> votes;
    for (auto id : family) ++votes[comp_of[id]];
    std::size_t best = 0;
    for (const auto& [c, v] : votes) best = std::max(best, v);
    EXPECT_GE(best, family.size() * 8 / 10);
  }
}

TEST(ComponentsSerial, NoiseStaysSingleton) {
  const auto d = make_data(37);
  const auto r = detect_components_serial(d.sequences, all_ids(d.sequences));
  std::vector<std::size_t> comp_size(d.sequences.size());
  for (const auto& c : r.components) {
    for (auto id : c) comp_size[id] = c.size();
  }
  std::size_t grouped_noise = 0;
  for (seq::SeqId id = 0; id < d.sequences.size(); ++id) {
    if (d.truth.family[id] == -1 && comp_size[id] > 1) ++grouped_noise;
  }
  EXPECT_LE(grouped_noise, d.truth.noise_count() / 10);
}

TEST(ComponentsSerial, TransitiveClosureFiltersMostPairs) {
  // Within dense families almost every later pair is filtered without
  // alignment — the paper's central work-saving observation.
  const auto d = make_data(38, 300);
  const auto r = detect_components_serial(d.sequences, all_ids(d.sequences));
  EXPECT_GT(r.counters.filtered_pairs + r.counters.duplicate_pairs,
            r.counters.aligned_pairs);
}

TEST(ComponentsSerial, SubsetOfIdsHonored) {
  const auto d = make_data(39, 60);
  std::vector<seq::SeqId> ids;
  for (seq::SeqId id = 0; id < d.sequences.size(); id += 2) ids.push_back(id);
  const auto r = detect_components_serial(d.sequences, ids);
  std::size_t total = 0;
  for (const auto& c : r.components) {
    total += c.size();
    for (auto id : c) EXPECT_EQ(id % 2, 0u);
  }
  EXPECT_EQ(total, ids.size());
}

TEST(ComponentsParallel, PartitionIdenticalToSerialForAnyP) {
  // DESIGN.md §6: identical results at any processor count.
  const auto d = make_data(40, 120);
  const auto ids = all_ids(d.sequences);
  const auto serial = detect_components_serial(d.sequences, ids);
  for (int p : {2, 3, 5, 9}) {
    const auto par =
        detect_components(d.sequences, ids, p, mpsim::MachineModel::free());
    EXPECT_EQ(as_partition(par.components), as_partition(serial.components))
        << "p=" << p;
  }
}

TEST(ComponentsParallel, PromisingPairsIndependentOfP) {
  const auto d = make_data(41, 100);
  const auto ids = all_ids(d.sequences);
  const auto a =
      detect_components(d.sequences, ids, 2, mpsim::MachineModel::free());
  const auto b =
      detect_components(d.sequences, ids, 7, mpsim::MachineModel::free());
  EXPECT_EQ(a.counters.promising_pairs, b.counters.promising_pairs);
}

TEST(ComponentsParallel, MakespanDecreasesWithMoreWorkers) {
  // RR+CCD-style scaling: more workers => shorter simulated time (on a
  // dataset big enough to amortize protocol overhead).
  synth::DatasetSpec spec;
  spec.seed = 42;
  spec.num_sequences = 500;
  spec.num_families = 6;
  spec.mean_length = 100;
  spec.noise_fraction = 0.2;
  spec.redundant_fraction = 0;
  const auto d = synth::generate(spec);
  const auto ids = all_ids(d.sequences);
  const auto t2 = detect_components(d.sequences, ids, 2,
                                    mpsim::MachineModel::bluegene_l());
  const auto t8 = detect_components(d.sequences, ids, 8,
                                    mpsim::MachineModel::bluegene_l());
  EXPECT_LT(t8.run.makespan, t2.run.makespan);
}

TEST(ComponentsResultHelpers, MinSizeQueries) {
  ComponentsResult r;
  r.components = {{1, 2, 3, 4, 5}, {6, 7}, {8}};
  EXPECT_EQ(r.count_with_min_size(1), 3u);
  EXPECT_EQ(r.count_with_min_size(2), 2u);
  EXPECT_EQ(r.count_with_min_size(5), 1u);
  EXPECT_EQ(r.sequences_in_min_size(2), 7u);
  EXPECT_EQ(r.sequences_in_min_size(6), 0u);
}

TEST(ComponentsSerial, PipelineAfterRedundancyRemoval) {
  // Integration: RR then CCD on survivors, as the pipeline runs them.
  synth::DatasetSpec spec;
  spec.seed = 43;
  spec.num_sequences = 200;
  spec.num_families = 4;
  spec.mean_length = 80;
  spec.redundant_fraction = 0.15;
  spec.noise_fraction = 0.2;
  const auto d = synth::generate(spec);
  const auto rr = remove_redundant_serial(d.sequences);
  const auto survivors = rr.survivors();
  EXPECT_LT(survivors.size(), d.sequences.size());
  const auto ccd = detect_components_serial(d.sequences, survivors);
  std::size_t total = 0;
  for (const auto& c : ccd.components) total += c.size();
  EXPECT_EQ(total, survivors.size());
  EXPECT_GE(ccd.count_with_min_size(5),
            3u);  // most families survive as components
}

}  // namespace
}  // namespace pclust::pace
