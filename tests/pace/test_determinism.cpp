// Thread-count independence of the PaCE phases: the final cluster STATE
// (removed/container for RR, the component partition for CCD) must be
// bit-identical for every pool size. Counters are deliberately excluded —
// batched filters may admit extra no-op verdicts (see engine.hpp).
#include <gtest/gtest.h>

#include "pclust/exec/pool.hpp"
#include "pclust/pace/components.hpp"
#include "pclust/pace/redundancy.hpp"
#include "pclust/pace/reference.hpp"
#include "pclust/synth/generator.hpp"

namespace pclust::pace {
namespace {

synth::Dataset make_data(std::uint64_t seed, std::uint32_t n = 160) {
  synth::DatasetSpec spec;
  spec.seed = seed;
  spec.num_sequences = n;
  spec.num_families = 5;
  spec.mean_length = 70;
  spec.redundant_fraction = 0.15;
  spec.noise_fraction = 0.15;
  return synth::generate(spec);
}

TEST(Determinism, SerialRrStateIndependentOfThreads) {
  const auto d = make_data(31);
  const auto golden = remove_redundant_serial(d.sequences);
  for (unsigned threads : {1u, 2u, 8u}) {
    exec::Pool pool(threads);
    const auto r = remove_redundant_serial(d.sequences, {}, &pool);
    EXPECT_EQ(r.removed, golden.removed) << "threads=" << threads;
    EXPECT_EQ(r.container, golden.container) << "threads=" << threads;
  }
}

TEST(Determinism, SerialCcdStateIndependentOfThreads) {
  const auto d = make_data(32);
  const auto survivors = remove_redundant_serial(d.sequences).survivors();
  const auto golden = detect_components_serial(d.sequences, survivors);
  for (unsigned threads : {1u, 2u, 8u}) {
    exec::Pool pool(threads);
    const auto r = detect_components_serial(d.sequences, survivors, {}, &pool);
    EXPECT_EQ(r.components, golden.components) << "threads=" << threads;
  }
}

TEST(Determinism, SimulatedRrStateIndependentOfThreads) {
  const auto d = make_data(33);
  const auto golden =
      remove_redundant(d.sequences, 4, mpsim::MachineModel::free());
  for (unsigned threads : {2u, 8u}) {
    exec::Pool pool(threads);
    const auto r =
        remove_redundant(d.sequences, 4, mpsim::MachineModel::free(), {},
                         &pool);
    EXPECT_EQ(r.removed, golden.removed) << "threads=" << threads;
    EXPECT_EQ(r.container, golden.container) << "threads=" << threads;
    // The virtual clock is charged serially in task order, so even the
    // simulated makespan must not depend on the real thread count.
    EXPECT_EQ(r.run.makespan, golden.run.makespan) << "threads=" << threads;
  }
}

TEST(Determinism, SimulatedCcdStateIndependentOfThreads) {
  const auto d = make_data(34);
  const auto survivors = remove_redundant_serial(d.sequences).survivors();
  const auto golden = detect_components(d.sequences, survivors, 3,
                                        mpsim::MachineModel::free());
  for (unsigned threads : {2u, 8u}) {
    exec::Pool pool(threads);
    const auto r = detect_components(d.sequences, survivors, 3,
                                     mpsim::MachineModel::free(), {}, &pool);
    EXPECT_EQ(r.components, golden.components) << "threads=" << threads;
    EXPECT_EQ(r.run.makespan, golden.run.makespan) << "threads=" << threads;
  }
}

TEST(Determinism, BruteForceCcdMatchesSerialIncludingStats) {
  const auto d = make_data(35, 60);
  std::vector<seq::SeqId> ids(d.sequences.size());
  for (seq::SeqId i = 0; i < d.sequences.size(); ++i) ids[i] = i;
  BruteForceStats golden_stats;
  const auto golden =
      detect_components_bruteforce(d.sequences, ids, {}, &golden_stats);
  for (unsigned threads : {2u, 8u}) {
    exec::Pool pool(threads);
    BruteForceStats stats;
    const auto r =
        detect_components_bruteforce(d.sequences, ids, {}, &stats, &pool);
    EXPECT_EQ(r, golden) << "threads=" << threads;
    // Brute force has no order-dependent filter: stats match exactly too.
    EXPECT_EQ(stats.alignments, golden_stats.alignments);
    EXPECT_EQ(stats.cells, golden_stats.cells);
  }
}

}  // namespace
}  // namespace pclust::pace
