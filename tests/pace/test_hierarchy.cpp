// Two-level master-tree protocol: sub-masters shard the union–find, resolve
// intra-shard merges locally, and forward only cross-shard union events to
// the root as idempotent seq-numbered records. The contract under test: the
// component partition is bit-identical to the flat single-master run under
// ANY topology and ANY survivable fault plan — including sub-master deaths,
// which the root heals by replaying the dead shard's event log and
// re-homing its orphaned workers onto survivors.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "pclust/pace/components.hpp"
#include "pclust/pace/redundancy.hpp"
#include "pclust/synth/generator.hpp"

namespace pclust::pace {
namespace {

synth::Dataset make_data(std::uint64_t seed, std::uint32_t n = 140) {
  synth::DatasetSpec spec;
  spec.seed = seed;
  spec.num_sequences = n;
  spec.num_families = 5;
  spec.mean_length = 70;
  spec.redundant_fraction = 0.15;
  spec.noise_fraction = 0.15;
  return synth::generate(spec);
}

PaceParams with_masters(int masters) {
  PaceParams params;
  params.masters = masters;
  return params;
}

TEST(Hierarchy, FaultFreeMatchesFlatBitIdentical) {
  const auto d = make_data(61);
  const auto survivors = remove_redundant_serial(d.sequences).survivors();
  const auto model = mpsim::MachineModel::bluegene_l();
  const auto flat = detect_components(d.sequences, survivors, 8, model);

  for (const int masters : {2, 3, 4}) {
    const auto hier = detect_components(d.sequences, survivors, 8, model,
                                        with_masters(masters));
    EXPECT_EQ(hier.components, flat.components) << "masters=" << masters;
    EXPECT_TRUE(hier.run.crashed_ranks.empty());
    EXPECT_EQ(hier.run.counter("submasters_failed"), 0u);
    EXPECT_EQ(hier.run.counter("workers_rehomed"), 0u);
  }
}

TEST(Hierarchy, SubMasterCrashReplaysShardLogBitIdentical) {
  const auto d = make_data(62);
  const auto survivors = remove_redundant_serial(d.sequences).survivors();
  const auto model = mpsim::MachineModel::bluegene_l();
  const auto flat = detect_components(d.sequences, survivors, 7, model);
  const auto golden = detect_components(d.sequences, survivors, 7, model,
                                        with_masters(2));
  ASSERT_EQ(golden.components, flat.components);

  // Kill sub-master 1 at several points in its fault-free virtual lifetime:
  // before it has admitted anything, mid-shard, and late (most of its event
  // log already forwarded). Every variant must replay to the same partition.
  const double lifetime = golden.run.rank_times[1];
  ASSERT_GT(lifetime, 0.0);
  for (const double fraction : {0.0, 0.3, 0.7}) {
    mpsim::FaultPlan plan;
    plan.crashes.push_back({1, fraction * lifetime});
    const auto r = detect_components(d.sequences, survivors, 7, model,
                                     with_masters(2), nullptr, &plan);
    EXPECT_EQ(r.run.crashed_ranks, (std::vector<int>{1}))
        << "fraction=" << fraction;
    EXPECT_EQ(r.components, flat.components) << "fraction=" << fraction;
    EXPECT_EQ(r.run.counter("submasters_failed"), 1u);
    EXPECT_GE(r.run.counter("workers_rehomed"), 1u)
        << "fraction=" << fraction;
  }
}

TEST(Hierarchy, EmptyInitialShardCrashRegression) {
  // p=4 with masters=2 homes the single worker (rank 3) on sub-master 1 and
  // leaves shard 2 initially EMPTY. Crashing sub-master 1 at vt=0 re-homes
  // the worker onto shard 2, whose first dispatch carries the adoption
  // grant. Regression guard: the re-homed worker must wait for that
  // dispatch instead of sending an unprompted "exhausted" round — the stale
  // quiescence signal once convinced the root the phase was done while the
  // replayed stream was still in flight, losing most of the partition.
  const auto d = make_data(63);
  const auto survivors = remove_redundant_serial(d.sequences).survivors();
  const auto model = mpsim::MachineModel::bluegene_l();
  const auto flat = detect_components(d.sequences, survivors, 4, model);

  mpsim::FaultPlan plan;
  plan.crashes.push_back({1, 0.0});
  const auto r = detect_components(d.sequences, survivors, 4, model,
                                   with_masters(2), nullptr, &plan);
  EXPECT_EQ(r.components, flat.components);
  EXPECT_EQ(r.run.counter("submasters_failed"), 1u);
  EXPECT_EQ(r.run.counter("workers_rehomed"), 1u);
  EXPECT_GE(r.run.counter("streams_rerouted"), 1u);
}

TEST(Hierarchy, SubMasterStragglerOnlySlowsVirtualTime) {
  const auto d = make_data(64);
  const auto survivors = remove_redundant_serial(d.sequences).survivors();
  const auto model = mpsim::MachineModel::bluegene_l();
  const auto golden = detect_components(d.sequences, survivors, 7, model,
                                        with_masters(2));

  mpsim::FaultPlan plan;
  plan.straggler_factor = {1.0, 6.0};  // sub-master 1 computes 6x slower
  const auto r = detect_components(d.sequences, survivors, 7, model,
                                   with_masters(2), nullptr, &plan);
  EXPECT_EQ(r.components, golden.components);
  EXPECT_TRUE(r.run.crashed_ranks.empty());
  EXPECT_EQ(r.run.counter("submasters_failed"), 0u);
  EXPECT_GE(r.run.makespan, golden.run.makespan);
}

TEST(Hierarchy, FullChaosSweepIsDeterministicAndFlatIdentical) {
  // Everything at once: lossy duplicating links, a straggling sub-master, a
  // worker crash AND a sub-master crash. Two runs of the same plan must
  // agree with each other (virtual-time determinism) and with the flat
  // fault-free partition (confluence).
  const auto d = make_data(65);
  const auto survivors = remove_redundant_serial(d.sequences).survivors();
  const auto model = mpsim::MachineModel::bluegene_l();
  const auto flat = detect_components(d.sequences, survivors, 8, model);
  const auto golden = detect_components(d.sequences, survivors, 8, model,
                                        with_masters(3));

  mpsim::FaultPlan plan;
  plan.seed = 17;
  plan.drop_probability = 0.2;
  plan.duplicate_probability = 0.2;
  plan.straggler_factor = {1.0, 1.0, 4.0};
  plan.crashes.push_back({2, 0.1 * golden.run.rank_times[2]});   // sub-master
  plan.crashes.push_back({5, 0.25 * golden.run.rank_times[5]});  // worker
  const auto a = detect_components(d.sequences, survivors, 8, model,
                                   with_masters(3), nullptr, &plan);
  const auto b = detect_components(d.sequences, survivors, 8, model,
                                   with_masters(3), nullptr, &plan);
  EXPECT_EQ(a.components, flat.components);
  EXPECT_EQ(a.components, b.components);
  EXPECT_EQ(a.run.crashed_ranks, b.run.crashed_ranks);
  EXPECT_DOUBLE_EQ(a.run.makespan, b.run.makespan);
  EXPECT_EQ(a.run.counter("submasters_failed"), 1u);
}

TEST(Hierarchy, AllSubMastersCrashedRejectedUpFront) {
  const auto d = make_data(66, 60);
  const auto survivors = remove_redundant_serial(d.sequences).survivors();
  mpsim::FaultPlan plan;
  plan.crashes.push_back({1, 0.5});
  plan.crashes.push_back({2, 1.5});
  EXPECT_THROW(detect_components(d.sequences, survivors, 6,
                                 mpsim::MachineModel::bluegene_l(),
                                 with_masters(2), nullptr, &plan),
               std::invalid_argument);
}

TEST(Hierarchy, TooFewRanksForMasterTreeRejected) {
  // masters=3 needs p >= 5 (root + 3 sub-masters + >= 1 worker); rejected
  // statically even with no fault plan.
  const auto d = make_data(66, 60);
  const auto survivors = remove_redundant_serial(d.sequences).survivors();
  EXPECT_THROW(detect_components(d.sequences, survivors, 4,
                                 mpsim::MachineModel::bluegene_l(),
                                 with_masters(3)),
               std::invalid_argument);
}

TEST(Hierarchy, RootCrashPlanNamesTheLevel) {
  const auto d = make_data(67, 60);
  const auto survivors = remove_redundant_serial(d.sequences).survivors();
  mpsim::FaultPlan plan;
  plan.crashes.push_back({0, 1.0});
  try {
    detect_components(d.sequences, survivors, 6,
                      mpsim::MachineModel::bluegene_l(), with_masters(2),
                      nullptr, &plan);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("root"), std::string::npos);
  }
}

}  // namespace
}  // namespace pclust::pace
