// Self-healing master–worker engine under injected faults: worker crashes,
// message duplication, drops, and stragglers must never change the CCD
// component partition (it is the transitive closure of accepted overlaps,
// schedule invariant), and RR must still produce a valid redundancy removal.
// The bluegene model is required — under MachineModel::free() virtual clocks
// never advance past 0, so crash thresholds > 0 would never fire.
#include <gtest/gtest.h>

#include <vector>

#include "pclust/pace/components.hpp"
#include "pclust/pace/redundancy.hpp"
#include "pclust/synth/generator.hpp"

namespace pclust::pace {
namespace {

synth::Dataset make_data(std::uint64_t seed, std::uint32_t n = 140) {
  synth::DatasetSpec spec;
  spec.seed = seed;
  spec.num_sequences = n;
  spec.num_families = 5;
  spec.mean_length = 70;
  spec.redundant_fraction = 0.15;
  spec.noise_fraction = 0.15;
  return synth::generate(spec);
}

mpsim::FaultPlan worker_crash(int rank, double at) {
  mpsim::FaultPlan plan;
  plan.crashes.push_back({rank, at});
  return plan;
}

TEST(FaultTolerance, CcdSurvivesOneWorkerCrashBitIdentical) {
  const auto d = make_data(41);
  const auto survivors = remove_redundant_serial(d.sequences).survivors();
  const auto model = mpsim::MachineModel::bluegene_l();
  const auto golden = detect_components(d.sequences, survivors, 4, model);
  ASSERT_TRUE(golden.run.crashed_ranks.empty());

  // Kill worker 2 at several points in its life: almost immediately,
  // mid-stream, and near the end. Anchoring the crash times to the worker's
  // own fault-free virtual clock guarantees each threshold is actually
  // reached (its clock follows the golden trajectory until the crash).
  // (Not too near 1.0: check_crash runs at the TOP of each operation, so a
  // threshold crossed by the worker's final clock advance never fires.)
  const double lifetime = golden.run.rank_times[2];
  ASSERT_GT(lifetime, 0.0);
  for (const double fraction : {1e-6, 0.3, 0.5, 0.7}) {
    const auto plan = worker_crash(2, fraction * lifetime);
    const auto r =
        detect_components(d.sequences, survivors, 4, model, {}, nullptr, &plan);
    EXPECT_EQ(r.run.crashed_ranks, (std::vector<int>{2}))
        << "fraction=" << fraction;
    EXPECT_EQ(r.components, golden.components) << "fraction=" << fraction;
  }
}

TEST(FaultTolerance, CcdSurvivesCascadingCrashes) {
  const auto d = make_data(42);
  const auto survivors = remove_redundant_serial(d.sequences).survivors();
  const auto model = mpsim::MachineModel::bluegene_l();
  const auto golden = detect_components(d.sequences, survivors, 5, model);

  // Three of four workers die, staggered; the lone survivor (and adopter of
  // everyone's streams) must still complete the exact partition. Crash
  // times sit inside each worker's fault-free lifetime so every one fires
  // (a worker's clock only grows once it inherits extra streams).
  mpsim::FaultPlan plan;
  plan.crashes.push_back({1, 0.05 * golden.run.rank_times[1]});
  plan.crashes.push_back({2, 0.40 * golden.run.rank_times[2]});
  plan.crashes.push_back({4, 0.80 * golden.run.rank_times[4]});
  const auto r =
      detect_components(d.sequences, survivors, 5, model, {}, nullptr, &plan);
  EXPECT_EQ(r.run.crashed_ranks, (std::vector<int>{1, 2, 4}));
  EXPECT_EQ(r.components, golden.components);
  EXPECT_GE(r.run.counter("streams_adopted"), 3u);
}

TEST(FaultTolerance, CcdSurvivesDropsDuplicatesAndStragglers) {
  const auto d = make_data(43);
  const auto survivors = remove_redundant_serial(d.sequences).survivors();
  const auto model = mpsim::MachineModel::bluegene_l();
  const auto golden = detect_components(d.sequences, survivors, 4, model);

  mpsim::FaultPlan plan;
  plan.seed = 5;
  plan.drop_probability = 0.3;
  plan.duplicate_probability = 0.3;
  plan.straggler_factor = {1.0, 3.0, 1.0, 8.0};
  const auto r =
      detect_components(d.sequences, survivors, 4, model, {}, nullptr, &plan);
  EXPECT_TRUE(r.run.crashed_ranks.empty());
  EXPECT_EQ(r.components, golden.components);
}

TEST(FaultTolerance, CcdFullFaultMatrixIsDeterministic) {
  const auto d = make_data(44);
  const auto survivors = remove_redundant_serial(d.sequences).survivors();
  const auto model = mpsim::MachineModel::bluegene_l();
  const auto golden = detect_components(d.sequences, survivors, 4, model);

  mpsim::FaultPlan plan;
  plan.seed = 21;
  plan.drop_probability = 0.2;
  plan.duplicate_probability = 0.2;
  plan.straggler_factor = {1.0, 1.0, 5.0};
  plan.crashes.push_back({3, 0.3 * golden.run.rank_times[3]});
  const auto a =
      detect_components(d.sequences, survivors, 4, model, {}, nullptr, &plan);
  const auto b =
      detect_components(d.sequences, survivors, 4, model, {}, nullptr, &plan);
  EXPECT_EQ(a.components, golden.components);
  EXPECT_EQ(a.components, b.components);
  EXPECT_EQ(a.run.crashed_ranks, b.run.crashed_ranks);
  EXPECT_DOUBLE_EQ(a.run.makespan, b.run.makespan);
}

TEST(FaultTolerance, RrHealsWorkerCrashIntoValidRemoval) {
  const auto d = make_data(45);
  const auto model = mpsim::MachineModel::bluegene_l();
  const auto golden = remove_redundant(d.sequences, 4, model);

  const auto plan = worker_crash(1, 0.4 * golden.run.rank_times[1]);
  const auto r = remove_redundant(d.sequences, 4, model, {}, nullptr, &plan);
  EXPECT_EQ(r.run.crashed_ranks, (std::vector<int>{1}));
  // RR verdict application is order dependent (removal chains), so the
  // healed run need not be bit-identical — but it must still be a valid
  // removal: every removed sequence names a container that survived.
  ASSERT_EQ(r.removed.size(), d.sequences.size());
  for (seq::SeqId id = 0; id < d.sequences.size(); ++id) {
    if (!r.removed[id]) continue;
    const seq::SeqId container = r.container[id];
    EXPECT_LT(container, d.sequences.size());
    EXPECT_FALSE(r.removed[container])
        << "removed " << id << " points at removed container " << container;
  }
  // Healing must not silently lose work: the healed run still removes a
  // comparable amount of redundancy.
  EXPECT_GT(r.removed_count(), 0u);
  EXPECT_GE(r.removed_count() + 5, golden.removed_count());
}

TEST(FaultTolerance, AllWorkersCrashedRejectedUpFront) {
  // An unsurvivable plan (every worker crashes) is now rejected statically
  // by FaultPlan::validate_protocol — the CLI's exit-code-2 class — rather
  // than surfacing mid-run as an unattributable runtime error.
  const auto d = make_data(46, 60);
  const auto survivors = remove_redundant_serial(d.sequences).survivors();
  mpsim::FaultPlan plan;
  plan.crashes.push_back({1, 0.0});
  plan.crashes.push_back({2, 0.0});
  EXPECT_THROW(detect_components(d.sequences, survivors, 3,
                                 mpsim::MachineModel::bluegene_l(), {},
                                 nullptr, &plan),
               std::invalid_argument);
}

TEST(FaultTolerance, NegativeCrashTimeRejected) {
  const auto d = make_data(46, 60);
  const auto survivors = remove_redundant_serial(d.sequences).survivors();
  const auto plan = worker_crash(1, -0.5);
  EXPECT_THROW(detect_components(d.sequences, survivors, 3,
                                 mpsim::MachineModel::bluegene_l(), {},
                                 nullptr, &plan),
               std::invalid_argument);
}

TEST(FaultTolerance, MasterCrashPlanRejected) {
  const auto d = make_data(47, 60);
  const auto survivors = remove_redundant_serial(d.sequences).survivors();
  const auto plan = worker_crash(0, 1.0);
  EXPECT_THROW(detect_components(d.sequences, survivors, 3,
                                 mpsim::MachineModel::bluegene_l(), {},
                                 nullptr, &plan),
               std::invalid_argument);
}

TEST(FaultTolerance, GenerousHeartbeatLeavesResultUntouched) {
  // The heartbeat is a wall-clock liveness backstop (stragglers only slow
  // VIRTUAL time, so they never trip it). A generous timeout must change
  // nothing — crashes are still observed as failures, not timeouts, and
  // the partition stays bit-identical.
  const auto d = make_data(48, 100);
  const auto survivors = remove_redundant_serial(d.sequences).survivors();
  const auto model = mpsim::MachineModel::bluegene_l();
  const auto golden = detect_components(d.sequences, survivors, 4, model);

  PaceParams params;
  params.heartbeat_timeout = 30.0;  // wall seconds; never fires in-test
  const auto plan = worker_crash(2, 0.5 * golden.run.rank_times[2]);
  const auto r = detect_components(d.sequences, survivors, 4, model, params,
                                   nullptr, &plan);
  EXPECT_EQ(r.components, golden.components);
  EXPECT_EQ(r.run.counter("workers_failed"), 1u);
  EXPECT_EQ(r.run.counter("workers_timed_out"), 0u);
}

}  // namespace
}  // namespace pclust::pace
