// Degenerate-input and failure-injection tests of the PaCE engine.
#include <gtest/gtest.h>

#include <numeric>

#include "pclust/pace/components.hpp"
#include "pclust/pace/redundancy.hpp"
#include "pclust/synth/generator.hpp"

namespace pclust::pace {
namespace {

std::vector<seq::SeqId> all_ids(const seq::SequenceSet& set) {
  std::vector<seq::SeqId> ids(set.size());
  std::iota(ids.begin(), ids.end(), seq::SeqId{0});
  return ids;
}

TEST(EngineEdges, EmptyInputSerial) {
  seq::SequenceSet empty;
  const auto rr = remove_redundant_serial(empty);
  EXPECT_TRUE(rr.removed.empty());
  const auto ccd = detect_components_serial(empty, {});
  EXPECT_TRUE(ccd.components.empty());
}

TEST(EngineEdges, EmptyInputParallel) {
  seq::SequenceSet empty;
  const auto rr =
      remove_redundant(empty, 3, mpsim::MachineModel::free());
  EXPECT_TRUE(rr.removed.empty());
  EXPECT_EQ(rr.counters.promising_pairs, 0u);
}

TEST(EngineEdges, SingleSequence) {
  seq::SequenceSet set;
  set.add("only", "MKTAYIAKQRQISFVKSHFSRQL");
  const auto rr = remove_redundant_serial(set);
  EXPECT_EQ(rr.removed_count(), 0u);
  const auto ccd = detect_components_serial(set, rr.survivors());
  ASSERT_EQ(ccd.components.size(), 1u);
  EXPECT_EQ(ccd.components[0], (std::vector<seq::SeqId>{0}));
}

TEST(EngineEdges, AllIdenticalSequencesCollapse) {
  seq::SequenceSet set;
  for (int i = 0; i < 12; ++i) {
    set.add("dup" + std::to_string(i), "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ");
  }
  const auto rr = remove_redundant_serial(set);
  // Mutual containment everywhere. Interleaved removal chains can leave a
  // few mutually-contained container-survivors (a survivor that anchors
  // removed sequences is never removed itself), but the collapse must be
  // substantial and every removed sequence must point at a survivor.
  EXPECT_LE(rr.survivors().size(), 4u);
  EXPECT_GE(rr.removed_count(), 8u);
  for (seq::SeqId id = 0; id < set.size(); ++id) {
    if (rr.removed[id]) {
      EXPECT_FALSE(rr.removed[rr.container[id]]);
    }
  }
}

TEST(EngineEdges, PsiLargerThanSequencesMeansNoPairs) {
  synth::DatasetSpec spec;
  spec.num_sequences = 40;
  spec.num_families = 2;
  spec.mean_length = 30;
  spec.noise_fraction = 0;
  spec.redundant_fraction = 0;
  const auto d = synth::generate(spec);
  PaceParams params;
  params.psi = 100;  // longer than any sequence
  params.bucket_prefix = 3;
  const auto ccd = detect_components_serial(d.sequences,
                                            all_ids(d.sequences), params);
  EXPECT_EQ(ccd.counters.promising_pairs, 0u);
  // Everything stays a singleton.
  EXPECT_EQ(ccd.components.size(), d.sequences.size());
}

TEST(EngineEdges, BucketPrefixLargerThanPsiRejected) {
  seq::SequenceSet set;
  set.add("a", "ACDEFGHIKL");
  set.add("b", "ACDEFGHIKL");
  PaceParams params;
  params.psi = 2;
  params.bucket_prefix = 3;  // nodes of depth 2 could span buckets
  EXPECT_THROW(
      { [[maybe_unused]] auto r = remove_redundant_serial(set, params); },
      std::invalid_argument);
}

TEST(EngineEdges, TwoRanksMinimumEnforced) {
  seq::SequenceSet set;
  set.add("a", "ACDEFGHIKL");
  EXPECT_THROW(
      {
        [[maybe_unused]] auto r =
            detect_components(set, {0}, 1, mpsim::MachineModel::free());
      },
      std::invalid_argument);
}

TEST(EngineEdges, ManyWorkersFewSequences) {
  // More workers than buckets/pairs: protocol must still terminate.
  seq::SequenceSet set;
  set.add("a", "MKTAYIAKQRQISFVKSHFSRQL");
  set.add("b", "MKTAYIAKQRQISFVKSHFSRQL");
  set.add("c", "WWWWWWWWYYYYYYYYWWWWWWW");
  const auto ccd = detect_components(set, {0, 1, 2}, 16,
                                     mpsim::MachineModel::free());
  std::size_t total = 0;
  for (const auto& c : ccd.components) total += c.size();
  EXPECT_EQ(total, 3u);
}

TEST(EngineEdges, RedundancyIdempotent) {
  // Running RR on RR survivors removes nothing further (no containment
  // pair survives the first pass).
  synth::DatasetSpec spec;
  spec.seed = 5;
  spec.num_sequences = 150;
  spec.num_families = 3;
  spec.mean_length = 80;
  spec.redundant_fraction = 0.2;
  const auto d = synth::generate(spec);
  const auto first = remove_redundant_serial(d.sequences);
  const auto survivors = d.sequences.subset(first.survivors());
  const auto second = remove_redundant_serial(survivors);
  EXPECT_EQ(second.removed_count(), 0u);
}

TEST(EngineEdges, SequencesShorterThanPsiAreSingletons) {
  seq::SequenceSet set;
  set.add("short1", "ACDEF");
  set.add("short2", "ACDEF");
  set.add("long1", "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ");
  set.add("long2", "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ");
  PaceParams params;
  params.psi = 10;
  const auto ccd =
      detect_components_serial(set, all_ids(set), params);
  // The short identical pair shares only a 5-mer: invisible at psi=10.
  bool shorts_merged = false;
  for (const auto& c : ccd.components) {
    if (c.size() == 2 && c[0] == 0 && c[1] == 1) shorts_merged = true;
  }
  EXPECT_FALSE(shorts_merged);
}

}  // namespace
}  // namespace pclust::pace
