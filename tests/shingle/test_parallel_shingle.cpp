// Pooled min-wise hashing and the pooled dense_subgraphs passes must give
// byte-identical results to the serial paths for every pool size.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "pclust/bigraph/bipartite_graph.hpp"
#include "pclust/exec/pool.hpp"
#include "pclust/shingle/minwise.hpp"
#include "pclust/shingle/shingle.hpp"
#include "pclust/util/rng.hpp"

namespace pclust::shingle {
namespace {

std::vector<std::uint32_t> distinct_links(std::uint64_t seed,
                                          std::uint32_t universe,
                                          std::uint32_t count) {
  std::vector<std::uint32_t> all(universe);
  std::iota(all.begin(), all.end(), 0u);
  util::Xoshiro256 rng(seed);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto j = i + static_cast<std::uint32_t>(
                           rng.below(static_cast<std::uint64_t>(universe - i)));
    std::swap(all[i], all[j]);
  }
  all.resize(count);
  return all;
}

TEST(ParallelMinwise, ShingleSetMatchesSerial) {
  for (std::uint32_t count : {4u, 20u, 300u}) {
    const auto links = distinct_links(91, 5000, count);
    for (std::uint32_t s : {2u, 5u}) {
      for (std::uint32_t c : {1u, 37u, 300u}) {
        const auto serial = shingle_set(links, s, c, 0xABCDu);
        for (unsigned threads : {1u, 2u, 8u}) {
          exec::Pool pool(threads);
          const auto pooled = shingle_set(links, s, c, 0xABCDu, pool);
          ASSERT_EQ(pooled.size(), serial.size())
              << "count=" << count << " s=" << s << " c=" << c
              << " threads=" << threads;
          for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(pooled[i].value, serial[i].value);
            EXPECT_EQ(pooled[i].elements, serial[i].elements);
          }
        }
      }
    }
  }
}

bigraph::BipartiteGraph random_graph(std::uint64_t seed, std::uint32_t left,
                                     std::uint32_t right, double density) {
  util::Xoshiro256 rng(seed);
  std::vector<bigraph::Edge> edges;
  for (std::uint32_t l = 0; l < left; ++l) {
    for (std::uint32_t r = 0; r < right; ++r) {
      if (rng.uniform() < density) edges.push_back({l, r});
    }
  }
  return bigraph::BipartiteGraph(left, right, std::move(edges));
}

TEST(ParallelShingle, DenseSubgraphsMatchSerial) {
  const auto g = random_graph(101, 80, 80, 0.25);
  ShingleParams params;
  params.s1 = 4;
  params.c1 = 60;
  DsdStats serial_stats;
  const auto serial = dense_subgraphs(g, params, &serial_stats);
  for (unsigned threads : {2u, 8u}) {
    exec::Pool pool(threads);
    DsdStats stats;
    const auto pooled = dense_subgraphs(g, params, &stats, &pool);
    ASSERT_EQ(pooled.size(), serial.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(pooled[i].left, serial[i].left);
      EXPECT_EQ(pooled[i].right, serial[i].right);
    }
    EXPECT_EQ(stats.tuples, serial_stats.tuples);
    EXPECT_EQ(stats.first_level_shingles, serial_stats.first_level_shingles);
    EXPECT_EQ(stats.second_level_shingles, serial_stats.second_level_shingles);
    EXPECT_EQ(stats.raw_components, serial_stats.raw_components);
  }
}

}  // namespace
}  // namespace pclust::shingle
