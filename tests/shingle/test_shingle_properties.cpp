// Property sweeps of the Shingle algorithm over its (s, c) parameter grid.
#include <gtest/gtest.h>

#include <set>

#include "pclust/shingle/shingle.hpp"
#include "pclust/util/rng.hpp"

namespace pclust::shingle {
namespace {

using bigraph::BipartiteGraph;
using bigraph::Edge;

/// Random graph: k cliques of random sizes plus sparse noise.
BipartiteGraph random_graph(std::uint64_t seed, std::uint32_t n,
                            std::uint32_t cliques, double noise) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint32_t> owner(n);
  for (auto& o : owner) {
    o = static_cast<std::uint32_t>(rng.below(cliques));
  }
  std::vector<Edge> edges;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (owner[i] == owner[j] || rng.chance(noise)) {
        edges.push_back({i, j});
      }
    }
  }
  return {n, n, std::move(edges)};
}

struct GridCase {
  std::uint32_t s;
  std::uint32_t c;
  std::uint64_t seed;
};

class ShingleGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(ShingleGrid, CandidatesWellFormed) {
  const auto [s, c, seed] = GetParam();
  const auto graph = random_graph(seed, 60, 4, 0.01);
  ShingleParams params;
  params.s1 = s;
  params.c1 = c;
  params.s2 = 2;
  params.c2 = 30;
  const auto candidates = dense_subgraphs(graph, params);
  for (const auto& ds : candidates) {
    EXPECT_FALSE(ds.left.empty());
    EXPECT_FALSE(ds.right.empty());
    EXPECT_TRUE(std::is_sorted(ds.left.begin(), ds.left.end()));
    EXPECT_TRUE(std::is_sorted(ds.right.begin(), ds.right.end()));
    for (auto v : ds.left) EXPECT_LT(v, graph.left_count());
    for (auto v : ds.right) EXPECT_LT(v, graph.right_count());
    // Each member of A shares at least s out-links with the subgraph's B
    // (its shingle is an s-subset of its out-links inside B... weaker
    // check: degree >= s, since only vertices with >= s links can shingle).
    for (auto v : ds.left) EXPECT_GE(graph.degree(v), s);
  }
  // Largest-first ordering.
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_GE(candidates[i - 1].left.size() + candidates[i - 1].right.size(),
              candidates[i].left.size() + candidates[i].right.size());
  }
}

TEST_P(ShingleGrid, ReportedFamiliesDisjointAndMapped) {
  const auto [s, c, seed] = GetParam();
  bigraph::ComponentGraph cg;
  cg.reduction = bigraph::Reduction::kDuplicate;
  cg.graph = random_graph(seed, 60, 4, 0.01);
  cg.members.resize(60);
  for (std::uint32_t i = 0; i < 60; ++i) cg.members[i] = 1000 + i;

  ShingleParams params;
  params.s1 = s;
  params.c1 = c;
  params.s2 = 2;
  params.c2 = 30;
  params.min_size = 4;
  params.tau = 0.3;
  std::set<seq::SeqId> seen;
  for (const auto& family : report_families(cg, params)) {
    EXPECT_GE(family.size(), params.min_size);
    for (seq::SeqId id : family) {
      EXPECT_GE(id, 1000u);  // mapped through members
      EXPECT_LT(id, 1060u);
      EXPECT_TRUE(seen.insert(id).second);
    }
  }
}

TEST_P(ShingleGrid, DeterministicAcrossRuns) {
  const auto [s, c, seed] = GetParam();
  const auto graph = random_graph(seed, 50, 3, 0.02);
  ShingleParams params;
  params.s1 = s;
  params.c1 = c;
  const auto x = dense_subgraphs(graph, params);
  const auto y = dense_subgraphs(graph, params);
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(x[i].left, y[i].left);
    EXPECT_EQ(x[i].right, y[i].right);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShingleGrid,
    ::testing::Values(GridCase{2, 20, 11}, GridCase{3, 50, 12},
                      GridCase{3, 150, 13}, GridCase{5, 50, 14},
                      GridCase{5, 300, 15}, GridCase{7, 100, 16},
                      GridCase{4, 80, 17}, GridCase{6, 200, 18}));

}  // namespace
}  // namespace pclust::shingle
