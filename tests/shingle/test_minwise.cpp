#include "pclust/shingle/minwise.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace pclust::shingle {
namespace {

std::vector<std::uint32_t> iota_links(std::uint32_t n, std::uint32_t start = 0) {
  std::vector<std::uint32_t> v(n);
  std::iota(v.begin(), v.end(), start);
  return v;
}

TEST(MinWise, TooFewLinksGivesNothing) {
  const auto links = iota_links(3);
  EXPECT_TRUE(shingle_set(links, 5, 10, 1).empty());
  EXPECT_TRUE(shingle_set({}, 1, 10, 1).empty());
}

TEST(MinWise, ExactSizeGivesSingleShingle) {
  const auto links = iota_links(5);
  const auto set = shingle_set(links, 5, 300, 7);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set[0].elements, links);
}

TEST(MinWise, ElementsAreSubsetOfLinksAndSorted) {
  const auto links = iota_links(40, 100);
  for (const auto& sh : shingle_set(links, 5, 50, 3)) {
    EXPECT_EQ(sh.elements.size(), 5u);
    EXPECT_TRUE(std::is_sorted(sh.elements.begin(), sh.elements.end()));
    for (auto e : sh.elements) {
      EXPECT_GE(e, 100u);
      EXPECT_LT(e, 140u);
    }
  }
}

TEST(MinWise, DeterministicInSeed) {
  const auto links = iota_links(30);
  const auto a = shingle_set(links, 4, 20, 99);
  const auto b = shingle_set(links, 4, 20, 99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].value, b[i].value);
    EXPECT_EQ(a[i].elements, b[i].elements);
  }
}

TEST(MinWise, DifferentSeedsDiffer) {
  const auto links = iota_links(30);
  const auto a = shingle_values(links, 4, 20, 1);
  const auto b = shingle_values(links, 4, 20, 2);
  EXPECT_NE(a, b);
}

TEST(MinWise, OrderOfLinksIrrelevant) {
  auto links = iota_links(20);
  const auto a = shingle_values(links, 3, 10, 5);
  std::reverse(links.begin(), links.end());
  const auto b = shingle_values(links, 3, 10, 5);
  EXPECT_EQ(a, b);
}

TEST(MinWise, IdenticalLinkSetsShareAllShingles) {
  const auto links = iota_links(25);
  const auto a = shingle_values(links, 5, 30, 11);
  const auto b = shingle_values(links, 5, 30, 11);
  EXPECT_EQ(a, b);
}

TEST(MinWise, HighOverlapSharesAtLeastOneShingle) {
  // Two vertices sharing 18 of 20 out-links should share a shingle with
  // overwhelming probability at c = 100.
  auto a_links = iota_links(20);
  auto b_links = a_links;
  b_links[0] = 1000;
  b_links[1] = 1001;
  const auto a = shingle_values(a_links, 5, 100, 13);
  const auto b = shingle_values(b_links, 5, 100, 13);
  std::set<std::uint64_t> sa(a.begin(), a.end());
  int shared = 0;
  for (auto v : b) shared += sa.count(v) ? 1 : 0;
  EXPECT_GT(shared, 0);
}

TEST(MinWise, DisjointSetsShareNothing) {
  const auto a = shingle_values(iota_links(20, 0), 5, 100, 13);
  const auto b = shingle_values(iota_links(20, 1000), 5, 100, 13);
  std::set<std::uint64_t> sa(a.begin(), a.end());
  for (auto v : b) EXPECT_EQ(sa.count(v), 0u);
}

TEST(MinWise, LargerSLowersSharingProbability) {
  // Fixed 50 % overlap: larger s => fewer shared shingles (paper §IV-D).
  auto a_links = iota_links(20, 0);
  auto b_links = iota_links(20, 10);  // overlap = 10 elements
  int shared_s2 = 0, shared_s8 = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    for (std::uint32_t s : {2u, 8u}) {
      const auto a = shingle_values(a_links, s, 50, seed);
      const auto b = shingle_values(b_links, s, 50, seed);
      std::set<std::uint64_t> sa(a.begin(), a.end());
      int shared = 0;
      for (auto v : b) shared += sa.count(v) ? 1 : 0;
      (s == 2 ? shared_s2 : shared_s8) += shared;
    }
  }
  EXPECT_GT(shared_s2, shared_s8);
}

TEST(MinWise, ShinglesDeduplicated) {
  const auto set = shingle_set(iota_links(6), 5, 300, 21);
  std::set<std::uint64_t> values;
  for (const auto& sh : set) {
    EXPECT_TRUE(values.insert(sh.value).second);
  }
  // Only C(6,5) = 6 possible distinct shingles exist.
  EXPECT_LE(set.size(), 6u);
}

TEST(MinWise, CIncreasesCoverage) {
  const auto links = iota_links(30);
  const auto small = shingle_set(links, 5, 5, 31);
  const auto large = shingle_set(links, 5, 200, 31);
  EXPECT_LT(small.size(), large.size());
}

}  // namespace
}  // namespace pclust::shingle
