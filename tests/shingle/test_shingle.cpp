#include "pclust/shingle/shingle.hpp"

#include <gtest/gtest.h>

#include <set>

#include "pclust/util/rng.hpp"

namespace pclust::shingle {
namespace {

using bigraph::BipartiteGraph;
using bigraph::Edge;

/// Duplicate-reduction graph of disjoint cliques plus optional noise edges.
BipartiteGraph cliques_graph(const std::vector<std::uint32_t>& sizes,
                             std::uint32_t noise_edges = 0,
                             std::uint64_t seed = 9) {
  std::uint32_t n = 0;
  for (auto s : sizes) n += s;
  std::vector<Edge> edges;
  std::uint32_t base = 0;
  for (auto s : sizes) {
    for (std::uint32_t i = 0; i < s; ++i) {
      for (std::uint32_t j = 0; j < s; ++j) {
        if (i != j) edges.push_back({base + i, base + j});
      }
    }
    base += s;
  }
  util::Xoshiro256 rng(seed);
  for (std::uint32_t k = 0; k < noise_edges; ++k) {
    const auto i = static_cast<std::uint32_t>(rng.below(n));
    const auto j = static_cast<std::uint32_t>(rng.below(n));
    if (i != j) {
      edges.push_back({i, j});
      edges.push_back({j, i});
    }
  }
  return {n, n, std::move(edges)};
}

ShingleParams quick_params() {
  ShingleParams p;
  p.s1 = 3;
  p.c1 = 60;
  p.s2 = 2;
  p.c2 = 40;
  p.min_size = 4;
  p.tau = 0.5;
  return p;
}

bigraph::ComponentGraph wrap_bd(BipartiteGraph graph) {
  bigraph::ComponentGraph cg;
  cg.reduction = bigraph::Reduction::kDuplicate;
  cg.members.resize(graph.right_count());
  for (std::uint32_t i = 0; i < cg.members.size(); ++i) cg.members[i] = i;
  cg.graph = std::move(graph);
  return cg;
}

TEST(Shingle, EmptyGraphNoSubgraphs) {
  DsdStats stats;
  const auto out = dense_subgraphs(BipartiteGraph(0, 0, {}), quick_params(),
                                   &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.tuples, 0u);
}

TEST(Shingle, SingleCliqueDetected) {
  const auto g = cliques_graph({12});
  DsdStats stats;
  const auto out = dense_subgraphs(g, quick_params(), &stats);
  ASSERT_FALSE(out.empty());
  // The top candidate covers (essentially) the whole clique on both sides.
  EXPECT_GE(out[0].left.size(), 11u);
  EXPECT_GE(out[0].right.size(), 8u);
  EXPECT_GT(stats.first_level_shingles, 0u);
  EXPECT_GT(stats.tuples, 0u);
}

TEST(Shingle, TwoCliquesSeparated) {
  const auto cg = wrap_bd(cliques_graph({15, 10}));
  const auto fams = report_families(cg, quick_params());
  ASSERT_GE(fams.size(), 2u);
  // Families must not mix the cliques: members 0..14 vs 15..24.
  for (const auto& f : fams) {
    const bool first = f.front() < 15;
    for (auto id : f) EXPECT_EQ(id < 15, first) << "mixed family";
  }
  EXPECT_GE(fams[0].size(), 13u);
  EXPECT_GE(fams[1].size(), 8u);
}

TEST(Shingle, FamiliesAreDisjoint) {
  const auto cg = wrap_bd(cliques_graph({15, 10, 8}, /*noise_edges=*/6));
  const auto fams = report_families(cg, quick_params());
  std::set<seq::SeqId> seen;
  for (const auto& f : fams) {
    for (auto id : f) EXPECT_TRUE(seen.insert(id).second) << id;
  }
}

TEST(Shingle, MinSizeRespected) {
  ShingleParams p = quick_params();
  p.min_size = 12;
  const auto cg = wrap_bd(cliques_graph({15, 10}));
  const auto fams = report_families(cg, p);
  for (const auto& f : fams) EXPECT_GE(f.size(), 12u);
  ASSERT_GE(fams.size(), 1u);  // the 15-clique passes
  EXPECT_LE(fams.size(), 1u);  // the 10-clique cannot
}

TEST(Shingle, TauOneRequiresSymmetry) {
  // With τ = 1 every reported B_d subgraph must satisfy A == B; cliques do.
  ShingleParams p = quick_params();
  p.tau = 1.0;
  const auto cg = wrap_bd(cliques_graph({12}));
  const auto fams = report_families(cg, p);
  ASSERT_EQ(fams.size(), 1u);
  EXPECT_GE(fams[0].size(), 10u);
}

TEST(Shingle, DeterministicInSeed) {
  const auto g = cliques_graph({15, 10}, 4);
  const auto a = dense_subgraphs(g, quick_params());
  const auto b = dense_subgraphs(g, quick_params());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].left, b[i].left);
    EXPECT_EQ(a[i].right, b[i].right);
  }
}

TEST(Shingle, SeedChangesCandidates) {
  ShingleParams p1 = quick_params();
  ShingleParams p2 = quick_params();
  p2.seed = p1.seed + 1;
  const auto g = cliques_graph({15, 10}, 4);
  const auto a = dense_subgraphs(g, p1);
  const auto b = dense_subgraphs(g, p2);
  // Same cliques detected, but internal shingle statistics differ.
  DsdStats sa, sb;
  [[maybe_unused]] auto ra = dense_subgraphs(g, p1, &sa);
  [[maybe_unused]] auto rb = dense_subgraphs(g, p2, &sb);
  EXPECT_TRUE(sa.first_level_shingles != sb.first_level_shingles ||
              a.size() != b.size() || sa.tuples == sb.tuples);
}

TEST(Shingle, LowDegreeVerticesCannotSeedButCanBeMembers) {
  // Vertex 12 points at 3 clique members (degree 3 = s1) but nothing points
  // back: it can appear in B (someone's shingle elements) only via its own
  // out-links... with s1=3 it produces exactly one shingle of clique
  // members; its left id can join A only through shared second-level
  // grouping. Verify nothing crashes and the clique is intact.
  auto edges = std::vector<Edge>{};
  for (std::uint32_t i = 0; i < 12; ++i) {
    for (std::uint32_t j = 0; j < 12; ++j) {
      if (i != j) edges.push_back({i, j});
    }
  }
  edges.push_back({12, 0});
  edges.push_back({12, 1});
  edges.push_back({12, 2});
  const BipartiteGraph g(13, 13, std::move(edges));
  const auto out = dense_subgraphs(g, quick_params());
  ASSERT_FALSE(out.empty());
  EXPECT_GE(out[0].left.size(), 11u);
}

TEST(Shingle, MatchBasedReductionReportsB) {
  // B_m-style graph: words (left) point at sequences (right). Two groups of
  // sequences {0..4} and {5..9}, each supported by 8 words.
  std::vector<Edge> edges;
  for (std::uint32_t w = 0; w < 8; ++w) {
    for (std::uint32_t s = 0; s < 5; ++s) edges.push_back({w, s});
  }
  for (std::uint32_t w = 8; w < 16; ++w) {
    for (std::uint32_t s = 5; s < 10; ++s) edges.push_back({w, s});
  }
  bigraph::ComponentGraph cg;
  cg.reduction = bigraph::Reduction::kMatchBased;
  cg.members = {100, 101, 102, 103, 104, 105, 106, 107, 108, 109};
  cg.graph = BipartiteGraph(16, 10, std::move(edges));

  ShingleParams p = quick_params();
  p.min_size = 5;
  const auto fams = report_families(cg, p);
  ASSERT_EQ(fams.size(), 2u);
  EXPECT_EQ(fams[0], (std::vector<seq::SeqId>{100, 101, 102, 103, 104}));
  EXPECT_EQ(fams[1], (std::vector<seq::SeqId>{105, 106, 107, 108, 109}));
}

TEST(Shingle, StatsPopulated) {
  DsdStats stats;
  [[maybe_unused]] auto r =
      dense_subgraphs(cliques_graph({15, 10}), quick_params(), &stats);
  EXPECT_GT(stats.tuples, 0u);
  EXPECT_GT(stats.first_level_shingles, 0u);
  EXPECT_GT(stats.second_level_shingles, 0u);
  EXPECT_GT(stats.raw_components, 0u);
  EXPECT_GE(stats.elapsed_seconds, 0.0);
}

TEST(Shingle, LargerCRaisesTupleCount) {
  ShingleParams small = quick_params();
  small.c1 = 10;
  ShingleParams large = quick_params();
  large.c1 = 200;
  DsdStats ss, sl;
  const auto g = cliques_graph({20, 15});
  [[maybe_unused]] auto rs = dense_subgraphs(g, small, &ss);
  [[maybe_unused]] auto rl = dense_subgraphs(g, large, &sl);
  EXPECT_LT(ss.tuples, sl.tuples);
}

}  // namespace
}  // namespace pclust::shingle
