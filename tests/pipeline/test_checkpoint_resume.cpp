// Phase-level checkpoint/resume: a resumed pipeline must skip completed
// phases and reproduce the uninterrupted result bit-identically, a partial
// CCD checkpoint must re-enter the pair stream mid-phase, and checkpoints
// from a different input or configuration must be refused (exit 4 at the
// CLI), never silently resumed from.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "pclust/pipeline/pipeline.hpp"
#include "pclust/synth/generator.hpp"
#include "pclust/util/checkpoint.hpp"

namespace pclust::pipeline {
namespace {

namespace fs = std::filesystem;

synth::Dataset make_data(std::uint64_t seed, std::uint32_t n = 120) {
  synth::DatasetSpec spec;
  spec.seed = seed;
  spec.num_sequences = n;
  spec.num_families = 4;
  spec.mean_length = 70;
  spec.redundant_fraction = 0.15;
  spec.noise_fraction = 0.15;
  return synth::generate(spec);
}

void expect_same_result(const PipelineResult& a, const PipelineResult& b) {
  EXPECT_EQ(a.rr.removed, b.rr.removed);
  EXPECT_EQ(a.rr.container, b.rr.container);
  EXPECT_EQ(a.ccd.components, b.ccd.components);
  ASSERT_EQ(a.families.size(), b.families.size());
  for (std::size_t i = 0; i < a.families.size(); ++i) {
    EXPECT_EQ(a.families[i].members, b.families[i].members) << "family " << i;
    EXPECT_DOUBLE_EQ(a.families[i].mean_degree, b.families[i].mean_degree);
    EXPECT_DOUBLE_EQ(a.families[i].density, b.families[i].density);
  }
  EXPECT_EQ(a.non_redundant_sequences, b.non_redundant_sequences);
  EXPECT_EQ(a.components_min_size, b.components_min_size);
  EXPECT_EQ(a.sequences_in_subgraphs, b.sequences_in_subgraphs);
}

class CheckpointResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pclust_resume_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path dir_;
};

TEST_F(CheckpointResumeTest, FreshRunWritesAllPhaseCheckpoints) {
  const auto d = make_data(61);
  PipelineConfig config;
  config.checkpoint_dir = dir_.string();
  const auto r = run(d.sequences, config);
  EXPECT_EQ(r.phase_log,
            (std::vector<std::string>{"rr:computed", "ccd:computed",
                                      "families:computed"}));
  EXPECT_TRUE(fs::exists(dir_ / "rr.ckpt"));
  EXPECT_TRUE(fs::exists(dir_ / "ccd.ckpt"));
  EXPECT_TRUE(fs::exists(dir_ / "families.ckpt"));
  // The final CCD checkpoint supersedes any mid-phase partial.
  EXPECT_FALSE(fs::exists(dir_ / "ccd_partial.ckpt"));
}

TEST_F(CheckpointResumeTest, FullResumeReproducesResultBitIdentically) {
  const auto d = make_data(62);
  PipelineConfig config;
  config.checkpoint_dir = dir_.string();
  const auto fresh = run(d.sequences, config);

  config.resume = true;
  const auto resumed = run(d.sequences, config);
  EXPECT_EQ(resumed.phase_log,
            (std::vector<std::string>{"rr:resumed", "ccd:resumed",
                                      "families:resumed"}));
  expect_same_result(fresh, resumed);
  // A resumed phase reports the checkpointed original duration, not 0.
  EXPECT_DOUBLE_EQ(resumed.rr_seconds, fresh.rr_seconds);
  EXPECT_DOUBLE_EQ(resumed.ccd_seconds, fresh.ccd_seconds);
  EXPECT_DOUBLE_EQ(resumed.bgg_dsd_seconds, fresh.bgg_dsd_seconds);
}

TEST_F(CheckpointResumeTest, MissingLaterPhasesAreRecomputed) {
  const auto d = make_data(63);
  PipelineConfig config;
  config.checkpoint_dir = dir_.string();
  const auto fresh = run(d.sequences, config);

  // Simulate a crash between CCD and the family phase.
  fs::remove(dir_ / "ccd.ckpt");
  fs::remove(dir_ / "families.ckpt");
  config.resume = true;
  const auto resumed = run(d.sequences, config);
  EXPECT_EQ(resumed.phase_log,
            (std::vector<std::string>{"rr:resumed", "ccd:computed",
                                      "families:computed"}));
  expect_same_result(fresh, resumed);
}

TEST_F(CheckpointResumeTest, PartialCcdCheckpointResumesMidStream) {
  const auto d = make_data(64, 160);
  PipelineConfig config;
  config.checkpoint_dir = dir_.string();
  config.ccd_checkpoint_stride = 50;
  const auto fresh = run(d.sequences, config);

  // Simulate dying mid-CCD: the completed-phase checkpoints are gone but a
  // mid-stream partial survives. An uninterrupted run deletes its partial,
  // so reconstruct one the same way the pipeline writes it — capture an
  // early union–find snapshot from the serial CCD hook and store it under
  // the pipeline's partial tag with the fingerprint rr.ckpt carries.
  // Payload V3: fingerprint, elapsed-seconds, protocol master count, then
  // the phase data.
  util::CheckpointReader rr_reader =
      util::read_checkpoint(dir_ / "rr.ckpt", /*phase_tag=*/1,
                            /*max_payload_version=*/3);
  const std::uint64_t fingerprint = rr_reader.u64();

  pace::CcdProgress snapshot;
  bool captured = false;
  (void)pace::detect_components_serial(
      d.sequences, fresh.rr.survivors(), config.pace, nullptr, nullptr, 50,
      [&](const pace::CcdProgress& progress) {
        if (captured) return;
        snapshot = progress;
        captured = true;
      });
  ASSERT_TRUE(captured) << "stride 50 must produce a mid-stream snapshot";
  ASSERT_GT(snapshot.next_pair, 0u);

  util::CheckpointWriter partial;
  partial.u64(fingerprint);
  partial.f64(0.25);  // elapsed seconds before the simulated crash
  partial.u32(1);     // provenance: written by a flat (masters=1) run
  partial.u32_vec(snapshot.parents);
  partial.u64(snapshot.next_pair);
  util::write_checkpoint(dir_ / "ccd_partial.ckpt", /*phase_tag=*/2,
                         /*payload_version=*/3, partial);
  fs::remove(dir_ / "ccd.ckpt");
  fs::remove(dir_ / "families.ckpt");

  config.resume = true;
  const auto resumed = run(d.sequences, config);
  EXPECT_EQ(resumed.phase_log,
            (std::vector<std::string>{"rr:resumed", "ccd:resumed-partial",
                                      "families:computed"}));
  expect_same_result(fresh, resumed);
  // The finished phase replaces its partial again.
  EXPECT_FALSE(fs::exists(dir_ / "ccd_partial.ckpt"));
  // Resumed phase times are populated: RR reports its checkpointed duration
  // and the partial CCD resume folds the prior 0.25 s into its total.
  EXPECT_GT(resumed.rr_seconds, 0.0);
  EXPECT_GE(resumed.ccd_seconds, 0.25);
}

TEST_F(CheckpointResumeTest, DifferentInputFingerprintRefused) {
  const auto d = make_data(65);
  PipelineConfig config;
  config.checkpoint_dir = dir_.string();
  (void)run(d.sequences, config);

  const auto other = make_data(999);
  config.resume = true;
  EXPECT_THROW((void)run(other.sequences, config), util::CheckpointError);
}

TEST_F(CheckpointResumeTest, DifferentConfigFingerprintRefused) {
  const auto d = make_data(66);
  PipelineConfig config;
  config.checkpoint_dir = dir_.string();
  (void)run(d.sequences, config);

  config.resume = true;
  config.pace.psi += 1;  // result-relevant: changes the candidate pair set
  EXPECT_THROW((void)run(d.sequences, config), util::CheckpointError);
}

TEST_F(CheckpointResumeTest, CorruptedCheckpointRefusedNotTrusted) {
  const auto d = make_data(67);
  PipelineConfig config;
  config.checkpoint_dir = dir_.string();
  const auto fresh = run(d.sequences, config);

  // Flip one payload byte in the RR checkpoint; CRC must catch it and the
  // pipeline must recompute (a corrupt file is indistinguishable from a
  // half-written one, which is an expected crash artifact).
  {
    std::fstream f(dir_ / "rr.ckpt",
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(40);
    char byte = 0;
    f.seekg(40);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xFF);
    f.seekp(40);
    f.write(&byte, 1);
  }
  config.resume = true;
  const auto resumed = run(d.sequences, config);
  EXPECT_EQ(resumed.phase_log[0], "rr:computed");
  expect_same_result(fresh, resumed);
}

TEST_F(CheckpointResumeTest, DamagedPrimaryRollsBackToLastGoodGeneration) {
  const auto d = make_data(71);
  PipelineConfig config;
  config.checkpoint_dir = dir_.string();
  const auto fresh = run(d.sequences, config);
  // A second run rotates the first generation to rr.ckpt.1 (last good).
  (void)run(d.sequences, config);
  ASSERT_TRUE(fs::exists(util::checkpoint_backup_path(dir_ / "rr.ckpt")));

  {
    std::fstream f(dir_ / "rr.ckpt",
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(40);
    char byte = 0;
    f.seekg(40);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xFF);
    f.seekp(40);
    f.write(&byte, 1);
  }
  config.resume = true;
  const auto resumed = run(d.sequences, config);
  EXPECT_EQ(resumed.phase_log,
            (std::vector<std::string>{"rr:resumed-backup", "ccd:resumed",
                                      "families:resumed"}));
  expect_same_result(fresh, resumed);
  EXPECT_FALSE(resumed.recovery_log.empty());
  // The damaged primary is preserved for inspection, never resumed from.
  EXPECT_TRUE(fs::exists(util::checkpoint_quarantine_path(dir_ / "rr.ckpt")));
}

TEST_F(CheckpointResumeTest, TruncatedCheckpointIsQuarantinedAndRecomputed) {
  const auto d = make_data(72);
  PipelineConfig config;
  config.checkpoint_dir = dir_.string();
  const auto fresh = run(d.sequences, config);

  // Kill-mid-write artifact: only one generation exists and it is short.
  fs::resize_file(dir_ / "ccd.ckpt", 10);
  config.resume = true;
  const auto resumed = run(d.sequences, config);
  EXPECT_EQ(resumed.phase_log,
            (std::vector<std::string>{"rr:resumed", "ccd:computed",
                                      "families:resumed"}));
  expect_same_result(fresh, resumed);
  EXPECT_FALSE(resumed.recovery_log.empty());
  EXPECT_TRUE(fs::exists(util::checkpoint_quarantine_path(dir_ / "ccd.ckpt")));
  // The recomputed phase wrote a fresh, valid checkpoint back.
  EXPECT_TRUE(util::checkpoint_valid(dir_ / "ccd.ckpt", /*phase_tag=*/3,
                                     /*max_payload_version=*/3));
}

TEST_F(CheckpointResumeTest, DoubleFaultBothGenerationsDamagedRecomputes) {
  const auto d = make_data(73);
  PipelineConfig config;
  config.checkpoint_dir = dir_.string();
  const auto fresh = run(d.sequences, config);
  (void)run(d.sequences, config);  // rotates generation 1 to rr.ckpt.1
  ASSERT_TRUE(fs::exists(util::checkpoint_backup_path(dir_ / "rr.ckpt")));

  // Damage BOTH generations: corrupt the primary and truncate the
  // last-good backup. Rollback has nowhere to go — the phase must fall
  // all the way back to recomputation, never abort.
  {
    std::fstream f(dir_ / "rr.ckpt",
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(40);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xFF);
    f.seekp(40);
    f.write(&byte, 1);
  }
  fs::resize_file(util::checkpoint_backup_path(dir_ / "rr.ckpt"), 10);

  config.resume = true;
  const auto resumed = run(d.sequences, config);
  EXPECT_EQ(resumed.phase_log[0], "rr:computed");
  expect_same_result(fresh, resumed);
  EXPECT_FALSE(resumed.recovery_log.empty());
  // The damaged primary is still preserved for inspection.
  EXPECT_TRUE(fs::exists(util::checkpoint_quarantine_path(dir_ / "rr.ckpt")));
  // The recomputed phase wrote a fresh, valid generation back.
  EXPECT_TRUE(util::checkpoint_valid(dir_ / "rr.ckpt", /*phase_tag=*/1,
                                     /*max_payload_version=*/3));
}

TEST_F(CheckpointResumeTest, ResumeWithoutCheckpointsJustComputes) {
  const auto d = make_data(68);
  PipelineConfig config;
  config.checkpoint_dir = dir_.string();
  config.resume = true;  // nothing on disk yet: resume of a cold dir
  const auto r = run(d.sequences, config);
  EXPECT_EQ(r.phase_log,
            (std::vector<std::string>{"rr:computed", "ccd:computed",
                                      "families:computed"}));

  PipelineConfig plain;
  const auto golden = run(d.sequences, plain);
  expect_same_result(golden, r);
  EXPECT_TRUE(golden.phase_log.empty());  // checkpointing off: no log
}

TEST_F(CheckpointResumeTest, SimulatedPhasesCheckpointAndResumeToo) {
  const auto d = make_data(69, 100);
  PipelineConfig config;
  config.processors = 3;  // simulated RR + CCD
  config.checkpoint_dir = dir_.string();
  const auto fresh = run(d.sequences, config);

  config.resume = true;
  const auto resumed = run(d.sequences, config);
  EXPECT_EQ(resumed.phase_log,
            (std::vector<std::string>{"rr:resumed", "ccd:resumed",
                                      "families:resumed"}));
  expect_same_result(fresh, resumed);
}

}  // namespace
}  // namespace pclust::pipeline
