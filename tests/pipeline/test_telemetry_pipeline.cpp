// Pipeline-level telemetry guarantees: the stream observes the run without
// perturbing it (families bit-identical on/off), the virtual-domain records
// are a pure function of the communication pattern (byte-identical across
// runs), and a seeded straggler trips the deterministic virtual stall
// watchdog at a threshold a healthy run stays under.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <fstream>
#include <string>
#include <vector>

#include "pclust/mpsim/fault_plan.hpp"
#include "pclust/pipeline/pipeline.hpp"
#include "pclust/synth/generator.hpp"
#include "pclust/util/json.hpp"
#include "pclust/util/telemetry.hpp"

namespace pclust::pipeline {
namespace {

namespace telemetry = util::telemetry;

synth::Dataset telemetry_data(std::uint64_t seed) {
  synth::DatasetSpec spec;
  spec.seed = seed;
  spec.num_sequences = 300;
  spec.num_families = 6;
  spec.mean_length = 80;
  spec.redundant_fraction = 0.15;
  spec.noise_fraction = 0.1;
  spec.max_divergence = 0.18;
  return synth::generate(spec);
}

PipelineConfig parallel_config() {
  PipelineConfig config;
  config.processors = 4;       // simulated RR + CCD
  config.dsd_processors = 3;   // simulated BGG+DSD
  config.shingle.s1 = 3;
  config.shingle.c1 = 80;
  config.shingle.s2 = 2;
  config.shingle.tau = 0.4;
  return config;
}

telemetry::TelemetryConfig stream_config(const std::string& name) {
  telemetry::TelemetryConfig c;
  c.path = ::testing::TempDir() + name;
  c.command = "test_telemetry_pipeline";
  c.interval = 3600.0;       // park the wall sampler: virtual records only
  c.virtual_interval = 0.5;
  return c;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string strip_seq(std::string line) {
  const auto pos = line.find("\"seq\":");
  if (pos == std::string::npos) return line;
  auto end = pos + 6;
  while (end < line.size() &&
         std::isdigit(static_cast<unsigned char>(line[end]))) {
    ++end;
  }
  return line.substr(0, pos + 6) + "0" + line.substr(end);
}

/// All mode:"virtual" sample lines with seq zeroed.
std::vector<std::string> virtual_lines(const std::string& path) {
  std::vector<std::string> out;
  for (const std::string& line : read_lines(path)) {
    // phase-begin records carry mode:"virtual" too; samples only here.
    if (line.find("\"type\":\"sample\"") != std::string::npos &&
        line.find("\"mode\":\"virtual\"") != std::string::npos) {
      out.push_back(strip_seq(line));
    }
  }
  return out;
}

std::vector<std::vector<seq::SeqId>> member_lists(const PipelineResult& r) {
  std::vector<std::vector<seq::SeqId>> out;
  out.reserve(r.families.size());
  for (const auto& f : r.families) out.push_back(f.members);
  return out;
}

TEST(TelemetryPipeline, FamiliesBitIdenticalWithTelemetryOnOrOff) {
  const auto d = telemetry_data(61);
  const PipelineConfig config = parallel_config();

  const PipelineResult plain = run(d.sequences, config);

  telemetry::enable(stream_config("bitident.jsonl"));
  const PipelineResult observed = run(d.sequences, config);
  telemetry::disable();

  // Same families in the same order — observation changed nothing.
  EXPECT_EQ(member_lists(plain), member_lists(observed));
  EXPECT_EQ(plain.rr.removed, observed.rr.removed);
}

TEST(TelemetryPipeline, StreamCoversEveryPhaseWithProgress) {
  const auto d = telemetry_data(62);
  const telemetry::TelemetryConfig cfg = stream_config("phases.jsonl");
  telemetry::enable(cfg);
  const PipelineResult r = run(d.sequences, parallel_config());
  telemetry::disable();
  EXPECT_FALSE(r.families.empty());

  std::vector<std::string> begun, ended;
  std::uint64_t virtual_samples = 0;
  bool saw_rank_deltas = false;
  std::uint64_t last_seq = 0;
  bool first = true;
  const std::vector<std::string> lines = read_lines(cfg.path);
  ASSERT_FALSE(lines.empty());
  for (const std::string& line : lines) {
    const util::JsonValue v = util::parse_json(line);
    const std::uint64_t seq = v.at("seq").as_u64();
    if (!first) {
      EXPECT_EQ(seq, last_seq + 1);
    }
    first = false;
    last_seq = seq;
    const std::string& type = v.at("type").as_string();
    if (type == "phase") {
      const std::string& event = v.at("event").as_string();
      (event == "begin" ? begun : ended).push_back(v.at("phase").as_string());
      if (event == "end") {
        EXPECT_GT(v.at("progress").at("done").as_u64(), 0u)
            << v.at("phase").as_string();
      }
    }
    if (type == "sample" && v.at("mode").as_string() == "virtual") {
      ++virtual_samples;
      if (!v.at("ranks").array.empty()) saw_rank_deltas = true;
    }
  }
  const std::vector<std::string> expected = {"rr", "ccd", "bgg+dsd"};
  EXPECT_EQ(begun, expected);
  EXPECT_EQ(ended, expected);
  EXPECT_GT(virtual_samples, 0u);
  EXPECT_TRUE(saw_rank_deltas);
  EXPECT_EQ(util::parse_json(lines.front()).at("type").as_string(), "start");
  EXPECT_EQ(util::parse_json(lines.back()).at("type").as_string(), "end");
}

TEST(TelemetryPipeline, VirtualSamplesByteIdenticalAcrossRuns) {
  const auto d = telemetry_data(63);
  const PipelineConfig config = parallel_config();

  const telemetry::TelemetryConfig a = stream_config("det_a.jsonl");
  telemetry::enable(a);
  const PipelineResult ra = run(d.sequences, config);
  telemetry::disable();

  const telemetry::TelemetryConfig b = stream_config("det_b.jsonl");
  telemetry::enable(b);
  const PipelineResult rb = run(d.sequences, config);
  telemetry::disable();
  EXPECT_EQ(member_lists(ra), member_lists(rb));

  const auto first = virtual_lines(a.path);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, virtual_lines(b.path));
}

TEST(TelemetryPipeline, SeededStragglerTripsVirtualStallWatchdog) {
  const auto d = telemetry_data(64);
  PipelineConfig config = parallel_config();
  config.dsd_processors = 0;  // focus the stall check on RR + CCD

  // Calibrate the threshold against the healthy run's worst virtual
  // progress gap, exactly as DESIGN.md prescribes for --telemetry-stall.
  telemetry::TelemetryConfig healthy = stream_config("healthy.jsonl");
  double healthy_gap = 0.0;
  healthy.virtual_stall_seconds = 1e9;  // effectively off
  telemetry::enable(healthy);
  const PipelineResult baseline = run(d.sequences, config);
  telemetry::disable();
  ASSERT_FALSE(baseline.families.empty());
  for (const std::string& line : read_lines(healthy.path)) {
    const util::JsonValue v = util::parse_json(line);
    if (v.at("type").as_string() == "phase" &&
        v.at("event").as_string() == "end") {
      healthy_gap = std::max(
          healthy_gap, v.at("max_progress_gap").at("virtual").as_number());
    }
  }
  ASSERT_GT(healthy_gap, 0.0);

  // Rank 1 computes 50x slower; every round it gates stretches the
  // inter-progress gap far beyond the healthy ceiling.
  mpsim::FaultPlan plan;
  plan.straggler_factor = {1.0, 50.0};
  config.fault_plan = &plan;

  telemetry::TelemetryConfig slow = stream_config("straggler.jsonl");
  slow.virtual_stall_seconds = 2.0 * healthy_gap;
  telemetry::enable(slow);
  const PipelineResult degraded = run(d.sequences, config);
  const telemetry::TelemetryStatus status = telemetry::status();
  telemetry::disable();

  EXPECT_GE(status.stalls, 1u);
  bool saw_virtual_stall = false;
  for (const std::string& line : read_lines(slow.path)) {
    const util::JsonValue v = util::parse_json(line);
    if (v.at("type").as_string() == "warning" &&
        v.at("kind").as_string() == "stall" &&
        v.at("mode").as_string() == "virtual") {
      saw_virtual_stall = true;
      EXPECT_GT(v.at("stalled_seconds").as_number(),
                slow.virtual_stall_seconds);
    }
  }
  EXPECT_TRUE(saw_virtual_stall);

  // Stragglers slow the clock, not the answer.
  config.fault_plan = nullptr;
  const PipelineResult plain = run(d.sequences, config);
  EXPECT_EQ(member_lists(degraded), member_lists(plain));
}

}  // namespace
}  // namespace pclust::pipeline
