#include "pclust/pipeline/pipeline.hpp"

#include <gtest/gtest.h>

#include <set>

#include "pclust/quality/metrics.hpp"
#include "pclust/synth/presets.hpp"

namespace pclust::pipeline {
namespace {

synth::Dataset pipeline_data(std::uint64_t seed, std::uint32_t n = 400) {
  synth::DatasetSpec spec;
  spec.seed = seed;
  spec.num_sequences = n;
  spec.num_families = 6;
  spec.mean_length = 90;
  spec.redundant_fraction = 0.12;
  spec.noise_fraction = 0.20;
  spec.max_divergence = 0.18;
  return synth::generate(spec);
}

PipelineConfig quick_config() {
  PipelineConfig config;
  config.shingle.s1 = 3;
  config.shingle.c1 = 80;
  config.shingle.s2 = 2;
  config.shingle.c2 = 40;
  config.shingle.min_size = 5;
  config.shingle.tau = 0.4;
  return config;
}

TEST(Pipeline, EndToEndSerial) {
  const auto d = pipeline_data(81);
  const auto r = run(d.sequences, quick_config());
  EXPECT_EQ(r.input_sequences, d.sequences.size());
  EXPECT_LT(r.non_redundant_sequences, r.input_sequences);
  EXPECT_GT(r.components_min_size, 0u);
  EXPECT_GT(r.dense_subgraph_count, 0u);
  EXPECT_GT(r.sequences_in_subgraphs, 0u);
  EXPECT_GE(r.largest_subgraph, 5u);
}

TEST(Pipeline, FamiliesDisjointAndSorted) {
  const auto d = pipeline_data(82);
  const auto r = run(d.sequences, quick_config());
  std::set<seq::SeqId> seen;
  for (std::size_t i = 0; i < r.families.size(); ++i) {
    const auto& f = r.families[i];
    EXPECT_GE(f.members.size(), 5u);
    EXPECT_TRUE(std::is_sorted(f.members.begin(), f.members.end()));
    for (auto id : f.members) EXPECT_TRUE(seen.insert(id).second);
    if (i > 0) {
      EXPECT_GE(r.families[i - 1].members.size(), f.members.size());
    }
  }
}

TEST(Pipeline, FamiliesContainNoRedundantSequences) {
  const auto d = pipeline_data(83);
  const auto r = run(d.sequences, quick_config());
  for (const auto& f : r.families) {
    for (auto id : f.members) EXPECT_FALSE(r.rr.removed[id]);
  }
}

TEST(Pipeline, DensityHighOnDuplicateReduction) {
  // The paper reports 76-78 % mean density; our families should be dense
  // too (well above the 50 % mark).
  const auto d = pipeline_data(84);
  const auto r = run(d.sequences, quick_config());
  ASSERT_GT(r.dense_subgraph_count, 0u);
  EXPECT_GT(r.mean_density, 0.5);
  EXPECT_GT(r.mean_degree, 1.0);
  for (const auto& f : r.families) {
    EXPECT_GE(f.density, 0.0);
    EXPECT_LE(f.density, 1.0 + 1e-9);
  }
}

TEST(Pipeline, HighPrecisionAgainstGroundTruth) {
  const auto d = pipeline_data(85);
  const auto r = run(d.sequences, quick_config());
  const auto m = quality::compare_clusterings(r.family_clustering(),
                                              d.truth.benchmark_clusters());
  // Paper shape: high precision, lower sensitivity.
  EXPECT_GT(m.precision, 0.85);
  EXPECT_GT(m.sensitivity, 0.2);
  EXPECT_GE(m.precision, m.sensitivity);
}

TEST(Pipeline, MatchBasedReductionRuns) {
  PipelineConfig config = quick_config();
  config.reduction = bigraph::Reduction::kMatchBased;
  config.bm.w = 8;
  const auto d = pipeline_data(86);
  const auto r = run(d.sequences, config);
  EXPECT_GT(r.dense_subgraph_count, 0u);
  // Density is not computed for the match-based reduction.
  for (const auto& f : r.families) EXPECT_DOUBLE_EQ(f.density, 0.0);
}

TEST(Pipeline, ParallelMatchesSerialFamilies) {
  const auto d = pipeline_data(87, 250);
  PipelineConfig serial = quick_config();
  PipelineConfig parallel = quick_config();
  parallel.processors = 4;
  parallel.model = mpsim::MachineModel::free();
  const auto a = run(d.sequences, serial);
  const auto b = run(d.sequences, parallel);
  // CCD components are identical; RR removal sets can differ marginally in
  // chain cases, so compare the component and family COUNTS plus quality.
  EXPECT_EQ(a.components_min_size, b.components_min_size);
  EXPECT_NEAR(static_cast<double>(a.dense_subgraph_count),
              static_cast<double>(b.dense_subgraph_count), 2.0);
}

TEST(Pipeline, ParallelReportsSimulatedTimes) {
  const auto d = pipeline_data(88, 200);
  PipelineConfig config = quick_config();
  config.processors = 4;
  config.model = mpsim::MachineModel::bluegene_l();
  const auto r = run(d.sequences, config);
  EXPECT_GT(r.rr_seconds, 0.0);
  EXPECT_GT(r.ccd_seconds, 0.0);
  // RR dominates CCD (paper: > 90 % of run-time).
  EXPECT_GT(r.rr_seconds, r.ccd_seconds);
}

TEST(Pipeline, Table1RowRenders) {
  const auto d = pipeline_data(89, 200);
  const auto r = run(d.sequences, quick_config());
  const std::string row = table1_row(r);
  EXPECT_NE(row.find(" | "), std::string::npos);
  EXPECT_NE(row.find('%'), std::string::npos);
}

TEST(Pipeline, PresetSmokeTest) {
  const auto d = synth::generate(synth::paper_160k(0.003));
  const auto r = run(d.sequences, quick_config());
  EXPECT_GT(r.non_redundant_sequences, 0u);
}

TEST(Pipeline, DeterministicAcrossRuns) {
  const auto d = pipeline_data(90, 200);
  const auto a = run(d.sequences, quick_config());
  const auto b = run(d.sequences, quick_config());
  ASSERT_EQ(a.families.size(), b.families.size());
  for (std::size_t i = 0; i < a.families.size(); ++i) {
    EXPECT_EQ(a.families[i].members, b.families[i].members);
  }
}

}  // namespace
}  // namespace pclust::pipeline

namespace pclust::pipeline {
namespace {

TEST(Pipeline, LowComplexityMaskingRuns) {
  // Inject homopolymer junk into an otherwise clean sample; with masking
  // the junk cannot seed matches and the family structure is preserved.
  auto d = pipeline_data(91, 200);
  seq::SequenceSet set = d.sequences.subset([&] {
    std::vector<seq::SeqId> ids(d.sequences.size());
    for (seq::SeqId i = 0; i < d.sequences.size(); ++i) ids[i] = i;
    return ids;
  }());
  for (int i = 0; i < 10; ++i) {
    set.add("junk" + std::to_string(i), std::string(120, 'Q'));
  }
  PipelineConfig config = quick_config();
  config.mask_low_complexity = true;
  const auto r = run(set, config);
  EXPECT_GT(r.dense_subgraph_count, 0u);
  // The junk sequences must not form a family (they are all-X after
  // masking and share no exact matches).
  for (const auto& f : r.families) {
    for (auto id : f.members) {
      EXPECT_EQ(set.name(id).rfind("junk", 0), std::string::npos);
    }
  }
}

TEST(Pipeline, EagerGenerationSameClustering) {
  const auto d = pipeline_data(92, 200);
  PipelineConfig base = quick_config();
  base.processors = 4;
  base.model = mpsim::MachineModel::free();
  PipelineConfig eager = base;
  eager.pace.generation_batches = 8;
  const auto a = run(d.sequences, base);
  const auto b = run(d.sequences, eager);
  EXPECT_EQ(a.components_min_size, b.components_min_size);
  ASSERT_EQ(a.families.size(), b.families.size());
}

TEST(DerivePsi, PaperExample) {
  // §IV-A: 98 % similarity over 100 residues => a 33-residue exact match.
  EXPECT_EQ(pace::derive_psi(0.98, 100), 33u);
  EXPECT_EQ(pace::derive_psi(1.0, 50), 50u);
  EXPECT_EQ(pace::derive_psi(0.95, 100), 16u);
  EXPECT_EQ(pace::derive_psi(0.5, 10), 1u);
}

}  // namespace
}  // namespace pclust::pipeline
