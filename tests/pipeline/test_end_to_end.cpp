// File-level integration: the full user journey through the public API —
// generate -> FASTA on disk -> load -> pipeline -> clustering file ->
// compare against the ground-truth clustering file.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "pclust/pipeline/pipeline.hpp"
#include "pclust/quality/cluster_io.hpp"
#include "pclust/quality/metrics.hpp"
#include "pclust/seq/fasta.hpp"
#include "pclust/synth/generator.hpp"

namespace pclust::pipeline {
namespace {

class EndToEndFiles : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pclust_e2e_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const char* name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(EndToEndFiles, GenerateRunCompare) {
  // Generate and persist.
  synth::DatasetSpec spec;
  spec.seed = 2024;
  spec.num_sequences = 350;
  spec.num_families = 5;
  spec.mean_length = 90;
  spec.redundant_fraction = 0.1;
  spec.noise_fraction = 0.15;
  spec.max_divergence = 0.18;
  const synth::Dataset data = synth::generate(spec);
  seq::write_fasta_file(path("sample.fa"), data.sequences);
  quality::write_clustering_file(path("truth.tsv"),
                                 data.truth.benchmark_clusters(),
                                 data.sequences);

  // Reload from disk; identity must survive the round trip.
  seq::SequenceSet loaded;
  seq::read_fasta_file(path("sample.fa"), loaded);
  ASSERT_EQ(loaded.size(), data.sequences.size());
  for (seq::SeqId id = 0; id < loaded.size(); ++id) {
    ASSERT_EQ(loaded.ascii(id), data.sequences.ascii(id));
    ASSERT_EQ(loaded.name(id), data.sequences.name(id));
  }

  // Run the pipeline on the reloaded data and persist families.
  PipelineConfig config;
  config.shingle.s1 = 3;
  config.shingle.c1 = 80;
  config.shingle.s2 = 2;
  config.shingle.tau = 0.4;
  const PipelineResult result = run(loaded, config);
  ASSERT_GT(result.families.size(), 0u);
  quality::write_clustering_file(path("families.tsv"),
                                 result.family_clustering(), loaded);

  // Compare through the files, as `pclust compare` would.
  const auto test = quality::read_clustering_file(path("families.tsv"),
                                                  loaded);
  const auto benchmark =
      quality::read_clustering_file(path("truth.tsv"), loaded);
  const auto metrics = quality::compare_clusterings(test, benchmark);
  EXPECT_GT(metrics.common_sequences, 100u);
  EXPECT_GT(metrics.precision, 0.9);
  EXPECT_GT(metrics.correlation, 0.3);
}

TEST_F(EndToEndFiles, MaskedPipelineOnDiskData) {
  synth::DatasetSpec spec;
  spec.seed = 7;
  spec.num_sequences = 200;
  spec.num_families = 4;
  spec.mean_length = 80;
  const synth::Dataset data = synth::generate(spec);
  seq::write_fasta_file(path("sample.fa"), data.sequences);

  seq::SequenceSet loaded;
  seq::read_fasta_file(path("sample.fa"), loaded);
  PipelineConfig config;
  config.mask_low_complexity = true;
  config.shingle.s1 = 3;
  config.shingle.c1 = 80;
  const PipelineResult result = run(loaded, config);
  EXPECT_GT(result.dense_subgraph_count, 0u);
}

}  // namespace
}  // namespace pclust::pipeline
