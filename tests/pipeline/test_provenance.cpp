// Merge-provenance through the pipeline: the ledger covers every
// final-partition merge exactly once, its rendered bytes are invariant
// across execution shapes (threads, simulated ranks, master trees, healed
// fault plans) and across checkpoint resume (sidecar splicing, damaged
// sidecars, partial-CCD re-entry), and the run report's `provenance`
// section validates — including rejecting a tampered identity flag.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "pclust/mpsim/runtime.hpp"
#include "pclust/pace/components.hpp"
#include "pclust/pipeline/pipeline.hpp"
#include "pclust/pipeline/report.hpp"
#include "pclust/prov/explain.hpp"
#include "pclust/prov/ledger.hpp"
#include "pclust/synth/generator.hpp"
#include "pclust/util/checkpoint.hpp"
#include "pclust/util/json.hpp"

namespace pclust::pipeline {
namespace {

namespace fs = std::filesystem;

synth::Dataset make_data(std::uint64_t seed, std::uint32_t n = 150) {
  synth::DatasetSpec spec;
  spec.seed = seed;
  spec.num_sequences = n;
  spec.num_families = 4;
  spec.mean_length = 70;
  spec.redundant_fraction = 0.15;
  spec.noise_fraction = 0.15;
  return synth::generate(spec);
}

PipelineConfig base_config() {
  PipelineConfig config;
  config.provenance = true;
  return config;
}

TEST(PipelineProvenance, OffByDefaultLeavesLedgerEmpty) {
  const auto d = make_data(301);
  PipelineConfig config;
  const auto r = run(d.sequences, config);
  EXPECT_EQ(r.provenance.sequences, 0u);
  EXPECT_TRUE(r.provenance.edges.empty());
}

TEST(PipelineProvenance, LedgerCoversEveryMergeExactlyOnce) {
  const auto d = make_data(302);
  const auto r = run(d.sequences, base_config());

  const prov::Ledger& ledger = r.provenance;
  EXPECT_EQ(ledger.sequences, d.sequences.size());
  // The derivation-side identity: one evidence edge per union-find merge
  // that survives into the final partition, per phase.
  EXPECT_TRUE(ledger.counts.identity_holds());
  EXPECT_EQ(ledger.counts.rr_edges, r.rr.removed_count());
  EXPECT_EQ(ledger.counts.ccd_edges,
            r.rr.survivors().size() - r.ccd.components.size());
  EXPECT_GT(ledger.counts.dsd_edges, 0u);
  EXPECT_EQ(ledger.counts.total_edges(), ledger.edges.size());

  // Every endpoint lives in the input universe.
  for (const prov::Edge& e : ledger.edges) {
    EXPECT_LT(e.a, ledger.sequences);
    EXPECT_LT(e.b, ledger.sequences);
  }
  // "Exactly once" structurally: the RR + CCD edges must form a forest
  // (a cycle would double-cover a merge) — the constructor verifies.
  EXPECT_NO_THROW(prov::EvidenceForest{ledger});

  // Co-family members are connected in the evidence forest.
  const prov::EvidenceForest forest(ledger);
  for (const Family& family : r.families) {
    for (std::size_t i = 1; i < family.members.size(); ++i) {
      EXPECT_TRUE(forest.connected(family.members[0], family.members[i]));
    }
  }
}

TEST(PipelineProvenance, LedgerBytesInvariantAcrossExecutionShapes) {
  const auto d = make_data(303);
  const std::string golden =
      prov::render_ledger(run(d.sequences, base_config()).provenance);
  ASSERT_FALSE(golden.empty());

  {
    PipelineConfig config = base_config();  // real shared-memory threads
    config.threads = 4;
    EXPECT_EQ(prov::render_ledger(run(d.sequences, config).provenance),
              golden);
  }
  {
    PipelineConfig config = base_config();  // simulated ranks, flat master
    config.processors = 4;
    EXPECT_EQ(prov::render_ledger(run(d.sequences, config).provenance),
              golden);
  }
  {
    PipelineConfig config = base_config();  // hierarchical master tree
    config.processors = 6;
    config.pace.masters = 2;
    config.dsd_processors = 4;
    EXPECT_EQ(prov::render_ledger(run(d.sequences, config).provenance),
              golden);
  }
}

TEST(PipelineProvenance, LedgerBytesInvariantUnderHealedFaults) {
  const auto d = make_data(304);
  const std::string golden =
      prov::render_ledger(run(d.sequences, base_config()).provenance);

  mpsim::FaultPlan plan;
  plan.crashes.push_back({2, 0.5});
  plan.crashes.push_back({3, 1.0});
  PipelineConfig config = base_config();
  config.processors = 5;
  config.fault_plan = &plan;

  mpsim::FaultPlan dsd_plan;
  dsd_plan.crashes.push_back({1, 1.0});
  config.dsd_processors = 4;
  config.dsd_fault_plan = &dsd_plan;

  const auto healed = run(d.sequences, config);
  EXPECT_EQ(prov::render_ledger(healed.provenance), golden);
}

class ProvenanceResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pclust_prov_resume_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path dir_;
};

TEST_F(ProvenanceResumeTest, ResumeSplicesSidecarsByteIdentically) {
  const auto d = make_data(305);
  PipelineConfig config = base_config();
  config.checkpoint_dir = dir_.string();
  const std::string fresh =
      prov::render_ledger(run(d.sequences, config).provenance);

  // The fresh run leaves one provenance sidecar per phase.
  EXPECT_TRUE(fs::exists(dir_ / "rr.prov.jsonl"));
  EXPECT_TRUE(fs::exists(dir_ / "ccd.prov.jsonl"));
  EXPECT_TRUE(fs::exists(dir_ / "dsd.prov.jsonl"));

  config.resume = true;
  const auto resumed = run(d.sequences, config);
  EXPECT_EQ(resumed.phase_log,
            (std::vector<std::string>{"rr:resumed", "ccd:resumed",
                                      "families:resumed"}));
  EXPECT_EQ(prov::render_ledger(resumed.provenance), fresh);
}

TEST_F(ProvenanceResumeTest, DamagedSidecarIsReDerivedNotTrusted) {
  const auto d = make_data(306);
  PipelineConfig config = base_config();
  config.checkpoint_dir = dir_.string();
  const std::string fresh =
      prov::render_ledger(run(d.sequences, config).provenance);

  // Corrupt two sidecars differently: truncate one, garble the other.
  {
    std::ofstream out(dir_ / "rr.prov.jsonl",
                      std::ios::binary | std::ios::trunc);
    out << "{\"schema\":\"pclust-provenance-sidecar\"";  // cut mid-line
  }
  {
    std::ofstream out(dir_ / "ccd.prov.jsonl",
                      std::ios::binary | std::ios::app);
    out << "{\"phase\":\"ccd\"}\n";  // trailing junk edge
  }

  config.resume = true;
  const auto resumed = run(d.sequences, config);
  EXPECT_EQ(prov::render_ledger(resumed.provenance), fresh)
      << "a damaged sidecar must fall back to canonical re-derivation";
}

TEST_F(ProvenanceResumeTest, MissingSidecarsAreReDerived) {
  const auto d = make_data(307);
  PipelineConfig config = base_config();
  config.checkpoint_dir = dir_.string();
  const std::string fresh =
      prov::render_ledger(run(d.sequences, config).provenance);

  fs::remove(dir_ / "rr.prov.jsonl");
  fs::remove(dir_ / "ccd.prov.jsonl");
  fs::remove(dir_ / "dsd.prov.jsonl");

  config.resume = true;
  const auto resumed = run(d.sequences, config);
  EXPECT_EQ(prov::render_ledger(resumed.provenance), fresh);
}

TEST_F(ProvenanceResumeTest, CaptureOnResumeOfAProvenancelessRun) {
  // The original run never captured; a later resume asks for provenance.
  // Everything must be derived canonically from the checkpointed results.
  const auto d = make_data(308);
  PipelineConfig config;
  config.checkpoint_dir = dir_.string();
  (void)run(d.sequences, config);
  EXPECT_FALSE(fs::exists(dir_ / "rr.prov.jsonl"));

  const std::string golden =
      prov::render_ledger(run(d.sequences, base_config()).provenance);

  config.provenance = true;
  config.resume = true;
  const auto resumed = run(d.sequences, config);
  EXPECT_EQ(prov::render_ledger(resumed.provenance), golden);
}

TEST_F(ProvenanceResumeTest, PartialCcdResumeLedgerIdentical) {
  const auto d = make_data(309, 160);
  PipelineConfig config = base_config();
  config.checkpoint_dir = dir_.string();
  config.ccd_checkpoint_stride = 50;
  const auto fresh = run(d.sequences, config);
  const std::string golden = prov::render_ledger(fresh.provenance);

  // Reconstruct a mid-CCD partial the way the pipeline writes one (see
  // test_checkpoint_resume.cpp for the payload layout), then resume: the
  // spliced CCD provenance must come from canonical replay, since the
  // decision-time capture never saw the pre-watermark merges.
  util::CheckpointReader rr_reader =
      util::read_checkpoint(dir_ / "rr.ckpt", /*phase_tag=*/1,
                            /*max_payload_version=*/3);
  const std::uint64_t fingerprint = rr_reader.u64();

  pace::CcdProgress snapshot;
  bool captured = false;
  (void)pace::detect_components_serial(
      d.sequences, fresh.rr.survivors(), config.pace, nullptr, nullptr, 50,
      [&](const pace::CcdProgress& progress) {
        if (captured) return;
        snapshot = progress;
        captured = true;
      });
  ASSERT_TRUE(captured);

  util::CheckpointWriter partial;
  partial.u64(fingerprint);
  partial.f64(0.25);
  partial.u32(1);
  partial.u32_vec(snapshot.parents);
  partial.u64(snapshot.next_pair);
  util::write_checkpoint(dir_ / "ccd_partial.ckpt", /*phase_tag=*/2,
                         /*payload_version=*/3, partial);
  fs::remove(dir_ / "ccd.ckpt");
  fs::remove(dir_ / "ccd.prov.jsonl");
  fs::remove(dir_ / "families.ckpt");
  fs::remove(dir_ / "dsd.prov.jsonl");

  config.resume = true;
  const auto resumed = run(d.sequences, config);
  EXPECT_EQ(resumed.phase_log,
            (std::vector<std::string>{"rr:resumed", "ccd:resumed-partial",
                                      "families:computed"}));
  EXPECT_EQ(prov::render_ledger(resumed.provenance), golden);
}

TEST(PipelineProvenanceReport, SectionRendersAndValidates) {
  const auto d = make_data(310);
  const PipelineConfig config = base_config();
  const auto r = run(d.sequences, config);
  const std::string doc =
      render_report(r, config, {"families", "synthetic", "prov.jsonl"});
  const util::JsonValue report = util::parse_json(doc);

  std::string error;
  EXPECT_TRUE(validate_report(report, &error)) << error;

  const util::JsonValue& prov_section = report.at("provenance");
  EXPECT_EQ(prov_section.at("path").as_string(), "prov.jsonl");
  EXPECT_EQ(prov_section.at("sequences").as_u64(), d.sequences.size());
  EXPECT_EQ(prov_section.at("edges").at("total").as_u64(),
            r.provenance.counts.total_edges());
  EXPECT_EQ(prov_section.at("merges").at("rr").as_u64(),
            r.provenance.counts.rr_merges);
  EXPECT_TRUE(prov_section.at("complete").bool_value);
}

TEST(PipelineProvenanceReport, TamperedIdentityFailsValidation) {
  const auto d = make_data(311);
  const PipelineConfig config = base_config();
  const auto r = run(d.sequences, config);
  std::string doc = render_report(r, config, {"families", "synthetic", ""});

  // An auditor flipping `complete` (or an incomplete capture) must fail
  // validation — the report enforces the merge identity, not just schema.
  const std::string::size_type at = doc.find("\"complete\":true");
  ASSERT_NE(at, std::string::npos);
  doc.replace(at, 15, "\"complete\":false");
  std::string error;
  EXPECT_FALSE(validate_report(util::parse_json(doc), &error));
  EXPECT_NE(error.find("complete"), std::string::npos) << error;
}

TEST(PipelineProvenanceReport, EdgeMergeMismatchFailsValidation) {
  const auto d = make_data(312);
  const PipelineConfig config = base_config();
  const auto r = run(d.sequences, config);
  std::string doc = render_report(r, config, {"families", "synthetic", ""});

  // Desync one per-phase edge count from its merge count via text surgery
  // on the rendered document (the numbers appear in the provenance
  // section's edges object first).
  char needle[64];
  std::snprintf(needle, sizeof needle, "\"rr\":%llu",
                static_cast<unsigned long long>(r.provenance.counts.rr_edges));
  const std::string::size_type prov_at = doc.find("\"provenance\"");
  ASSERT_NE(prov_at, std::string::npos);
  const std::string::size_type at = doc.find(needle, prov_at);
  ASSERT_NE(at, std::string::npos);
  char bumped[64];
  std::snprintf(bumped, sizeof bumped, "\"rr\":%llu",
                static_cast<unsigned long long>(
                    r.provenance.counts.rr_edges + 1));
  doc.replace(at, std::string(needle).size(), bumped);
  std::string error;
  EXPECT_FALSE(validate_report(util::parse_json(doc), &error));
}

}  // namespace
}  // namespace pclust::pipeline
