// Structured run reports: schema validity, the alignment-work identity
// (attempted + skipped_by_cluster_filter == candidate_pairs) on serial AND
// faulted simulated runs, resume provenance, and trace emission around a
// real pipeline run.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "pclust/mpsim/fault_plan.hpp"
#include "pclust/pipeline/pipeline.hpp"
#include "pclust/pipeline/report.hpp"
#include "pclust/synth/generator.hpp"
#include "pclust/util/json.hpp"
#include "pclust/util/metrics.hpp"
#include "pclust/util/trace.hpp"

namespace pclust::pipeline {
namespace {

synth::Dataset make_data(std::uint64_t seed, std::uint32_t n = 140) {
  synth::DatasetSpec spec;
  spec.seed = seed;
  spec.num_sequences = n;
  spec.num_families = 4;
  spec.mean_length = 70;
  spec.redundant_fraction = 0.15;
  spec.noise_fraction = 0.15;
  return synth::generate(spec);
}

util::JsonValue report_for(const PipelineResult& result,
                           const PipelineConfig& config) {
  const std::string doc =
      render_report(result, config, {"families", "synthetic"});
  return util::parse_json(doc);
}

void expect_identity(const util::JsonValue& obj, const char* where) {
  const std::uint64_t candidates = obj.at("candidate_pairs").as_u64();
  const std::uint64_t attempted = obj.at("attempted").as_u64();
  const std::uint64_t skipped =
      obj.at("skipped_by_cluster_filter").as_u64();
  EXPECT_EQ(attempted + skipped, candidates) << where;
  const double ratio = obj.at("skip_ratio").as_number();
  EXPECT_GE(ratio, 0.0) << where;
  EXPECT_LE(ratio, 1.0) << where;
}

TEST(RunReport, SerialRunSatisfiesIdentityAndValidates) {
  const auto d = make_data(81);
  PipelineConfig config;
  util::metrics().reset();
  const auto result = run(d.sequences, config);
  const util::JsonValue report = report_for(result, config);

  std::string error;
  EXPECT_TRUE(validate_report(report, &error)) << error;

  ASSERT_EQ(report.at("phases").array.size(), 3u);
  expect_identity(report.at("phases").array[0], "rr");
  expect_identity(report.at("phases").array[1], "ccd");
  expect_identity(report.at("alignment"), "total");
  EXPECT_GT(report.at("alignment").at("candidate_pairs").as_u64(), 0u);
  // The cluster filter must actually skip work on this workload.
  EXPECT_GT(
      report.at("phases").array[1].at("skipped_by_cluster_filter").as_u64(),
      0u);
  EXPECT_FALSE(report.at("config").at("faults_injected").bool_value);
  EXPECT_TRUE(report.at("faults").at("crashed_ranks").array.empty());
  // The registry snapshot inside the report saw the same alignment totals.
  EXPECT_EQ(report.at("metrics")
                .at("counters")
                .at("pace.alignments_attempted")
                .as_u64(),
            report.at("alignment").at("attempted").as_u64());
}

TEST(RunReport, FaultedHealedParallelRunSatisfiesIdentity) {
  const auto d = make_data(82, 160);
  mpsim::FaultPlan plan;
  plan.crashes.push_back({2, 0.001});
  PipelineConfig config;
  config.processors = 4;
  config.threads = 4;
  config.fault_plan = &plan;

  util::metrics().reset();
  const auto result = run(d.sequences, config);
  const util::JsonValue report = report_for(result, config);

  std::string error;
  EXPECT_TRUE(validate_report(report, &error)) << error;
  expect_identity(report.at("phases").array[0], "rr");
  expect_identity(report.at("phases").array[1], "ccd");
  expect_identity(report.at("alignment"), "total");
  EXPECT_TRUE(report.at("config").at("faults_injected").bool_value);
  // Rank 2 crashed in both simulated phases and the engine healed.
  EXPECT_EQ(report.at("faults").at("crashed_ranks").array.size(), 2u);
  EXPECT_GT(report.at("faults").at("workers_failed").as_u64(), 0u);
  EXPECT_GT(report.at("faults").at("streams_adopted").as_u64(), 0u);
}

TEST(RunReport, ResumeProvenanceIsRecorded) {
  const auto d = make_data(83);
  const auto dir = std::filesystem::temp_directory_path() /
                   "pclust_report_resume_test";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  PipelineConfig config;
  config.checkpoint_dir = dir.string();
  util::metrics().reset();
  (void)run(d.sequences, config);

  config.resume = true;
  util::metrics().reset();
  const auto resumed = run(d.sequences, config);
  const util::JsonValue report = report_for(resumed, config);
  std::string error;
  EXPECT_TRUE(validate_report(report, &error)) << error;
  EXPECT_EQ(report.at("phases").array[0].at("source").as_string(), "resumed");
  EXPECT_TRUE(report.at("resume").at("requested").bool_value);
  EXPECT_EQ(report.at("resume").at("phase_log").array.size(), 3u);
  // Resumed phases still report their original (checkpointed) durations.
  EXPECT_GT(report.at("phases").array[0].at("seconds").as_number(), 0.0);
  // A resumed phase did no alignment work; the identity still holds (0+0=0).
  expect_identity(report.at("phases").array[0], "rr resumed");
  std::filesystem::remove_all(dir, ec);
}

TEST(RunReport, MalformedReportsAreRejected) {
  std::string error;
  EXPECT_FALSE(
      validate_report(util::parse_json(R"({"schema":"nope"})"), &error));
  EXPECT_FALSE(error.empty());
  // Break the identity in an otherwise plausible phase entry.
  const char* broken = R"({
    "schema":"pclust-run-report","version":1,"command":"families",
    "input":{"path":"x"},"config":{"processors":0},
    "phases":[{"name":"ccd","seconds":1.0,"source":"computed",
               "candidate_pairs":10,"attempted":3,
               "skipped_by_cluster_filter":5,"skip_ratio":0.5}],
    "alignment":{"candidate_pairs":10,"attempted":5,
                 "skipped_by_cluster_filter":5,"skip_ratio":0.5},
    "faults":{"crashed_ranks":[]},"resume":{"phase_log":[]},
    "table1":{"input_sequences":1},
    "metrics":{"counters":{},"gauges":{},"histograms":{}}})";
  EXPECT_FALSE(validate_report(util::parse_json(broken), &error));
  EXPECT_NE(error.find("ccd"), std::string::npos);
}

TEST(RunReport, TraceAroundRunIsValidAndHasPhaseSpans) {
  const auto d = make_data(84, 100);
  PipelineConfig config;
  config.processors = 3;  // simulated RR/CCD -> sim process timelines
  util::trace::enable();
  util::metrics().reset();
  (void)run(d.sequences, config);
  const util::JsonValue doc = util::parse_json(util::trace::render_json());
  util::trace::disable();

  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  bool saw_rr_process = false, saw_rank_span = false, saw_wall_span = false;
  for (const util::JsonValue& e : doc.at("traceEvents").array) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "M" && e.at("name").as_string() == "process_name" &&
        e.at("args").at("name").as_string() == "sim:rr") {
      saw_rr_process = true;
    }
    if (ph == "X" && e.at("cat").as_string() == "sim") saw_rank_span = true;
    if (ph == "X" && e.at("name").as_string() == "rr" &&
        e.at("pid").as_u64() == 0u) {
      saw_wall_span = true;
    }
  }
  EXPECT_TRUE(saw_rr_process);
  EXPECT_TRUE(saw_rank_span);
  EXPECT_TRUE(saw_wall_span);
}

}  // namespace
}  // namespace pclust::pipeline
