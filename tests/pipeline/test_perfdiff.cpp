#include "pclust/pipeline/perfdiff.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "pclust/util/json.hpp"

namespace pclust::pipeline {
namespace {

util::JsonValue kernels_doc(double score_ns, double speedup) {
  return util::parse_json(R"({"kernels": [
    {"name": "local_align_full", "ns_per_cell": 10.0, "pairs_per_sec": 2000.0},
    {"name": "local_align_score_only", "ns_per_cell": )" +
                          std::to_string(score_ns) +
                          R"(, "pairs_per_sec": 4000.0,
     "speedup_vs_full": )" +
                          std::to_string(speedup) + R"(}
  ]})");
}

util::JsonValue report_doc(double rr_seconds, double skip_ratio,
                           double rss_peak) {
  return util::parse_json(R"({
    "schema": "pclust-run-report",
    "phases": [
      {"name": "rr", "seconds": )" +
                          std::to_string(rr_seconds) + R"(},
      {"name": "blip", "seconds": 0.001}
    ],
    "alignment": {"skip_ratio": )" +
                          std::to_string(skip_ratio) + R"(},
    "memory": {
      "rss_peak_bytes": )" +
                          std::to_string(rss_peak) + R"(,
      "structures": {
        "suffix_index": {"peak_total_bytes": 1000000}
      }
    }
  })");
}

bool metric_regressed(const PerfDiffResult& r, const std::string& metric) {
  for (const PerfFinding& f : r.findings) {
    if (f.metric == metric) return f.regression;
  }
  ADD_FAILURE() << "metric not found: " << metric;
  return false;
}

TEST(PerfDiff, SelfComparisonPasses) {
  const util::JsonValue doc = kernels_doc(5.0, 2.0);
  const PerfDiffResult r = perf_diff(doc, doc);
  EXPECT_FALSE(r.has_regression());
  EXPECT_FALSE(r.findings.empty());

  const util::JsonValue rep = report_doc(10.0, 0.999, 1e9);
  EXPECT_FALSE(perf_diff(rep, rep).has_regression());
}

TEST(PerfDiff, TwoXKernelSlowdownFails) {
  const PerfDiffResult r =
      perf_diff(kernels_doc(5.0, 2.0), kernels_doc(10.0, 2.0));
  EXPECT_TRUE(r.has_regression());
  EXPECT_TRUE(
      metric_regressed(r, "kernel.local_align_score_only.ns_per_cell"));
}

TEST(PerfDiff, WithinToleranceIsNotARegression) {
  PerfDiffOptions opts;
  opts.tolerance = 0.15;
  EXPECT_FALSE(perf_diff(kernels_doc(5.0, 2.0), kernels_doc(5.5, 2.0), opts)
                   .has_regression());
  // The same +10 % trips a tighter gate.
  opts.tolerance = 0.05;
  EXPECT_TRUE(perf_diff(kernels_doc(5.0, 2.0), kernels_doc(5.5, 2.0), opts)
                  .has_regression());
}

TEST(PerfDiff, ScoreOnlyKernelMustBeatFullMatrixAbsolutely) {
  // Even when the BASELINE itself recorded the anomaly, a candidate with
  // speedup_vs_full < 1.0 must fail: the absolute gate is candidate-side.
  const PerfDiffResult r =
      perf_diff(kernels_doc(20.0, 0.89), kernels_doc(20.0, 0.89));
  EXPECT_TRUE(r.has_regression());
  EXPECT_TRUE(metric_regressed(
      r, "kernel.local_align_score_only.speedup_vs_full"));
  // At or above 1.0 the gate is satisfied.
  EXPECT_FALSE(perf_diff(kernels_doc(9.0, 1.0), kernels_doc(9.0, 1.0))
                   .has_regression());
}

TEST(PerfDiff, ReportPhaseSlowdownAndMemoryGrowthFail) {
  const util::JsonValue base = report_doc(10.0, 0.999, 1e9);
  EXPECT_TRUE(metric_regressed(
      perf_diff(base, report_doc(20.0, 0.999, 1e9)), "phase.rr.seconds"));
  EXPECT_TRUE(metric_regressed(perf_diff(base, report_doc(10.0, 0.999, 3e9)),
                               "memory.rss_peak_bytes"));
  // Skip ratio falling from 99.9 % to 99 % means 10x the aligned work.
  EXPECT_TRUE(
      metric_regressed(perf_diff(base, report_doc(10.0, 0.99, 1e9)),
                       "alignment.attempted_work_ratio"));
}

TEST(PerfDiff, SubThresholdPhasesNeverGate) {
  // "blip" is 1 ms in the baseline: a 100x swing is timer noise, reported
  // but not a regression.
  const util::JsonValue base = report_doc(10.0, 0.999, 1e9);
  const util::JsonValue noisy = util::parse_json(R"({
    "schema": "pclust-run-report",
    "phases": [
      {"name": "rr", "seconds": 10.0},
      {"name": "blip", "seconds": 0.1}
    ],
    "alignment": {"skip_ratio": 0.999},
    "memory": {"rss_peak_bytes": 1e9,
               "structures": {"suffix_index": {"peak_total_bytes": 1000000}}}
  })");
  const PerfDiffResult r = perf_diff(base, noisy);
  EXPECT_FALSE(metric_regressed(r, "phase.blip.seconds"));
  EXPECT_FALSE(r.has_regression());
}

TEST(PerfDiff, MismatchedDocumentKindsThrow) {
  const util::JsonValue kernels = kernels_doc(5.0, 2.0);
  const util::JsonValue report = report_doc(10.0, 0.999, 1e9);
  EXPECT_THROW(perf_diff(kernels, report), std::invalid_argument);
  EXPECT_THROW(perf_diff(report, kernels), std::invalid_argument);
  const util::JsonValue junk = util::parse_json(R"({"hello": 1})");
  EXPECT_THROW(perf_diff(junk, junk), std::invalid_argument);
}

TEST(PerfDiff, RatioNormalizationMakesWorseAlwaysAboveOne) {
  // pairs_per_sec is lower-is-worse: halving it must produce ratio 2.
  const util::JsonValue base = util::parse_json(
      R"({"kernels": [{"name": "k", "pairs_per_sec": 4000.0}]})");
  const util::JsonValue cand = util::parse_json(
      R"({"kernels": [{"name": "k", "pairs_per_sec": 2000.0}]})");
  const PerfDiffResult r = perf_diff(base, cand);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_DOUBLE_EQ(r.findings[0].ratio, 2.0);
  EXPECT_TRUE(r.findings[0].regression);
}

util::JsonValue hierarchy_doc(double flat_seconds, double tree_seconds,
                              bool tree_saturated) {
  const double speedup = flat_seconds / tree_seconds;
  return util::parse_json(R"({
    "schema": "pclust-hierarchy-bench",
    "rows": [
      {"p": 1024, "masters": 1, "ccd_virtual_seconds": )" +
                          std::to_string(flat_seconds) +
                          R"(, "speedup_vs_flat": 1.0, "saturated": true},
      {"p": 1024, "masters": 4, "ccd_virtual_seconds": )" +
                          std::to_string(tree_seconds) +
                          R"(, "speedup_vs_flat": )" +
                          std::to_string(speedup) + R"(,
       "saturated": )" + (tree_saturated ? "true" : "false") + R"(}
    ]})");
}

TEST(PerfDiff, HierarchySelfComparisonPasses) {
  const util::JsonValue doc = hierarchy_doc(2.4, 1.1, false);
  const PerfDiffResult r = perf_diff(doc, doc);
  EXPECT_FALSE(r.has_regression());
}

TEST(PerfDiff, HierarchySpeedupRegressionFails) {
  // The tree's virtual makespan doubling (speedup 2.2x -> 1.0x) must gate.
  const PerfDiffResult r =
      perf_diff(hierarchy_doc(2.4, 1.1, false), hierarchy_doc(2.4, 2.3, false));
  EXPECT_TRUE(r.has_regression());
  EXPECT_TRUE(metric_regressed(r, "hierarchy.p1024.m4.ccd_virtual_seconds"));
  EXPECT_TRUE(metric_regressed(r, "hierarchy.p1024.m4.speedup_vs_flat"));
}

TEST(PerfDiff, HierarchyTreeSlowerThanFlatFailsAbsolutely) {
  // speedup_vs_flat < 1 is rejected even with no matching baseline row:
  // the sub-master tier must be a pure optimization.
  const util::JsonValue cand = hierarchy_doc(2.4, 2.6, false);
  const PerfDiffResult r = perf_diff(hierarchy_doc(9.9, 9.8, false), cand);
  EXPECT_TRUE(metric_regressed(r, "hierarchy.p1024.m4.speedup_vs_flat_floor"));
}

TEST(PerfDiff, HierarchySaturatedWideTreeFails) {
  const PerfDiffResult r =
      perf_diff(hierarchy_doc(2.4, 1.1, false), hierarchy_doc(2.4, 1.1, true));
  EXPECT_TRUE(metric_regressed(r, "hierarchy.p1024.m4.saturation_clear"));
}

TEST(PerfDiff, HierarchyAndReportDocsDoNotMix) {
  EXPECT_THROW(
      perf_diff(hierarchy_doc(2.4, 1.1, false), report_doc(10.0, 0.999, 1e9)),
      std::invalid_argument);
}

TEST(PerfDiff, RenderListsEveryFinding) {
  const PerfDiffResult r =
      perf_diff(kernels_doc(5.0, 2.0), kernels_doc(10.0, 2.0));
  const std::string text = render_perf_diff(r);
  EXPECT_NE(text.find("kernel.local_align_score_only.ns_per_cell"),
            std::string::npos);
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
}

}  // namespace
}  // namespace pclust::pipeline
