// --mem-budget at the pipeline level: a generous budget changes nothing,
// a squeezed budget degrades along output-invariant levers only (same
// families, populated degradation log), and a hopeless budget exits
// structured at a phase boundary with flushed checkpoints so --resume
// with a larger budget completes bit-identically.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "pclust/pipeline/pipeline.hpp"
#include "pclust/synth/generator.hpp"
#include "pclust/util/memgov.hpp"
#include "pclust/util/metrics.hpp"

namespace pclust::pipeline {
namespace {

namespace fs = std::filesystem;

synth::Dataset make_data(std::uint64_t seed, std::uint32_t n = 150) {
  synth::DatasetSpec spec;
  spec.seed = seed;
  spec.num_sequences = n;
  spec.num_families = 5;
  spec.mean_length = 70;
  spec.redundant_fraction = 0.15;
  spec.noise_fraction = 0.15;
  return synth::generate(spec);
}

void expect_same_families(const PipelineResult& a, const PipelineResult& b) {
  ASSERT_EQ(a.families.size(), b.families.size());
  for (std::size_t i = 0; i < a.families.size(); ++i) {
    EXPECT_EQ(a.families[i].members, b.families[i].members) << "family " << i;
    EXPECT_DOUBLE_EQ(a.families[i].mean_degree, b.families[i].mean_degree);
    EXPECT_DOUBLE_EQ(a.families[i].density, b.families[i].density);
  }
}

TEST(ResourcePipelineTest, GenerousBudgetChangesNothing) {
  const auto d = make_data(81);
  PipelineConfig plain;
  const auto golden = run(d.sequences, plain);

  PipelineConfig budgeted = plain;
  budgeted.mem_budget_bytes = 8ull << 30;  // far above any test peak
  const auto result = run(d.sequences, budgeted);
  expect_same_families(golden, result);
  EXPECT_TRUE(util::governor().degradation_log().empty());
}

TEST(ResourcePipelineTest, SqueezedBudgetDegradesBitIdentically) {
  const auto d = make_data(82);
  PipelineConfig plain;
  const auto golden = run(d.sequences, plain);
  const std::uint64_t peak = util::governor().high_water();
  ASSERT_GT(peak, 0u);

  PipelineConfig budgeted = plain;
  budgeted.mem_budget_bytes =
      static_cast<std::uint64_t>(static_cast<double>(peak) * 0.6);
  const auto result = run(d.sequences, budgeted);
  expect_same_families(golden, result);
  const auto events = util::governor().degradation_log();
  EXPECT_FALSE(events.empty())
      << "a run squeezed to 60% of its peak must take at least one lever";
  for (const auto& e : events) {
    EXPECT_FALSE(e.phase.empty());
    EXPECT_FALSE(e.action.empty());
  }
}

TEST(ResourcePipelineTest, HopelessBudgetExitsStructuredAndResumes) {
  const auto d = make_data(83);
  PipelineConfig plain;
  const auto golden = run(d.sequences, plain);

  const fs::path dir =
      fs::temp_directory_path() / "pclust_resource_test_resume";
  std::error_code ec;
  fs::remove_all(dir, ec);

  PipelineConfig tiny = plain;
  tiny.checkpoint_dir = dir.string();
  tiny.mem_budget_bytes = 16 << 10;  // 16 KiB: no lever can save this
  EXPECT_THROW((void)run(d.sequences, tiny), util::MemoryBudgetExceeded);
  // The boundary that threw flushed its checkpoint first.
  EXPECT_TRUE(fs::exists(dir / "rr.ckpt"));

  // The operator re-runs with --resume and a workable budget; checkpoints
  // are fingerprint-compatible (the budget is a tuning knob, not part of
  // the result) and the finished run matches the unconstrained one.
  PipelineConfig retry = plain;
  retry.checkpoint_dir = dir.string();
  retry.resume = true;
  const auto resumed = run(d.sequences, retry);
  EXPECT_EQ(resumed.phase_log[0], "rr:resumed");
  expect_same_families(golden, resumed);
  fs::remove_all(dir, ec);
}

TEST(ResourcePipelineTest, AccountingRunsEvenUnbudgeted) {
  const auto d = make_data(84);
  PipelineConfig plain;
  (void)run(d.sequences, plain);
  // The capacity ledger always runs so a golden run's peak can calibrate
  // a later budgeted run (chaos class 8).
  EXPECT_GT(util::governor().high_water(), 0u);
  EXPECT_GT(util::metrics().gauge("memgov.high_water_bytes").max(), 0u);
}

}  // namespace
}  // namespace pclust::pipeline
