#include "pclust/pipeline/analysis.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pclust/util/json.hpp"

namespace pclust::pipeline {
namespace {

RankSample sample(double busy, double comm, double idle) {
  RankSample s;
  s.busy = busy;
  s.comm = comm;
  s.idle = idle;
  s.total = busy + comm + idle;
  return s;
}

TEST(Analysis, EmptyPhaseYieldsZeroedResult) {
  const PhaseAnalysis p = analyze_phase("rr", {});
  EXPECT_EQ(p.ranks, 0);
  EXPECT_EQ(p.makespan, 0.0);
  EXPECT_EQ(p.critical_rank, -1);
  EXPECT_TRUE(p.stragglers.empty());
}

TEST(Analysis, BalancedWorkersHaveUnitImbalance) {
  // Master (rank 0) + three identical workers.
  const std::vector<RankSample> ranks = {
      sample(1.0, 0.5, 8.5), sample(8.0, 1.0, 1.0), sample(8.0, 1.0, 1.0),
      sample(8.0, 1.0, 1.0)};
  const PhaseAnalysis p = analyze_phase("ccd", ranks);
  EXPECT_EQ(p.ranks, 4);
  EXPECT_DOUBLE_EQ(p.makespan, 10.0);
  EXPECT_DOUBLE_EQ(p.imbalance_factor, 1.0);
  // Critical path: max busy + comm = 9.0, attained first by rank 1.
  EXPECT_DOUBLE_EQ(p.critical_path_seconds, 9.0);
  EXPECT_EQ(p.critical_rank, 1);
  // sum(busy) / (ranks * makespan) = 25 / 40.
  EXPECT_DOUBLE_EQ(p.parallel_efficiency, 25.0 / 40.0);
  EXPECT_EQ(p.verdict, "balanced");
}

TEST(Analysis, ImbalanceIsMaxOverMeanWorkerBusy) {
  // Workers busy 9, 3, 3 -> mean 5, max 9 -> factor 1.8. The master's busy
  // time must NOT enter the statistic.
  const std::vector<RankSample> ranks = {
      sample(100.0, 0.0, 0.0),  // master deliberately extreme
      sample(9.0, 0.0, 1.0), sample(3.0, 0.0, 7.0), sample(3.0, 0.0, 7.0)};
  const PhaseAnalysis p = analyze_phase("rr", ranks);
  EXPECT_DOUBLE_EQ(p.imbalance_factor, 9.0 / 5.0);
  // Stragglers ordered by busy descending: master first, then rank 1.
  ASSERT_GE(p.stragglers.size(), 2u);
  EXPECT_EQ(p.stragglers[0], 0);
  EXPECT_EQ(p.stragglers[1], 1);

  // With a quiet master the same worker skew earns the imbalance verdict
  // (the saturated-master diagnosis above would otherwise take precedence).
  const std::vector<RankSample> quiet_master = {
      sample(1.0, 0.0, 9.0), sample(9.0, 0.0, 1.0), sample(3.0, 0.0, 7.0),
      sample(3.0, 0.0, 7.0)};
  const PhaseAnalysis q = analyze_phase("rr", quiet_master);
  EXPECT_DOUBLE_EQ(q.imbalance_factor, 9.0 / 5.0);
  EXPECT_NE(q.verdict.find("imbalanced"), std::string::npos);
}

TEST(Analysis, SingleRankUsesItselfAsWorker) {
  const PhaseAnalysis p = analyze_phase("dsd", {sample(4.0, 1.0, 0.0)});
  EXPECT_DOUBLE_EQ(p.imbalance_factor, 1.0);
  EXPECT_FALSE(p.master_saturated);  // no workers to starve
}

TEST(Analysis, MasterSaturationRequiresBusyMasterAndIdleWorkers) {
  AnalysisOptions opts;
  opts.saturation_busy = 0.6;
  opts.saturation_idle = 0.3;
  // Master 90 % busy, workers 50 % idle: the CCD bottleneck shape.
  const std::vector<RankSample> saturated = {
      sample(9.0, 0.5, 0.5), sample(4.0, 1.0, 5.0), sample(4.0, 1.0, 5.0)};
  const PhaseAnalysis p = analyze_phase("ccd", saturated, opts);
  EXPECT_DOUBLE_EQ(p.master_busy_fraction, 0.9);
  EXPECT_DOUBLE_EQ(p.worker_idle_fraction, 0.5);
  EXPECT_TRUE(p.master_saturated);
  EXPECT_NE(p.verdict.find("master-saturated"), std::string::npos);

  // Same master, but workers are kept fed: not saturated.
  const std::vector<RankSample> fed = {
      sample(9.0, 0.5, 0.5), sample(8.0, 1.0, 1.0), sample(8.0, 1.0, 1.0)};
  EXPECT_FALSE(analyze_phase("ccd", fed, opts).master_saturated);

  // Idle workers but a mostly-idle master: waiting on something else.
  const std::vector<RankSample> idle_master = {
      sample(2.0, 0.5, 7.5), sample(4.0, 1.0, 5.0), sample(4.0, 1.0, 5.0)};
  EXPECT_FALSE(analyze_phase("ccd", idle_master, opts).master_saturated);
}

TEST(Analysis, StragglerListRespectsTopK) {
  AnalysisOptions opts;
  opts.top_k = 2;
  const std::vector<RankSample> ranks = {
      sample(1.0, 0.0, 9.0), sample(5.0, 0.0, 5.0), sample(7.0, 0.0, 3.0),
      sample(3.0, 0.0, 7.0)};
  const PhaseAnalysis p = analyze_phase("rr", ranks, opts);
  ASSERT_EQ(p.stragglers.size(), 2u);
  EXPECT_EQ(p.stragglers[0], 2);
  EXPECT_EQ(p.stragglers[1], 1);
}

TEST(Analysis, AnalyzeReportReadsRankTimesSection) {
  const util::JsonValue report = util::parse_json(R"({
    "schema": "pclust-run-report",
    "rank_times": {
      "ccd": [
        {"total": 10.0, "busy": 9.0, "comm": 0.5, "idle": 0.5},
        {"total": 10.0, "busy": 4.0, "comm": 1.0, "idle": 5.0},
        {"total": 10.0, "busy": 4.0, "comm": 1.0, "idle": 5.0}
      ],
      "empty_phase": [],
      "rr": [
        {"total": 5.0, "busy": 5.0, "comm": 0.0, "idle": 0.0}
      ]
    }
  })");
  const ReportAnalysis analysis = analyze_report(report);
  // Empty phases are skipped; map ordering gives ccd before rr.
  ASSERT_EQ(analysis.phases.size(), 2u);
  EXPECT_EQ(analysis.phases[0].phase, "ccd");
  EXPECT_EQ(analysis.phases[0].ranks, 3);
  EXPECT_EQ(analysis.phases[1].phase, "rr");
  EXPECT_TRUE(analysis.any_master_saturated());
  EXPECT_DOUBLE_EQ(analysis.max_imbalance(), 1.0);
}

TEST(Analysis, AnalyzeReportThrowsWithoutRankTimes) {
  const util::JsonValue report = util::parse_json(R"({"phases": []})");
  EXPECT_THROW(analyze_report(report), util::JsonError);
}

TEST(Analysis, RendersCoverEveryPhase) {
  const util::JsonValue report = util::parse_json(R"({
    "rank_times": {
      "rr": [{"total": 2.0, "busy": 1.0, "comm": 0.5, "idle": 0.5}]
    }
  })");
  const ReportAnalysis analysis = analyze_report(report);
  const std::string text = render_analysis(analysis);
  EXPECT_NE(text.find("phase rr"), std::string::npos);
  EXPECT_NE(text.find("imbalance factor"), std::string::npos);
  // The JSON render must itself parse and carry the phase.
  const util::JsonValue round =
      util::parse_json(render_analysis_json(analysis));
  ASSERT_TRUE(round.find("phases") != nullptr);
  EXPECT_EQ(round.at("phases").array.size(), 1u);
}

TEST(Analysis, AnalyzeReportSummarizesMetricsHistograms) {
  const util::JsonValue report = util::parse_json(R"({
    "rank_times": {},
    "metrics": {
      "histograms": {
        "families.family_size":
          {"count": 8, "sum": 205, "mean": 25.6, "max": 81,
           "p50": 15, "p90": 63, "p95": 81, "p99": 81},
        "pace.round_trip_us":
          {"count": 0, "sum": 0, "mean": 0.0, "max": 0,
           "p50": 0, "p90": 0, "p95": 0, "p99": 0}
      }
    }
  })");
  const ReportAnalysis analysis = analyze_report(report);
  // Empty histograms are dropped.
  ASSERT_EQ(analysis.histograms.size(), 1u);
  const HistogramSummary& h = analysis.histograms[0];
  EXPECT_EQ(h.name, "families.family_size");
  EXPECT_EQ(h.count, 8u);
  EXPECT_DOUBLE_EQ(h.mean, 25.6);
  EXPECT_EQ(h.p50, 15u);
  EXPECT_EQ(h.p95, 81u);
  EXPECT_EQ(h.p99, 81u);
  EXPECT_EQ(h.max, 81u);

  // Both renders surface the percentile ladder.
  const std::string text = render_analysis(analysis);
  EXPECT_NE(text.find("size distributions"), std::string::npos);
  EXPECT_NE(text.find("families.family_size"), std::string::npos);
  const util::JsonValue round =
      util::parse_json(render_analysis_json(analysis));
  ASSERT_EQ(round.at("histograms").array.size(), 1u);
  EXPECT_EQ(round.at("histograms").array[0].at("p95").as_u64(), 81u);
}

}  // namespace
}  // namespace pclust::pipeline
