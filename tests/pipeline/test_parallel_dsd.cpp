// Tests of the batched parallel Shingle stage (paper §VI future work).
#include <gtest/gtest.h>

#include <set>

#include "pclust/pipeline/pipeline.hpp"
#include "pclust/synth/generator.hpp"

namespace pclust::pipeline {
namespace {

synth::Dataset dsd_data(std::uint64_t seed) {
  synth::DatasetSpec spec;
  spec.seed = seed;
  spec.num_sequences = 400;
  spec.num_families = 8;
  spec.mean_length = 90;
  spec.redundant_fraction = 0.1;
  spec.noise_fraction = 0.15;
  spec.max_divergence = 0.18;
  return synth::generate(spec);
}

PipelineConfig dsd_config(int dsd_processors) {
  PipelineConfig config;
  config.shingle.s1 = 3;
  config.shingle.c1 = 80;
  config.shingle.s2 = 2;
  config.shingle.tau = 0.4;
  config.dsd_processors = dsd_processors;
  return config;
}

using FamilySet = std::set<std::vector<seq::SeqId>>;

FamilySet family_set(const PipelineResult& r) {
  FamilySet out;
  for (const auto& f : r.families) out.insert(f.members);
  return out;
}

TEST(ParallelDsd, SameFamiliesAsSerial) {
  const auto d = dsd_data(101);
  const auto serial = run(d.sequences, dsd_config(0));
  for (int p : {2, 3, 6}) {
    const auto parallel = run(d.sequences, dsd_config(p));
    EXPECT_EQ(family_set(parallel), family_set(serial)) << "p=" << p;
  }
}

TEST(ParallelDsd, ReportsSimulatedMakespan) {
  const auto d = dsd_data(102);
  const auto serial = run(d.sequences, dsd_config(0));
  EXPECT_DOUBLE_EQ(serial.dsd_simulated_seconds, 0.0);
  const auto parallel = run(d.sequences, dsd_config(4));
  EXPECT_GT(parallel.dsd_simulated_seconds, 0.0);
}

TEST(ParallelDsd, MoreRanksNoSlowerMakespan) {
  const auto d = dsd_data(103);
  const auto p2 = run(d.sequences, dsd_config(2));
  const auto p8 = run(d.sequences, dsd_config(8));
  // LPT batching: more ranks can only reduce (or equal, when one giant
  // component dominates) the simulated makespan.
  EXPECT_LE(p8.dsd_simulated_seconds, p2.dsd_simulated_seconds + 1e-9);
}

TEST(ParallelDsd, DensityStatsUnaffected) {
  const auto d = dsd_data(104);
  const auto serial = run(d.sequences, dsd_config(0));
  const auto parallel = run(d.sequences, dsd_config(4));
  EXPECT_DOUBLE_EQ(serial.mean_density, parallel.mean_density);
  EXPECT_EQ(serial.largest_subgraph, parallel.largest_subgraph);
}

TEST(ParallelDsd, WorksWithMatchBasedReduction) {
  const auto d = dsd_data(105);
  PipelineConfig config = dsd_config(3);
  config.reduction = bigraph::Reduction::kMatchBased;
  config.bm.w = 8;
  const auto r = run(d.sequences, config);
  EXPECT_GT(r.dense_subgraph_count, 0u);
}

TEST(ParallelDsd, MoreRanksThanComponentsIsSafe) {
  const auto d = dsd_data(106);
  const auto r = run(d.sequences, dsd_config(64));
  EXPECT_GT(r.dense_subgraph_count, 0u);
}

}  // namespace
}  // namespace pclust::pipeline
