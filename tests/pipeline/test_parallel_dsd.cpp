// Tests of the batched parallel Shingle stage (paper §VI future work).
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "pclust/mpsim/fault_plan.hpp"
#include "pclust/pipeline/pipeline.hpp"
#include "pclust/synth/generator.hpp"

namespace pclust::pipeline {
namespace {

synth::Dataset dsd_data(std::uint64_t seed) {
  synth::DatasetSpec spec;
  spec.seed = seed;
  spec.num_sequences = 400;
  spec.num_families = 8;
  spec.mean_length = 90;
  spec.redundant_fraction = 0.1;
  spec.noise_fraction = 0.15;
  spec.max_divergence = 0.18;
  return synth::generate(spec);
}

PipelineConfig dsd_config(int dsd_processors) {
  PipelineConfig config;
  config.shingle.s1 = 3;
  config.shingle.c1 = 80;
  config.shingle.s2 = 2;
  config.shingle.tau = 0.4;
  config.dsd_processors = dsd_processors;
  return config;
}

using FamilySet = std::set<std::vector<seq::SeqId>>;

FamilySet family_set(const PipelineResult& r) {
  FamilySet out;
  for (const auto& f : r.families) out.insert(f.members);
  return out;
}

TEST(ParallelDsd, SameFamiliesAsSerial) {
  const auto d = dsd_data(101);
  const auto serial = run(d.sequences, dsd_config(0));
  for (int p : {2, 3, 6}) {
    const auto parallel = run(d.sequences, dsd_config(p));
    EXPECT_EQ(family_set(parallel), family_set(serial)) << "p=" << p;
  }
}

TEST(ParallelDsd, ReportsSimulatedMakespan) {
  const auto d = dsd_data(102);
  const auto serial = run(d.sequences, dsd_config(0));
  EXPECT_DOUBLE_EQ(serial.dsd_simulated_seconds, 0.0);
  const auto parallel = run(d.sequences, dsd_config(4));
  EXPECT_GT(parallel.dsd_simulated_seconds, 0.0);
}

TEST(ParallelDsd, MoreRanksNoSlowerMakespan) {
  const auto d = dsd_data(103);
  const auto p2 = run(d.sequences, dsd_config(2));
  const auto p8 = run(d.sequences, dsd_config(8));
  // LPT batching: more ranks can only reduce (or equal, when one giant
  // component dominates) the simulated makespan.
  EXPECT_LE(p8.dsd_simulated_seconds, p2.dsd_simulated_seconds + 1e-9);
}

TEST(ParallelDsd, DensityStatsUnaffected) {
  const auto d = dsd_data(104);
  const auto serial = run(d.sequences, dsd_config(0));
  const auto parallel = run(d.sequences, dsd_config(4));
  EXPECT_DOUBLE_EQ(serial.mean_density, parallel.mean_density);
  EXPECT_EQ(serial.largest_subgraph, parallel.largest_subgraph);
}

TEST(ParallelDsd, WorksWithMatchBasedReduction) {
  const auto d = dsd_data(105);
  PipelineConfig config = dsd_config(3);
  config.reduction = bigraph::Reduction::kMatchBased;
  config.bm.w = 8;
  const auto r = run(d.sequences, config);
  EXPECT_GT(r.dense_subgraph_count, 0u);
}

TEST(ParallelDsd, MoreRanksThanComponentsIsSafe) {
  const auto d = dsd_data(106);
  const auto r = run(d.sequences, dsd_config(64));
  EXPECT_GT(r.dense_subgraph_count, 0u);
}

// ---- fault tolerance --------------------------------------------------
// DSD verdicts land in graph-keyed slots and families are assembled in
// ascending graph order, so a healed run is EXACTLY equal to the serial
// one — ordered members, degree, density — not merely set-equal.

void expect_identical_families(const PipelineResult& a,
                               const PipelineResult& b) {
  ASSERT_EQ(a.families.size(), b.families.size());
  for (std::size_t i = 0; i < a.families.size(); ++i) {
    EXPECT_EQ(a.families[i].members, b.families[i].members) << "family " << i;
    EXPECT_DOUBLE_EQ(a.families[i].mean_degree, b.families[i].mean_degree);
    EXPECT_DOUBLE_EQ(a.families[i].density, b.families[i].density);
  }
}

TEST(ParallelDsd, CrashedWorkerHealsBitIdentically) {
  const auto d = dsd_data(107);
  const auto serial = run(d.sequences, dsd_config(0));

  mpsim::FaultPlan plan;
  plan.crashes.push_back({1, 0.0});  // worker dies before doing anything
  PipelineConfig config = dsd_config(4);
  config.dsd_fault_plan = &plan;
  const auto healed = run(d.sequences, config);

  expect_identical_families(healed, serial);
  EXPECT_EQ(healed.dsd_run.crashed_ranks, std::vector<int>{1});
  EXPECT_EQ(healed.dsd_run.counter("workers_failed"), 1u);
  EXPECT_GE(healed.dsd_run.counter("streams_adopted"), 1u);
  EXPECT_FALSE(healed.dsd_run.fault_events.empty());
}

TEST(ParallelDsd, AllButOneWorkerCrashedStillIdentical) {
  const auto d = dsd_data(108);
  const auto serial = run(d.sequences, dsd_config(0));

  mpsim::FaultPlan plan;
  plan.crashes.push_back({1, 0.0});
  plan.crashes.push_back({3, 0.0});
  PipelineConfig config = dsd_config(4);  // only worker 2 survives
  config.dsd_fault_plan = &plan;
  const auto healed = run(d.sequences, config);

  expect_identical_families(healed, serial);
  EXPECT_EQ(healed.dsd_run.crashed_ranks, (std::vector<int>{1, 3}));
  EXPECT_EQ(healed.dsd_run.counter("workers_failed"), 2u);
}

TEST(ParallelDsd, DropDuplicateStragglerLinksBitIdentical) {
  const auto d = dsd_data(109);
  const auto serial = run(d.sequences, dsd_config(0));

  mpsim::FaultPlan plan;
  plan.seed = 7;
  plan.drop_probability = 0.3;
  plan.duplicate_probability = 0.3;
  plan.straggler_factor = {1.0, 1.0, 4.0};
  PipelineConfig config = dsd_config(3);
  config.dsd_fault_plan = &plan;
  const auto faulted = run(d.sequences, config);

  expect_identical_families(faulted, serial);
  EXPECT_TRUE(faulted.dsd_run.crashed_ranks.empty());
}

TEST(ParallelDsd, HierarchicalMastersMatchFlatFamilies) {
  const auto d = dsd_data(111);
  const auto serial = run(d.sequences, dsd_config(0));

  PipelineConfig config = dsd_config(6);
  config.pace.masters = 2;  // root + 2 sub-masters + 3 workers
  const auto hier = run(d.sequences, config);
  expect_identical_families(hier, serial);
  EXPECT_EQ(hier.dsd_run.counter("submasters_failed"), 0u);
}

TEST(ParallelDsd, SubMasterCrashHealsBitIdentically) {
  // DSD slot assignment is graph-keyed and first-wins, so replaying a dead
  // sub-master's event log and re-homing its workers must reproduce the
  // serial families exactly — same contract as the CCD union–find.
  const auto d = dsd_data(112);
  const auto serial = run(d.sequences, dsd_config(0));

  mpsim::FaultPlan plan;
  plan.crashes.push_back({1, 0.0});  // sub-master 1 dies immediately
  PipelineConfig config = dsd_config(6);
  config.pace.masters = 2;
  config.dsd_fault_plan = &plan;
  const auto healed = run(d.sequences, config);

  expect_identical_families(healed, serial);
  EXPECT_EQ(healed.dsd_run.crashed_ranks, std::vector<int>{1});
  EXPECT_EQ(healed.dsd_run.counter("submasters_failed"), 1u);
  EXPECT_GE(healed.dsd_run.counter("workers_rehomed"), 1u);
}

TEST(ParallelDsd, MasterCrashPlanIsRejected) {
  const auto d = dsd_data(110);
  mpsim::FaultPlan plan;
  plan.crashes.push_back({0, 1.0});  // rank 0 is the unrecoverable master
  PipelineConfig config = dsd_config(3);
  config.dsd_fault_plan = &plan;
  EXPECT_THROW(run(d.sequences, config), std::invalid_argument);
}

}  // namespace
}  // namespace pclust::pipeline
