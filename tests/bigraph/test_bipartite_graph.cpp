#include "pclust/bigraph/bipartite_graph.hpp"

#include <gtest/gtest.h>

namespace pclust::bigraph {
namespace {

TEST(BipartiteGraph, EmptyGraph) {
  const BipartiteGraph g(0, 0, {});
  EXPECT_EQ(g.left_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(BipartiteGraph, AdjacencySortedAndQueryable) {
  const BipartiteGraph g(3, 4, {{0, 3}, {0, 1}, {2, 0}, {0, 2}});
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 0u);
  EXPECT_EQ(g.degree(2), 1u);
  const auto links = g.out_links(0);
  EXPECT_EQ(std::vector<std::uint32_t>(links.begin(), links.end()),
            (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_TRUE(g.has_edge(2, 0));
}

TEST(BipartiteGraph, DuplicateEdgesCollapse) {
  const BipartiteGraph g(2, 2, {{0, 1}, {0, 1}, {0, 1}});
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(BipartiteGraph, OutOfRangeEdgeThrows) {
  EXPECT_THROW(BipartiteGraph(2, 2, {{2, 0}}), std::out_of_range);
  EXPECT_THROW(BipartiteGraph(2, 2, {{0, 2}}), std::out_of_range);
}

BipartiteGraph clique(std::uint32_t m) {
  std::vector<Edge> edges;
  for (std::uint32_t i = 0; i < m; ++i) {
    for (std::uint32_t j = 0; j < m; ++j) {
      if (i != j) edges.push_back({i, j});
    }
  }
  return {m, m, std::move(edges)};
}

TEST(SubgraphDensity, CliqueIsFullyDense) {
  const auto g = clique(6);
  const std::vector<std::uint32_t> nodes{0, 1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean_subgraph_degree(g, nodes), 5.0);
  EXPECT_DOUBLE_EQ(subgraph_density(g, nodes), 1.0);
}

TEST(SubgraphDensity, SubsetOfCliqueStillDense) {
  const auto g = clique(6);
  EXPECT_DOUBLE_EQ(subgraph_density(g, {0, 2, 4}), 1.0);
}

TEST(SubgraphDensity, EdgesOutsideSubgraphIgnored) {
  // Path 0-1-2: density of {0,2} is 0 (their edges go to 1, outside).
  const BipartiteGraph g(3, 3, {{0, 1}, {1, 0}, {1, 2}, {2, 1}});
  EXPECT_DOUBLE_EQ(subgraph_density(g, {0, 2}), 0.0);
  EXPECT_DOUBLE_EQ(subgraph_density(g, {0, 1}), 1.0);
}

TEST(SubgraphDensity, DegenerateSizes) {
  const auto g = clique(3);
  EXPECT_DOUBLE_EQ(subgraph_density(g, {}), 0.0);
  EXPECT_DOUBLE_EQ(subgraph_density(g, {1}), 0.0);
  EXPECT_DOUBLE_EQ(mean_subgraph_degree(g, {}), 0.0);
}

TEST(SubgraphDensity, PaperFormula) {
  // 75 % dense subgraph on 5 nodes: mean degree 3 -> density 3/4.
  std::vector<Edge> edges;
  // Cycle 0-1-2-3-4 plus chords 0-2, 1-3, 2-4, 3-0, 4-1 => degree 4 each...
  // build instead: complete graph minus a perfect matching impossible on 5;
  // use explicit: each vertex connected to 3 others.
  const std::uint32_t m = 5;
  for (std::uint32_t i = 0; i < m; ++i) {
    for (std::uint32_t d = 1; d <= 3; ++d) {
      edges.push_back({i, (i + d) % m});
    }
  }
  const BipartiteGraph g(m, m, std::move(edges));
  const std::vector<std::uint32_t> nodes{0, 1, 2, 3, 4};
  // Each vertex has out-degree 3 but in-union with reverse edges the
  // adjacency is what it is; verify via the formula directly.
  const double density = subgraph_density(g, nodes);
  EXPECT_NEAR(density, mean_subgraph_degree(g, nodes) / 4.0, 1e-12);
}

TEST(BipartiteGraph, MemoryUsageIsCsrSized) {
  // CSR storage: offsets (left_count + 1 size_t) + adjacency (one u32 per
  // deduplicated edge). memory_usage() must cover both and nothing wild.
  const BipartiteGraph g(3, 4, {{0, 3}, {0, 1}, {2, 0}, {0, 2}});
  const auto b = g.memory_usage();
  EXPECT_EQ(b.name, "bigraph");
  ASSERT_EQ(b.parts.size(), 2u);
  EXPECT_GE(b.total(), 4u * sizeof(std::size_t) + 4u * sizeof(std::uint32_t));

  // More edges never shrink the footprint.
  const BipartiteGraph denser(
      3, 4, {{0, 3}, {0, 1}, {2, 0}, {0, 2}, {1, 1}, {1, 2}, {2, 3}});
  EXPECT_GE(denser.memory_usage().total(), b.total());
}

}  // namespace
}  // namespace pclust::bigraph
