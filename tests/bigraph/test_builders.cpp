#include "pclust/bigraph/builders.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "pclust/align/predicates.hpp"
#include "pclust/pace/components.hpp"
#include "pclust/synth/generator.hpp"

namespace pclust::bigraph {
namespace {

synth::Dataset family_data(std::uint64_t seed, std::uint32_t n = 60) {
  synth::DatasetSpec spec;
  spec.seed = seed;
  spec.num_sequences = n;
  spec.num_families = 2;
  spec.mean_length = 90;
  spec.redundant_fraction = 0;
  spec.noise_fraction = 0;
  spec.max_divergence = 0.20;
  return synth::generate(spec);
}

std::vector<seq::SeqId> all_ids(const seq::SequenceSet& set) {
  std::vector<seq::SeqId> ids(set.size());
  std::iota(ids.begin(), ids.end(), seq::SeqId{0});
  return ids;
}

TEST(BuildBd, SymmetricDuplicatedEdges) {
  const auto d = family_data(51);
  const auto cg = build_bd(d.sequences, all_ids(d.sequences));
  EXPECT_EQ(cg.reduction, Reduction::kDuplicate);
  EXPECT_EQ(cg.graph.left_count(), d.sequences.size());
  EXPECT_EQ(cg.graph.right_count(), d.sequences.size());
  EXPECT_GT(cg.graph.edge_count(), 0u);
  // E' = {(i,j),(j,i)}: adjacency is symmetric and loop-free.
  for (std::uint32_t i = 0; i < cg.graph.left_count(); ++i) {
    for (std::uint32_t j : cg.graph.out_links(i)) {
      EXPECT_NE(i, j);
      EXPECT_TRUE(cg.graph.has_edge(j, i)) << i << "->" << j;
    }
  }
}

TEST(BuildBd, EdgesAreTrueOverlaps) {
  const auto d = family_data(52, 40);
  const auto cg = build_bd(d.sequences, all_ids(d.sequences));
  for (std::uint32_t i = 0; i < cg.graph.left_count(); ++i) {
    for (std::uint32_t j : cg.graph.out_links(i)) {
      if (j < i) continue;
      const auto out = align::test_overlap(
          d.sequences.residues(cg.members[i]),
          d.sequences.residues(cg.members[j]), align::blosum62());
      EXPECT_TRUE(out.accepted) << cg.members[i] << " vs " << cg.members[j];
    }
  }
}

TEST(BuildBd, WithinFamilyEdgesDominant) {
  const auto d = family_data(53);
  const auto cg = build_bd(d.sequences, all_ids(d.sequences));
  std::uint64_t within = 0, across = 0;
  for (std::uint32_t i = 0; i < cg.graph.left_count(); ++i) {
    for (std::uint32_t j : cg.graph.out_links(i)) {
      if (d.truth.family[cg.members[i]] == d.truth.family[cg.members[j]]) {
        ++within;
      } else {
        ++across;
      }
    }
  }
  EXPECT_GT(within, 10 * (across + 1));
}

TEST(BuildBd, MemberSubsetOnly) {
  const auto d = family_data(54, 40);
  std::vector<seq::SeqId> members;
  for (seq::SeqId id = 0; id < d.sequences.size(); ++id) {
    if (d.truth.family[id] == 0) members.push_back(id);
  }
  const auto cg = build_bd(d.sequences, members);
  EXPECT_EQ(cg.members.size(), members.size());
  EXPECT_EQ(cg.graph.left_count(), members.size());
}

TEST(BuildBd, StatsAccumulated) {
  const auto d = family_data(55, 40);
  const auto cg = build_bd(d.sequences, all_ids(d.sequences));
  EXPECT_GT(cg.candidate_pairs, 0u);
  EXPECT_GT(cg.aligned_pairs, 0u);
  EXPECT_GE(cg.candidate_pairs, cg.aligned_pairs);  // dedup only shrinks
  EXPECT_GT(cg.alignment_cells, 0u);
}

TEST(BuildBd, NoFilterSkipsEdges) {
  // Unlike CCD, BGG aligns every deduplicated candidate pair: aligned_pairs
  // equals the number of distinct candidate pairs.
  const auto d = family_data(56, 30);
  const auto cg = build_bd(d.sequences, all_ids(d.sequences));
  // Aligned == distinct candidates (candidates include duplicates).
  EXPECT_LE(cg.aligned_pairs, cg.candidate_pairs);
  EXPECT_GT(cg.aligned_pairs,
            cg.candidate_pairs / 50);  // sanity: dedup is not everything
}

TEST(BuildBm, WordsConnectContainingSequences) {
  seq::SequenceSet set;
  set.add("a", "WWWDEFGHIKLMNPWWW");
  set.add("b", "YYDEFGHIKLMNPYY");
  set.add("c", "MMMMMMMMMMMMMM");
  std::vector<seq::SeqId> members{0, 1, 2};
  const auto cg = build_bm(set, members, BmParams{.w = 10});
  EXPECT_EQ(cg.reduction, Reduction::kMatchBased);
  // Shared 10-mers of "DEFGHIKLMNP" (11 long): 2 words, each linking a & b.
  EXPECT_EQ(cg.graph.left_count(), 2u);
  EXPECT_EQ(cg.words.size(), 2u);
  for (std::uint32_t w = 0; w < cg.graph.left_count(); ++w) {
    const auto links = cg.graph.out_links(w);
    EXPECT_EQ(std::vector<std::uint32_t>(links.begin(), links.end()),
              (std::vector<std::uint32_t>{0, 1}));
  }
}

TEST(BuildBm, FamilyMembersShareWords) {
  const auto d = family_data(57, 30);
  const auto cg = build_bm(d.sequences, all_ids(d.sequences), BmParams{});
  EXPECT_GT(cg.graph.left_count(), 0u);
  EXPECT_EQ(cg.graph.right_count(), d.sequences.size());
  // Every word vertex has degree >= 2 by construction.
  for (std::uint32_t w = 0; w < cg.graph.left_count(); ++w) {
    EXPECT_GE(cg.graph.degree(w), 2u);
  }
}

TEST(BuildBm, EmptyComponentSafe) {
  seq::SequenceSet set;
  set.add("a", "ACDEFGHIKL");
  const auto cg = build_bm(set, {0}, BmParams{});
  EXPECT_EQ(cg.graph.left_count(), 0u);
  EXPECT_EQ(cg.graph.edge_count(), 0u);
}

TEST(Builders, IntegrationWithComponentDetection) {
  // Components from CCD feed straight into the builders.
  const auto d = family_data(58, 50);
  const auto ccd =
      pace::detect_components_serial(d.sequences, all_ids(d.sequences));
  ASSERT_FALSE(ccd.components.empty());
  const auto& comp = ccd.components.front();
  ASSERT_GE(comp.size(), 5u);
  const auto bd = build_bd(d.sequences, comp);
  const auto bm = build_bm(d.sequences, comp, BmParams{});
  EXPECT_GT(bd.graph.edge_count(), 0u);
  EXPECT_GT(bm.graph.edge_count(), 0u);
}

}  // namespace
}  // namespace pclust::bigraph
