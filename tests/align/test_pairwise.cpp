#include "pclust/align/pairwise.hpp"

#include <gtest/gtest.h>

#include "pclust/seq/alphabet.hpp"

namespace pclust::align {
namespace {

using seq::encode;

const ScoringScheme kId = identity_scoring(/*match=*/2, /*mismatch=*/-3,
                                           /*gap_open=*/4, /*gap_extend=*/1);

TEST(GlobalAlign, IdenticalSequences) {
  const auto a = encode("ACDEFGHIK");
  const auto r = global_align(a, a, kId);
  EXPECT_EQ(r.score, 2 * 9);
  EXPECT_EQ(r.columns, 9u);
  EXPECT_EQ(r.matches, 9u);
  EXPECT_EQ(r.gap_columns, 0u);
  EXPECT_DOUBLE_EQ(r.identity(), 1.0);
  EXPECT_EQ(r.a_begin, 0u);
  EXPECT_EQ(r.a_end, 9u);
}

TEST(GlobalAlign, SingleSubstitution) {
  const auto a = encode("ACDEF");
  const auto b = encode("ACDDF");  // E->D at index 3
  const auto r = global_align(a, b, kId);
  EXPECT_EQ(r.score, 4 * 2 - 3);
  EXPECT_EQ(r.matches, 4u);
  EXPECT_EQ(r.columns, 5u);
}

TEST(GlobalAlign, SingleGap) {
  const auto a = encode("ACDEF");
  const auto b = encode("ACEF");  // D deleted
  const auto r = global_align(a, b, kId);
  // 4 matches (2*4=8) minus open+extend (4+1=5).
  EXPECT_EQ(r.score, 8 - 5);
  EXPECT_EQ(r.gap_columns, 1u);
  EXPECT_EQ(r.columns, 5u);
}

TEST(GlobalAlign, AffineGapPreferredOverTwoGaps) {
  // One 2-long gap should cost open+2*extend, not 2*(open+extend).
  const auto a = encode("AAAACCAAAA");
  const auto b = encode("AAAAAAAA");
  const auto r = global_align(a, b, kId);
  EXPECT_EQ(r.score, 8 * 2 - (4 + 2 * 1));
  EXPECT_EQ(r.gap_columns, 2u);
}

TEST(GlobalAlign, EmptyVersusNonEmpty) {
  const auto a = encode("ACD");
  const auto r = global_align(a, "", kId);
  EXPECT_EQ(r.score, -(4 + 3 * 1));
  EXPECT_EQ(r.columns, 3u);
  EXPECT_EQ(r.gap_columns, 3u);
}

TEST(GlobalAlign, BothEmpty) {
  const auto r = global_align("", "", kId);
  EXPECT_EQ(r.score, 0);
  EXPECT_EQ(r.columns, 0u);
}

TEST(LocalAlign, FindsEmbeddedMatch) {
  // Common segment "DEFGHIKL" embedded in unrelated flanks.
  const auto a = encode("WWWWDEFGHIKLWWWW");
  const auto b = encode("MMDEFGHIKLMM");
  const auto r = local_align(a, b, kId);
  EXPECT_EQ(r.score, 2 * 8);
  EXPECT_EQ(r.matches, 8u);
  EXPECT_EQ(r.a_begin, 4u);
  EXPECT_EQ(r.a_end, 12u);
  EXPECT_EQ(r.b_begin, 2u);
  EXPECT_EQ(r.b_end, 10u);
}

TEST(LocalAlign, NoPositiveAlignmentGivesEmpty) {
  const auto a = encode("AAAA");
  const auto b = encode("WWWW");
  const auto r = local_align(a, b, kId);
  EXPECT_EQ(r.score, 0);
  EXPECT_EQ(r.columns, 0u);
}

TEST(LocalAlign, BridgesMismatchWhenWorthIt) {
  // Two 5-match runs separated by one mismatch: 10 matches*2 - 3 = 17
  // beats a single run's 10.
  const auto a = encode("DEFGHWIKLMN");
  const auto b = encode("DEFGHCIKLMN");
  const auto r = local_align(a, b, kId);
  EXPECT_EQ(r.score, 10 * 2 - 3);
  EXPECT_EQ(r.matches, 10u);
  EXPECT_EQ(r.columns, 11u);
}

TEST(LocalAlign, ScoreNeverNegative) {
  const auto a = encode("ACDEFG");
  const auto b = encode("WYWYWY");
  EXPECT_GE(local_align(a, b, kId).score, 0);
}

TEST(LocalAlign, SymmetricScore) {
  const auto a = encode("ACDEFGHIKLM");
  const auto b = encode("CDEFGGHIKL");
  EXPECT_EQ(local_align(a, b, kId).score, local_align(b, a, kId).score);
}

TEST(BandedLocal, WideBandMatchesFull) {
  const auto a = encode("WWWWDEFGHIKLWWWW");
  const auto b = encode("MMDEFGHIKLMM");
  const auto full = local_align(a, b, kId);
  const auto banded = banded_local_align(a, b, kId, /*diagonal=*/2,
                                         /*band=*/100);
  EXPECT_EQ(full.score, banded.score);
  EXPECT_EQ(full.matches, banded.matches);
}

TEST(BandedLocal, NarrowBandOnCorrectDiagonal) {
  const auto a = encode("WWWWDEFGHIKLWWWW");
  const auto b = encode("MMDEFGHIKLMM");
  // Match starts at a[4], b[2]: diagonal 2.
  const auto r = banded_local_align(a, b, kId, 2, 3);
  EXPECT_EQ(r.score, 2 * 8);
}

TEST(BandedLocal, NarrowBandComputesFewerCells) {
  const auto a = encode("WWWWDEFGHIKLWWWW");
  const auto b = encode("MMDEFGHIKLMM");
  const auto full = local_align(a, b, kId);
  const auto banded = banded_local_align(a, b, kId, 2, 2);
  EXPECT_LT(banded.cells, full.cells);
}

TEST(BandedLocal, WrongDiagonalMissesMatch) {
  const auto a = encode("WWWWDEFGHIKLWWWW");
  const auto b = encode("MMDEFGHIKLMM");
  const auto r = banded_local_align(a, b, kId, -8, 1);
  EXPECT_LT(r.score, 2 * 8);
}

TEST(AlignmentResult, CoverageFractions) {
  AlignmentResult r;
  r.a_begin = 2;
  r.a_end = 8;
  r.b_begin = 0;
  r.b_end = 6;
  EXPECT_DOUBLE_EQ(r.a_coverage(12), 0.5);
  EXPECT_DOUBLE_EQ(r.b_coverage(6), 1.0);
  EXPECT_DOUBLE_EQ(r.a_coverage(0), 0.0);
}

TEST(GlobalAlign, Blosum62IdenticalScoresSelfSimilarity) {
  const auto a = encode("MKTAYIAKQR");
  const auto r = global_align(a, a, blosum62());
  std::int32_t expected = 0;
  for (char c : a) {
    expected += blosum62().score(static_cast<std::uint8_t>(c),
                                 static_cast<std::uint8_t>(c));
  }
  EXPECT_EQ(r.score, expected);
}

TEST(CellsAccounting, FullMatrixCellCount) {
  const auto a = encode("ACDEF");
  const auto b = encode("ACD");
  EXPECT_EQ(global_align(a, b, kId).cells, 15u);
}

}  // namespace
}  // namespace pclust::align

namespace pclust::align {
namespace {

TEST(SemiglobalAlign, ExactSubstringScoresAsSelfMatch) {
  const auto inner = encode("DEFGHIKLMN");
  const auto outer = encode("WWWWDEFGHIKLMNWWWW");
  const auto r = semiglobal_align(inner, outer, kId);
  EXPECT_EQ(r.score, 2 * 10);  // flanks are free, no gap charges
  EXPECT_EQ(r.matches, 10u);
  EXPECT_EQ(r.gap_columns, 0u);
  EXPECT_EQ(r.a_begin, 0u);
  EXPECT_EQ(r.a_end, 10u);       // inner consumed end-to-end
  EXPECT_EQ(r.b_begin, 4u);
  EXPECT_EQ(r.b_end, 14u);
  EXPECT_DOUBLE_EQ(r.a_coverage(inner.size()), 1.0);
}

TEST(SemiglobalAlign, InnerCoverageAlwaysComplete) {
  const auto inner = encode("DEFXHIKLMN");  // one mismatch vs the outer
  const auto outer = encode("MMDEFGHIKLMNMM");
  const auto r = semiglobal_align(inner, outer, kId);
  EXPECT_EQ(r.a_end - r.a_begin, inner.size());
  EXPECT_EQ(r.matches, 9u);
}

TEST(SemiglobalAlign, ScoreBetweenGlobalAndLocal) {
  const auto a = encode("ACDEFGHIKL");
  const auto b = encode("WWACDEFGGIKLWW");
  const auto global = global_align(a, b, kId);
  const auto semi = semiglobal_align(a, b, kId);
  const auto local = local_align(a, b, kId);
  EXPECT_GE(semi.score, global.score);  // more freedom than global
  EXPECT_GE(local.score, semi.score);   // less constrained than semiglobal
}

TEST(SemiglobalAlign, EqualsGlobalOnEqualLengthFullOverlap) {
  const auto a = encode("ACDEFGHIKL");
  EXPECT_EQ(semiglobal_align(a, a, kId).score, global_align(a, a, kId).score);
}

TEST(SemiglobalAlign, InnerLongerThanOuterPaysGaps) {
  const auto inner = encode("ACDEFGHIKL");
  const auto outer = encode("DEFG");
  const auto r = semiglobal_align(inner, outer, kId);
  // All of inner must be consumed: 4 matches minus gaps for the other 6.
  EXPECT_EQ(r.a_end - r.a_begin, inner.size());
  EXPECT_GT(r.gap_columns, 0u);
  EXPECT_LT(r.score, 4 * 2);
}

TEST(SemiglobalAlign, EmptyOuter) {
  const auto inner = encode("ACD");
  const auto r = semiglobal_align(inner, "", kId);
  EXPECT_EQ(r.score, -(4 + 3 * 1));  // gap_open + 3 * gap_extend
  EXPECT_EQ(r.gap_columns, 3u);
}

}  // namespace
}  // namespace pclust::align
