// The batched SIMD engine must be bit-identical to the scalar score-only
// engine at every --simd setting: same scores, same region statistics,
// same cell counts — across partial lane fills, banded and unbanded
// geometries, mixed-length batches, the length cutoff to the scalar
// fallback, and score-overflow promotion back to exact scalar recompute.
//
// set_isa() clamps to the host's capabilities, so iterating every Isa is
// safe anywhere: on a host without AVX2 the avx2 round simply re-runs the
// widest supported tier.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pclust/align/batch.hpp"
#include "pclust/align/pairwise.hpp"
#include "pclust/align/scoring.hpp"
#include "pclust/align/simd.hpp"
#include "pclust/seq/alphabet.hpp"
#include "pclust/util/rng.hpp"

namespace pclust::align {
namespace {

const Isa kAllIsas[] = {Isa::kScalar, Isa::kSse2, Isa::kAvx2};

/// RAII ISA override so a failing test cannot leak its setting.
struct IsaGuard {
  explicit IsaGuard(Isa isa) : saved(current_isa()) { set_isa(isa); }
  ~IsaGuard() { set_isa(saved); }
  Isa saved;
};

std::string random_peptide(util::Xoshiro256& rng, std::size_t len) {
  std::string out(len, '\0');
  for (auto& c : out) {
    c = static_cast<char>(rng.below(seq::kNumResidues));
  }
  return out;
}

std::string mutate(util::Xoshiro256& rng, const std::string& a, double rate) {
  std::string out;
  out.reserve(a.size() + 8);
  for (const char c : a) {
    const double roll = rng.uniform();
    if (roll < rate * 0.2) continue;  // deletion
    if (roll < rate * 0.4) {          // insertion
      out.push_back(static_cast<char>(rng.below(seq::kNumResidues)));
    }
    out.push_back(roll < rate ? static_cast<char>(rng.below(seq::kNumResidues))
                              : c);
  }
  return out;
}

AlignmentResult scalar_reference(const PairJob& job,
                                 const ScoringScheme& scheme) {
  if (job.band < 0) return local_align_score(job.a, job.b, scheme);
  return banded_local_align_score(job.a, job.b, scheme, job.diagonal,
                                  static_cast<std::uint32_t>(job.band));
}

void expect_identical(const AlignmentResult& want, const AlignmentResult& got,
                      const std::string& what) {
  EXPECT_EQ(want.score, got.score) << what;
  EXPECT_EQ(want.a_begin, got.a_begin) << what;
  EXPECT_EQ(want.a_end, got.a_end) << what;
  EXPECT_EQ(want.b_begin, got.b_begin) << what;
  EXPECT_EQ(want.b_end, got.b_end) << what;
  EXPECT_EQ(want.columns, got.columns) << what;
  EXPECT_EQ(want.matches, got.matches) << what;
  EXPECT_EQ(want.positives, got.positives) << what;
  EXPECT_EQ(want.gap_columns, got.gap_columns) << what;
  EXPECT_EQ(want.cells, got.cells) << what;
}

void check_batch(const std::vector<PairJob>& jobs,
                 const ScoringScheme& scheme, const std::string& label) {
  std::vector<AlignmentResult> want(jobs.size());
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    want[k] = scalar_reference(jobs[k], scheme);
  }
  for (const Isa isa : kAllIsas) {
    IsaGuard guard(isa);
    std::vector<AlignmentResult> got(jobs.size());
    align_score_batch(jobs.data(), jobs.size(), scheme, got.data());
    for (std::size_t k = 0; k < jobs.size(); ++k) {
      expect_identical(want[k], got[k],
                       label + " isa=" + isa_name(current_isa()) + " pair=" +
                           std::to_string(k));
    }
  }
}

TEST(BatchSimd, IsaParsingAndClamping) {
  EXPECT_EQ(parse_isa("off"), Isa::kScalar);
  EXPECT_EQ(parse_isa("scalar"), Isa::kScalar);
  EXPECT_EQ(parse_isa("sse2"), Isa::kSse2);
  EXPECT_EQ(parse_isa("avx2"), Isa::kAvx2);
  EXPECT_EQ(parse_isa("auto"), detect_best_isa());
  EXPECT_FALSE(parse_isa("neon").has_value());
  EXPECT_FALSE(parse_isa("AVX2").has_value());
  // set_isa never exceeds the host's capability.
  IsaGuard guard(current_isa());
  const Isa eff = set_isa(Isa::kAvx2);
  EXPECT_LE(static_cast<int>(eff), static_cast<int>(detect_best_isa()));
  EXPECT_EQ(current_isa(), eff);
  EXPECT_EQ(set_isa(Isa::kScalar), Isa::kScalar);
  EXPECT_EQ(isa_lanes(Isa::kScalar), 1u);
  EXPECT_EQ(isa_lanes(Isa::kSse2), 8u);
  EXPECT_EQ(isa_lanes(Isa::kAvx2), 16u);
}

TEST(BatchSimd, LaneFillsUnbanded) {
  util::Xoshiro256 rng(7001);
  const ScoringScheme& s = blosum62();
  // Every fill from a lone pair through two full AVX2 batches, so partial
  // final chunks of both kernels are exercised at every lane width.
  for (std::size_t count : {1u, 2u, 7u, 8u, 9u, 15u, 16u, 17u, 33u}) {
    std::vector<std::string> seqs;
    std::vector<PairJob> jobs;
    for (std::size_t k = 0; k < 2 * count; ++k) {
      seqs.push_back(random_peptide(rng, 20 + rng.below(180)));
    }
    for (std::size_t k = 0; k < count; ++k) {
      jobs.push_back({seqs[2 * k], seqs[2 * k + 1], 0, -1});
    }
    check_batch(jobs, s, "fill=" + std::to_string(count));
  }
}

TEST(BatchSimd, BandedGeometries) {
  util::Xoshiro256 rng(7002);
  const ScoringScheme& s = blosum62();
  std::vector<std::string> seqs;
  seqs.reserve(96);  // jobs hold views into seqs: no reallocation allowed
  std::vector<PairJob> jobs;
  // Mixed bands force per-band grouping; related pairs give real optima
  // and diagonals, random offsets push bands off-center and off-sequence.
  for (const std::int64_t band : {1, 4, 32, 160}) {
    for (int k = 0; k < 12; ++k) {
      seqs.push_back(random_peptide(rng, 30 + rng.below(300)));
      seqs.push_back(mutate(rng, seqs.back(), 0.2));
      const std::int64_t diag =
          static_cast<std::int64_t>(rng.below(81)) - 40;
      jobs.push_back({seqs[seqs.size() - 2], seqs.back(), diag, band});
    }
  }
  check_batch(jobs, s, "banded");
}

TEST(BatchSimd, MixedLengthsAndLengthTierFallback) {
  util::Xoshiro256 rng(7003);
  const ScoringScheme& s = blosum62();
  std::vector<std::string> seqs;
  seqs.reserve(15);  // jobs hold views into seqs: no reallocation allowed
  std::vector<PairJob> jobs;
  // Lengths straddling the 2047 lane cap: longer pairs must fall back to
  // the scalar engine inside the same batch (and, above 32767, that
  // engine itself promotes to the full-matrix tier).
  for (const std::size_t len : {5u, 60u, 500u, 2000u, 2047u, 2048u, 2600u}) {
    seqs.push_back(random_peptide(rng, len));
    seqs.push_back(mutate(rng, seqs.back(), 0.15));
    jobs.push_back({seqs[seqs.size() - 2], seqs.back(), 0, -1});
    jobs.push_back({seqs.back(), seqs[seqs.size() - 2], 2, 24});
  }
  // Degenerate jobs ride along: empty sides and a band missing everything.
  seqs.push_back(random_peptide(rng, 40));
  jobs.push_back({std::string_view{}, seqs.back(), 0, -1});
  jobs.push_back({seqs.back(), std::string_view{}, 0, 8});
  jobs.push_back({seqs.back(), seqs.back(), 4000, 4});  // band off-matrix
  check_batch(jobs, s, "tiers");
}

TEST(BatchSimd, OverflowPromotionToScalar) {
  util::Xoshiro256 rng(7004);
  // match=1000 over hundreds of residues drives M scores far past the
  // 16-bit saturation guard: every such lane must flag and recompute
  // exactly, while short pairs in the same batch stay on the SIMD path.
  const ScoringScheme hot = identity_scoring(1000, -1, 3, 1);
  std::vector<std::string> seqs;
  seqs.reserve(24);  // jobs hold views into seqs: no reallocation allowed
  std::vector<PairJob> jobs;
  for (int k = 0; k < 6; ++k) {
    seqs.push_back(random_peptide(rng, 200 + rng.below(600)));
    seqs.push_back(mutate(rng, seqs.back(), 0.05));
    jobs.push_back({seqs[seqs.size() - 2], seqs.back(), 0, -1});
    jobs.push_back({seqs[seqs.size() - 2], seqs.back(), 0, 16});
    seqs.push_back(random_peptide(rng, 10 + rng.below(20)));
    seqs.push_back(random_peptide(rng, 10 + rng.below(20)));
    jobs.push_back({seqs[seqs.size() - 2], seqs.back(), 0, -1});
  }
  check_batch(jobs, hot, "overflow");
}

TEST(BatchSimd, FuzzRandomGeometry) {
  util::Xoshiro256 rng(7005);
  const ScoringScheme& s = blosum62();
  for (int round = 0; round < 8; ++round) {
    const std::size_t count = 1 + rng.below(40);
    std::vector<std::string> seqs;
    seqs.reserve(2 * count);
    std::vector<PairJob> jobs;
    for (std::size_t k = 0; k < count; ++k) {
      const std::size_t len = 1 + rng.below(260);
      seqs.push_back(random_peptide(rng, len));
      if (rng.below(2) == 0) {
        seqs.push_back(mutate(rng, seqs.back(), 0.3));
      } else {
        seqs.push_back(random_peptide(rng, 1 + rng.below(260)));
      }
      PairJob job{seqs[2 * k], seqs[2 * k + 1], 0, -1};
      switch (rng.below(4)) {
        case 0: break;  // unbanded
        case 1:
          job.band = static_cast<std::int64_t>(rng.below(48));
          job.diagonal = static_cast<std::int64_t>(rng.below(61)) - 30;
          break;
        case 2:  // band wider than the matrix: clamps to unbanded limits
          job.band = static_cast<std::int64_t>(job.a.size() + job.b.size() +
                                               rng.below(10));
          job.diagonal = static_cast<std::int64_t>(rng.below(21)) - 10;
          break;
        default:  // wide-but-clamping band (full storage, limited rows)
          job.band = static_cast<std::int64_t>(job.b.size() / 2 + 1);
          job.diagonal = static_cast<std::int64_t>(rng.below(41)) - 20;
          break;
      }
      jobs.push_back(job);
    }
    check_batch(jobs, s, "fuzz round=" + std::to_string(round));
  }
}

}  // namespace
}  // namespace pclust::align
