#include "pclust/align/predicates.hpp"

#include <gtest/gtest.h>

#include "pclust/seq/alphabet.hpp"

namespace pclust::align {
namespace {

using seq::encode;

const ScoringScheme kId = identity_scoring(2, -3, 4, 1);

TEST(Containment, ExactSubstringIsContained) {
  const auto outer = encode("WWWWDEFGHIKLMNPQWWWW");
  const auto inner = encode("DEFGHIKLMNPQ");
  const auto out = test_containment(inner, outer, kId);
  EXPECT_TRUE(out.accepted);
  EXPECT_DOUBLE_EQ(out.alignment.identity(), 1.0);
}

TEST(Containment, NotSymmetric) {
  const auto outer = encode("WWWWDEFGHIKLMNPQWWWW");
  const auto inner = encode("DEFGHIKLMNPQ");
  // The outer sequence is NOT contained in the inner one (coverage fails).
  EXPECT_FALSE(test_containment(outer, inner, kId).accepted);
}

TEST(Containment, SmallErrorTolerated) {
  // 40 residues, one substitution: 39/40 = 97.5 % >= 95 %.
  std::string inner_ascii(40, 'A');
  std::string outer_ascii = "WWW" + inner_ascii + "WWW";
  inner_ascii[20] = 'C';
  const auto out =
      test_containment(encode(inner_ascii), encode(outer_ascii), kId);
  EXPECT_TRUE(out.accepted);
}

TEST(Containment, TooManyErrorsRejected) {
  // 10 substitutions over 40 residues: 75 % < 95 %.
  std::string inner_ascii(40, 'A');
  const std::string outer_ascii = "WWW" + inner_ascii + "WWW";
  for (int i = 0; i < 10; ++i) inner_ascii[static_cast<std::size_t>(i * 4)] = 'C';
  EXPECT_FALSE(
      test_containment(encode(inner_ascii), encode(outer_ascii), kId).accepted);
}

TEST(Containment, PartialCoverageRejected) {
  // Only half of inner appears in outer.
  const auto inner = encode("DEFGHIKLMNPQRSTVDEFG" "WYWYWYWYWYWYWYWYWYWY");
  const auto outer = encode("AADEFGHIKLMNPQRSTVDEFGAA");
  EXPECT_FALSE(test_containment(inner, outer, kId).accepted);
}

TEST(Containment, CutoffsAreTunable) {
  ContainmentParams loose;
  loose.min_coverage = 0.40;
  const auto inner = encode("DEFGHIKLMNPQRSTVDEFG" "WYWYWYWYWYWYWYWYWYWY");
  const auto outer = encode("AADEFGHIKLMNPQRSTVDEFGAA");
  EXPECT_TRUE(test_containment(inner, outer, kId, loose).accepted);
}

TEST(Containment, IdenticalSequencesMutuallyContained) {
  const auto s = encode("ACDEFGHIKLMNPQRSTVWY");
  EXPECT_TRUE(test_containment(s, s, kId).accepted);
}

TEST(Overlap, HighSimilarityFullCoverage) {
  const auto a = encode("ACDEFGHIKLMNPQRSTVWYACDEFGHIKL");
  const auto b = a;
  EXPECT_TRUE(test_overlap(a, b, kId).accepted);
}

TEST(Overlap, CoverageOfLongerSequenceRequired) {
  // Short b aligns perfectly but covers only a fraction of long a.
  const auto a = encode(std::string(100, 'A') + "DEFGHIKLMN" +
                        std::string(100, 'C'));
  const auto b = encode("DEFGHIKLMN");
  EXPECT_FALSE(test_overlap(a, b, kId).accepted);
  EXPECT_FALSE(test_overlap(b, a, kId).accepted);  // order must not matter
}

TEST(Overlap, ModerateDivergenceAccepted) {
  // ~73 % identity over the full length passes the 30 % cutoff. Build a
  // repeating pattern with every 4th residue differing.
  std::string x, y;
  const std::string motif = "DEFGHIKLMNPQ";
  for (int rep = 0; rep < 5; ++rep) {
    for (std::size_t i = 0; i < motif.size(); ++i) {
      x += motif[i];
      y += (i % 4 == 3) ? 'A' : motif[i];
    }
  }
  const auto out = test_overlap(encode(x), encode(y), kId);
  EXPECT_TRUE(out.accepted);
  EXPECT_NEAR(out.alignment.identity(), 0.75, 0.05);
}

TEST(Overlap, UnrelatedSequencesRejected) {
  const auto a = encode(std::string(60, 'A') + std::string(60, 'C'));
  const auto b = encode(std::string(60, 'W') + std::string(60, 'Y'));
  EXPECT_FALSE(test_overlap(a, b, kId).accepted);
}

TEST(Overlap, BandedAgreesWithFullOnSeededDiagonal) {
  const auto a = encode("ACDEFGHIKLMNPQRSTVWYACDEFGHIKL");
  const auto b = encode("CDEFGHIKLMNPQRSTVWYACDEFGHIKLM");
  const auto full = test_overlap(a, b, kId);
  const auto banded = test_overlap_banded(a, b, kId, /*diagonal=*/-1,
                                          /*band=*/8);
  EXPECT_EQ(full.accepted, banded.accepted);
  EXPECT_EQ(full.alignment.score, banded.alignment.score);
}

TEST(Overlap, BandedComputesFewerCells) {
  const auto a = encode(std::string(80, 'A') + "DEFGHIKLMN");
  const auto b = encode(std::string(78, 'A') + "DEFGHIKLMN");
  const auto full = test_overlap(a, b, kId);
  const auto banded = test_overlap_banded(a, b, kId, 2, 6);
  EXPECT_LT(banded.alignment.cells, full.alignment.cells);
}

}  // namespace
}  // namespace pclust::align

namespace pclust::align {
namespace {

TEST(Containment, SemiglobalModeAcceptsExactSubstring) {
  ContainmentParams params;
  params.semiglobal = true;
  const auto outer = encode("WWWWDEFGHIKLMNPQWWWW");
  const auto inner = encode("DEFGHIKLMNPQ");
  EXPECT_TRUE(test_containment(inner, outer, kId, params).accepted);
}

TEST(Containment, SemiglobalStricterOnNoisyFlanks) {
  // Inner = true fragment plus an unrelated tail. Local alignment trims the
  // tail (coverage drops below 95% -> reject); semiglobal charges the tail
  // against similarity (also reject) — both reject, but via different
  // routes; verify the semiglobal coverage is reported as complete.
  const auto inner = encode("DEFGHIKLMNPQRSTV" "WYWYWYWY");
  const auto outer = encode("AADEFGHIKLMNPQRSTVAA");
  ContainmentParams semi;
  semi.semiglobal = true;
  const auto out = test_containment(inner, outer, kId, semi);
  EXPECT_FALSE(out.accepted);
  EXPECT_DOUBLE_EQ(out.alignment.a_coverage(inner.size()), 1.0);
}

}  // namespace
}  // namespace pclust::align
