#include "pclust/align/scoring.hpp"

#include <gtest/gtest.h>

namespace pclust::align {
namespace {

std::int16_t blosum(char a, char b) {
  return blosum62().score(seq::char_to_rank(a), seq::char_to_rank(b));
}

TEST(Blosum62, KnownDiagonalValues) {
  EXPECT_EQ(blosum('A', 'A'), 4);
  EXPECT_EQ(blosum('W', 'W'), 11);
  EXPECT_EQ(blosum('C', 'C'), 9);
  EXPECT_EQ(blosum('P', 'P'), 7);
  EXPECT_EQ(blosum('V', 'V'), 4);
}

TEST(Blosum62, KnownOffDiagonalValues) {
  EXPECT_EQ(blosum('A', 'R'), -1);
  EXPECT_EQ(blosum('W', 'C'), -2);
  EXPECT_EQ(blosum('I', 'L'), 2);
  EXPECT_EQ(blosum('D', 'E'), 2);
  EXPECT_EQ(blosum('H', 'Y'), 2);
  EXPECT_EQ(blosum('G', 'I'), -4);
}

TEST(Blosum62, Symmetric) {
  const auto& s = blosum62();
  for (int i = 0; i < seq::kAlphabetSize; ++i) {
    for (int j = 0; j < seq::kAlphabetSize; ++j) {
      EXPECT_EQ(s.score(static_cast<std::uint8_t>(i),
                        static_cast<std::uint8_t>(j)),
                s.score(static_cast<std::uint8_t>(j),
                        static_cast<std::uint8_t>(i)))
          << i << "," << j;
    }
  }
}

TEST(Blosum62, DiagonalDominatesRow) {
  // Every residue matches itself at least as well as anything else.
  const auto& s = blosum62();
  for (std::uint8_t i = 0; i < seq::kNumResidues; ++i) {
    for (std::uint8_t j = 0; j < seq::kNumResidues; ++j) {
      EXPECT_GE(s.score(i, i), s.score(i, j));
    }
  }
}

TEST(Blosum62, XScoresMinusOne) {
  EXPECT_EQ(blosum('X', 'A'), -1);
  EXPECT_EQ(blosum('X', 'X'), -1);
  EXPECT_EQ(blosum('W', 'X'), -1);
}

TEST(IdentityScoring, MatchMismatch) {
  const ScoringScheme s = identity_scoring(2, -1);
  EXPECT_EQ(s.score(0, 0), 2);
  EXPECT_EQ(s.score(0, 1), -1);
  EXPECT_EQ(s.gap_open, 3);
  EXPECT_EQ(s.gap_extend, 1);
}

}  // namespace
}  // namespace pclust::align
