// Property sweeps over random sequence pairs (TEST_P): invariants that must
// hold for ANY input, not just curated cases.
#include <gtest/gtest.h>

#include <string>

#include "pclust/align/pairwise.hpp"
#include "pclust/align/predicates.hpp"
#include "pclust/seq/alphabet.hpp"
#include "pclust/util/rng.hpp"

namespace pclust::align {
namespace {

std::string random_peptide(util::Xoshiro256& rng, std::size_t len) {
  std::string out(len, '\0');
  for (auto& c : out) {
    c = static_cast<char>(rng.below(seq::kNumResidues));
  }
  return out;
}

struct PairCase {
  std::uint64_t seed;
  std::size_t len_a;
  std::size_t len_b;
};

class AlignProperties : public ::testing::TestWithParam<PairCase> {
 protected:
  void SetUp() override {
    util::Xoshiro256 rng(GetParam().seed);
    a_ = random_peptide(rng, GetParam().len_a);
    b_ = random_peptide(rng, GetParam().len_b);
  }
  std::string a_, b_;
};

TEST_P(AlignProperties, LocalScoreSymmetric) {
  const auto& s = blosum62();
  EXPECT_EQ(local_align(a_, b_, s).score, local_align(b_, a_, s).score);
}

TEST_P(AlignProperties, GlobalScoreSymmetric) {
  const auto& s = blosum62();
  EXPECT_EQ(global_align(a_, b_, s).score, global_align(b_, a_, s).score);
}

TEST_P(AlignProperties, StatisticsInternallyConsistent) {
  for (const AlignmentResult& r :
       {local_align(a_, b_, blosum62()), global_align(a_, b_, blosum62())}) {
    EXPECT_LE(r.matches, r.columns);
    EXPECT_LE(r.positives + r.gap_columns, r.columns);
    EXPECT_GE(r.identity(), 0.0);
    EXPECT_LE(r.identity(), 1.0);
    EXPECT_LE(r.a_end - r.a_begin, a_.size());
    EXPECT_LE(r.b_end - r.b_begin, b_.size());
    EXPECT_LE(r.a_begin, r.a_end);
    EXPECT_LE(r.b_begin, r.b_end);
    // Columns account for every consumed residue.
    EXPECT_EQ(r.columns + /*double-counted pairs*/ 0u,
              (r.a_end - r.a_begin) + (r.b_end - r.b_begin) -
                  (r.columns - r.gap_columns));
  }
}

TEST_P(AlignProperties, SelfAlignmentIsPerfect) {
  const auto r = global_align(a_, a_, blosum62());
  EXPECT_DOUBLE_EQ(r.identity(), 1.0);
  EXPECT_EQ(r.gap_columns, 0u);
  EXPECT_EQ(r.columns, a_.size());
}

TEST_P(AlignProperties, BandedNeverBeatsFull) {
  const auto& s = blosum62();
  const auto full = local_align(a_, b_, s);
  for (std::uint32_t band : {1u, 4u, 16u}) {
    for (std::int64_t diagonal : {-5, 0, 5}) {
      const auto banded = banded_local_align(a_, b_, s, diagonal, band);
      EXPECT_LE(banded.score, full.score);
      EXPECT_LE(banded.cells, full.cells);
    }
  }
}

TEST_P(AlignProperties, HugeBandEqualsFull) {
  const auto& s = blosum62();
  const auto full = local_align(a_, b_, s);
  const auto banded = banded_local_align(
      a_, b_, s, 0, static_cast<std::uint32_t>(a_.size() + b_.size()));
  EXPECT_EQ(banded.score, full.score);
  EXPECT_EQ(banded.matches, full.matches);
}

TEST_P(AlignProperties, ContainmentReflexive) {
  EXPECT_TRUE(test_containment(a_, a_, blosum62()).accepted);
}

TEST_P(AlignProperties, OverlapSymmetricDecision) {
  const auto ab = test_overlap(a_, b_, blosum62());
  const auto ba = test_overlap(b_, a_, blosum62());
  EXPECT_EQ(ab.accepted, ba.accepted);
}

TEST_P(AlignProperties, LocalScoreNonNegative) {
  EXPECT_GE(local_align(a_, b_, blosum62()).score, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlignProperties,
    ::testing::Values(PairCase{1, 40, 40}, PairCase{2, 80, 80},
                      PairCase{3, 160, 90}, PairCase{4, 33, 201},
                      PairCase{5, 1, 1}, PairCase{6, 1, 100},
                      PairCase{7, 250, 250}, PairCase{8, 64, 63}));

}  // namespace
}  // namespace pclust::align
