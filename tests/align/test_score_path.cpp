// The score-only rolling-row fast path must be bit-identical to the
// full-matrix traceback aligners: same score, same region coordinates,
// same column statistics — on random sequences, related (mutated)
// sequences, and across banded/unbanded and all modes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pclust/align/pairwise.hpp"
#include "pclust/seq/alphabet.hpp"
#include "pclust/util/rng.hpp"

namespace pclust::align {
namespace {

std::string random_peptide(util::Xoshiro256& rng, std::size_t len) {
  std::string out(len, '\0');
  for (auto& c : out) {
    c = static_cast<char>(rng.below(seq::kNumResidues));
  }
  return out;
}

/// Copy of `a` with roughly `rate` of positions substituted and a few
/// indels, so local/semiglobal optima are non-trivial regions.
std::string mutate(util::Xoshiro256& rng, const std::string& a, double rate) {
  std::string out;
  out.reserve(a.size() + 8);
  for (const char c : a) {
    const double roll = rng.uniform();
    if (roll < rate * 0.2) continue;  // deletion
    if (roll < rate * 0.4) {          // insertion
      out.push_back(static_cast<char>(rng.below(seq::kNumResidues)));
    }
    out.push_back(roll < rate ? static_cast<char>(rng.below(seq::kNumResidues))
                              : c);
  }
  return out;
}

void expect_identical(const AlignmentResult& full, const AlignmentResult& fast,
                      const char* what) {
  EXPECT_EQ(full.score, fast.score) << what;
  EXPECT_EQ(full.a_begin, fast.a_begin) << what;
  EXPECT_EQ(full.a_end, fast.a_end) << what;
  EXPECT_EQ(full.b_begin, fast.b_begin) << what;
  EXPECT_EQ(full.b_end, fast.b_end) << what;
  EXPECT_EQ(full.columns, fast.columns) << what;
  EXPECT_EQ(full.matches, fast.matches) << what;
  EXPECT_EQ(full.positives, fast.positives) << what;
  EXPECT_EQ(full.gap_columns, fast.gap_columns) << what;
  EXPECT_EQ(full.cells, fast.cells) << what;
}

void check_all_modes(const std::string& a, const std::string& b) {
  const ScoringScheme& s = blosum62();
  expect_identical(local_align(a, b, s), local_align_score(a, b, s), "local");
  expect_identical(semiglobal_align(a, b, s), semiglobal_align_score(a, b, s),
                   "semiglobal");
  expect_identical(global_align(a, b, s), global_align_score(a, b, s),
                   "global");
  const std::int64_t max_d = static_cast<std::int64_t>(a.size());
  for (const std::int64_t diagonal : {-max_d / 2, std::int64_t{0}, max_d / 3}) {
    for (const std::uint32_t band : {0u, 1u, 3u, 8u, 40u}) {
      expect_identical(banded_local_align(a, b, s, diagonal, band),
                       banded_local_align_score(a, b, s, diagonal, band),
                       "banded local");
    }
  }
}

TEST(ScorePath, EmptyAndTinySequences) {
  check_all_modes("", "");
  check_all_modes("A", "");
  check_all_modes("", "A");
  check_all_modes("A", "A");
  check_all_modes("AC", "CA");
}

TEST(ScorePath, MatchesFullMatrixOnRandomPairs) {
  util::Xoshiro256 rng(20260806);
  for (int it = 0; it < 40; ++it) {
    const std::size_t la = 1 + rng.below(120);
    const std::size_t lb = 1 + rng.below(120);
    check_all_modes(random_peptide(rng, la), random_peptide(rng, lb));
  }
}

TEST(ScorePath, MatchesFullMatrixOnRelatedPairs) {
  util::Xoshiro256 rng(777);
  for (int it = 0; it < 30; ++it) {
    const std::string a = random_peptide(rng, 40 + rng.below(120));
    const std::string b = mutate(rng, a, 0.05 + 0.3 * rng.uniform());
    check_all_modes(a, b);
    // Contained fragment: the shape the RR predicate actually sees.
    const std::size_t frag_len = a.size() / 2;
    const std::size_t at = rng.below(a.size() - frag_len + 1);
    check_all_modes(a.substr(at, frag_len), b);
  }
}

TEST(ScorePath, BandMissingEverythingStillAgrees) {
  util::Xoshiro256 rng(99);
  const std::string a = random_peptide(rng, 50);
  const std::string b = random_peptide(rng, 50);
  const ScoringScheme& s = blosum62();
  // Diagonal far outside the matrix: band covers no cell.
  expect_identical(banded_local_align(a, b, s, 500, 4),
                   banded_local_align_score(a, b, s, 500, 4), "empty band");
  expect_identical(banded_local_align(a, b, s, -500, 4),
                   banded_local_align_score(a, b, s, -500, 4), "empty band");
}

TEST(ScorePath, WideBundleTierMatchesFullMatrix) {
  // Sequences longer than the packed-bundle tier's 2047-residue limit take
  // the wide (two-word) bundle storage; both tiers must stay bit-identical
  // to the full-matrix engine. Banded to keep the full-matrix side cheap.
  util::Xoshiro256 rng(2048);
  const std::string a = random_peptide(rng, 2100);
  const std::string b = mutate(rng, a, 0.15);
  const ScoringScheme& s = blosum62();
  expect_identical(banded_local_align(a, b, s, 0, 48),
                   banded_local_align_score(a, b, s, 0, 48), "wide tier");
  const std::string short_b = random_peptide(rng, 90);
  expect_identical(local_align(a, short_b, s),
                   local_align_score(a, short_b, s), "wide tier mixed len");
}

TEST(ScorePath, BandedRegionAllocationMatchesFullWhenBandCovers) {
  // A band wide enough to cover the whole matrix must reproduce the
  // unbanded result exactly (both engines).
  util::Xoshiro256 rng(4242);
  const std::string a = random_peptide(rng, 70);
  const std::string b = random_peptide(rng, 55);
  const ScoringScheme& s = blosum62();
  const auto full = local_align(a, b, s);
  const auto wide_band = static_cast<std::uint32_t>(a.size() + b.size());
  expect_identical(full, banded_local_align(a, b, s, 0, wide_band),
                   "wide band full engine");
  expect_identical(full, banded_local_align_score(a, b, s, 0, wide_band),
                   "wide band score engine");
}

}  // namespace
}  // namespace pclust::align
