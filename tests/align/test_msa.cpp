#include "pclust/align/msa.hpp"

#include <gtest/gtest.h>

#include <set>

#include "pclust/align/pairwise.hpp"
#include "pclust/seq/alphabet.hpp"
#include "pclust/synth/generator.hpp"

namespace pclust::align {
namespace {

seq::SequenceSet make_set(std::initializer_list<const char*> seqs) {
  seq::SequenceSet set;
  int i = 0;
  for (const char* s : seqs) set.add("s" + std::to_string(i++), s);
  return set;
}

std::string degap(const std::string& row) {
  std::string out;
  for (char c : row) {
    if (c != '-') out.push_back(c);
  }
  return out;
}

TEST(GlobalAlignPath, PathMatchesStatistics) {
  const auto a = seq::encode("ACDEFGHIKL");
  const auto b = seq::encode("ACDFGHKL");
  std::vector<EditOp> path;
  const auto r = global_align_path(a, b, blosum62(), path);
  EXPECT_EQ(path.size(), r.columns);
  std::size_t subs = 0, gaps = 0;
  std::size_t a_used = 0, b_used = 0;
  for (EditOp op : path) {
    switch (op) {
      case EditOp::kSubstitute: ++subs; ++a_used; ++b_used; break;
      case EditOp::kGapInB: ++gaps; ++a_used; break;
      case EditOp::kGapInA: ++gaps; ++b_used; break;
    }
  }
  EXPECT_EQ(subs, r.columns - r.gap_columns);
  EXPECT_EQ(gaps, r.gap_columns);
  EXPECT_EQ(a_used, a.size());  // global: everything consumed
  EXPECT_EQ(b_used, b.size());
}

TEST(Msa, SingleMemberTrivial) {
  const auto set = make_set({"ACDEFG"});
  const Msa msa = center_star_msa(set, {0}, blosum62());
  ASSERT_EQ(msa.rows.size(), 1u);
  EXPECT_EQ(msa.rows[0], "ACDEFG");
  EXPECT_EQ(msa.consensus(), "ACDEFG");
}

TEST(Msa, EmptyThrows) {
  const auto set = make_set({"ACDEFG"});
  EXPECT_THROW(
      { [[maybe_unused]] auto m = center_star_msa(set, {}, blosum62()); },
      std::invalid_argument);
}

TEST(Msa, IdenticalSequencesAlignWithoutGaps) {
  const auto set = make_set(
      {"MKTAYIAKQR", "MKTAYIAKQR", "MKTAYIAKQR"});
  const Msa msa = center_star_msa(set, {0, 1, 2}, blosum62());
  for (const auto& row : msa.rows) EXPECT_EQ(row, "MKTAYIAKQR");
  EXPECT_EQ(msa.consensus(), "MKTAYIAKQR");
  for (double c : msa.column_conservation()) EXPECT_DOUBLE_EQ(c, 1.0);
}

TEST(Msa, RowsDegapToOriginals) {
  const auto set = make_set({"MKTAYIAKQRDEFW", "MKTAYIKQRDEFW",
                             "MKTAYIAKQRDEF", "KTAYIAKQRDEFWW"});
  const std::vector<seq::SeqId> members{0, 1, 2, 3};
  const Msa msa = center_star_msa(set, members, blosum62());
  ASSERT_EQ(msa.rows.size(), 4u);
  const std::size_t cols = msa.columns();
  for (std::size_t r = 0; r < msa.rows.size(); ++r) {
    EXPECT_EQ(msa.rows[r].size(), cols);
    EXPECT_EQ(degap(msa.rows[r]), set.ascii(members[r]))
        << "row " << r << " corrupted";
  }
}

TEST(Msa, InsertionOpensGapInAllRows) {
  // Second member has an insertion; everyone else must show a gap there.
  const auto set = make_set({"MKTAYIAKQR", "MKTAYWWIAKQR", "MKTAYIAKQR"});
  const Msa msa = center_star_msa(set, {0, 1, 2}, blosum62());
  const std::size_t cols = msa.columns();
  EXPECT_GE(cols, 12u);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(degap(msa.rows[r]), set.ascii(static_cast<seq::SeqId>(r)));
  }
}

TEST(Msa, ConsensusRecoversFamilyAncestor) {
  // Members are light mutations of one ancestor; the column consensus
  // should recover (nearly) the ancestor.
  synth::DatasetSpec spec;
  spec.seed = 31;
  spec.num_sequences = 24;
  spec.num_families = 1;
  spec.min_family_size = 5;
  spec.mean_length = 60;
  spec.noise_fraction = 0;
  spec.redundant_fraction = 0;
  spec.min_divergence = 0.03;
  spec.max_divergence = 0.10;
  spec.truncation_max = 0.0;
  spec.indel_rate = 0.002;
  const auto d = synth::generate(spec);
  std::vector<seq::SeqId> members(d.sequences.size());
  for (seq::SeqId i = 0; i < d.sequences.size(); ++i) members[i] = i;
  const Msa msa = center_star_msa(d.sequences, members, blosum62());

  // Consensus agreement with each member should exceed each member's
  // agreement with any single other member on average.
  const std::string cons = msa.consensus();
  double agree = 0.0;
  std::size_t compared = 0;
  for (const auto& row : msa.rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c] == '-' || cons[c] == '-') continue;
      agree += row[c] == cons[c] ? 1.0 : 0.0;
      ++compared;
    }
  }
  EXPECT_GT(agree / static_cast<double>(compared), 0.9);
}

TEST(Msa, ConservationInUnitInterval) {
  const auto set = make_set({"MKTAYIAKQR", "MKTAYWAKQR", "MKTAYIAKQR"});
  const Msa msa = center_star_msa(set, {0, 1, 2}, blosum62());
  for (double c : msa.column_conservation()) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

TEST(Msa, CenterIsAMember) {
  const auto set = make_set({"MKTAYIAKQR", "MKTAYIAKQA", "MKTAYIAKQC"});
  const Msa msa = center_star_msa(set, {0, 1, 2}, blosum62());
  EXPECT_LT(msa.center, msa.members.size());
}

}  // namespace
}  // namespace pclust::align
