// Parallel SA / LCP / bucket construction must be bit-identical to the
// serial builders for every pool size (including the tiny-input fallbacks).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "pclust/exec/pool.hpp"
#include "pclust/seq/alphabet.hpp"
#include "pclust/suffix/concat_text.hpp"
#include "pclust/suffix/lcp.hpp"
#include "pclust/suffix/maximal_match.hpp"
#include "pclust/suffix/suffix_array.hpp"
#include "pclust/util/rng.hpp"

namespace pclust::suffix {
namespace {

seq::SequenceSet make_set(std::uint64_t seed, std::uint32_t n,
                          std::uint32_t mean_length = 60) {
  util::Xoshiro256 rng(seed);
  seq::SequenceSet set;
  std::string shared;  // half of each sequence: repeats stress comparator ties
  for (std::uint32_t i = 0; i < mean_length / 2; ++i) {
    shared.push_back(static_cast<char>(rng.below(seq::kNumResidues)));
  }
  for (std::uint32_t s = 0; s < n; ++s) {
    std::string ranks = shared;
    const auto len = mean_length / 2 + rng.below(mean_length / 2 + 1);
    for (std::uint32_t i = 0; i < len; ++i) {
      ranks.push_back(static_cast<char>(rng.below(seq::kNumResidues)));
    }
    set.add_encoded("s" + std::to_string(s), std::move(ranks));
  }
  return set;
}

TEST(ParallelSuffixArray, MatchesSerialAcrossPoolSizes) {
  for (std::uint64_t seed : {51ull, 52ull}) {
    for (std::uint32_t n : {1u, 5u, 40u, 150u}) {
      const auto set = make_set(seed, n);
      const ConcatText text(set);
      const auto serial =
          build_suffix_array(text.text(), seq::kIndexAlphabetSize);
      for (unsigned threads : {1u, 2u, 3u, 8u}) {
        exec::Pool pool(threads);
        EXPECT_EQ(build_suffix_array_parallel(text, pool), serial)
            << "seed=" << seed << " n=" << n << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelLcp, MatchesSerialAcrossPoolSizes) {
  for (std::uint32_t n : {1u, 5u, 120u}) {
    const auto set = make_set(61, n);
    const ConcatText text(set);
    const auto sa = build_suffix_array(text.text(), seq::kIndexAlphabetSize);
    const auto serial = build_lcp(text, sa);
    for (unsigned threads : {1u, 2u, 8u}) {
      exec::Pool pool(threads);
      EXPECT_EQ(build_lcp_parallel(text, sa, pool), serial)
          << "n=" << n << " threads=" << threads;
    }
  }
}

TEST(ParallelPrefixBuckets, MatchesSerialAcrossPoolSizes) {
  const auto set = make_set(71, 150, 50);
  const ConcatText text(set);
  const auto sa = build_suffix_array(text.text(), seq::kIndexAlphabetSize);
  const auto lcp = build_lcp(text, sa);
  const MaximalMatchEnumerator e(text, sa, lcp);
  for (std::uint32_t prefix_len : {1u, 2u, 3u}) {
    const auto serial = e.prefix_buckets(prefix_len);
    for (unsigned threads : {1u, 2u, 3u, 8u}) {
      exec::Pool pool(threads);
      const auto pooled = e.prefix_buckets(prefix_len, pool);
      ASSERT_EQ(pooled.size(), serial.size())
          << "prefix_len=" << prefix_len << " threads=" << threads;
      for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(pooled[i].lb, serial[i].lb);
        EXPECT_EQ(pooled[i].rb, serial[i].rb);
        EXPECT_EQ(pooled[i].weight, serial[i].weight);
      }
    }
  }
}

TEST(ParallelSuffixArray, TinyTextFallsBackToSerial) {
  // Below 2 * pool.size() characters the parallel builder must defer to
  // SA-IS rather than degenerate to empty blocks.
  const auto set = make_set(81, 1, 4);
  const ConcatText text(set);
  exec::Pool pool(8);
  EXPECT_EQ(build_suffix_array_parallel(text, pool),
            build_suffix_array(text.text(), seq::kIndexAlphabetSize));
}

}  // namespace
}  // namespace pclust::suffix
