#include "pclust/suffix/concat_text.hpp"

#include <gtest/gtest.h>

#include "pclust/seq/alphabet.hpp"

namespace pclust::suffix {
namespace {

seq::SequenceSet make_set() {
  seq::SequenceSet set;
  set.add("a", "ACDE");   // positions 0..3, separator at 4
  set.add("b", "FF");     // positions 5..6, separator at 7
  set.add("c", "GHIKL");  // positions 8..12, separator at 13
  return set;
}

TEST(ConcatText, LayoutAndSize) {
  const auto set = make_set();
  const ConcatText text(set);
  EXPECT_EQ(text.size(), 4u + 1 + 2 + 1 + 5 + 1);
  EXPECT_EQ(text.sequence_count(), 3u);
  EXPECT_TRUE(text.is_separator(4));
  EXPECT_TRUE(text.is_separator(7));
  EXPECT_TRUE(text.is_separator(13));
  EXPECT_FALSE(text.is_separator(0));
}

TEST(ConcatText, SequenceAtAndOffsetAt) {
  const auto set = make_set();
  const ConcatText text(set);
  EXPECT_EQ(text.sequence_at(0), 0u);
  EXPECT_EQ(text.sequence_at(3), 0u);
  EXPECT_EQ(text.sequence_at(5), 1u);
  EXPECT_EQ(text.sequence_at(8), 2u);
  EXPECT_EQ(text.sequence_at(12), 2u);
  EXPECT_EQ(text.offset_at(0), 0u);
  EXPECT_EQ(text.offset_at(6), 1u);
  EXPECT_EQ(text.offset_at(12), 4u);
}

TEST(ConcatText, RunLength) {
  const auto set = make_set();
  const ConcatText text(set);
  EXPECT_EQ(text.run_length(0), 4u);
  EXPECT_EQ(text.run_length(3), 1u);
  EXPECT_EQ(text.run_length(4), 0u);  // separator
  EXPECT_EQ(text.run_length(8), 5u);
}

TEST(ConcatText, LeftChar) {
  const auto set = make_set();
  const ConcatText text(set);
  EXPECT_EQ(text.left_char(0), seq::kRankSeparator);  // text start
  EXPECT_EQ(text.left_char(5), seq::kRankSeparator);  // sequence start
  EXPECT_EQ(text.left_char(1), seq::char_to_rank('A'));
  EXPECT_EQ(text.left_char(9), seq::char_to_rank('G'));
}

TEST(ConcatText, SubsetMapsToOriginalIds) {
  const auto set = make_set();
  const ConcatText text(set, {2, 0});
  EXPECT_EQ(text.sequence_count(), 2u);
  EXPECT_EQ(text.sequence_at(0), 2u);  // first subset sequence is "c"
  EXPECT_EQ(text.at(0), seq::char_to_rank('G'));
  EXPECT_EQ(text.sequence_at(6), 0u);  // then "a"
  EXPECT_EQ(text.offset_at(6), 0u);
}

TEST(ConcatText, StartOf) {
  const auto set = make_set();
  const ConcatText text(set);
  EXPECT_EQ(text.start_of(0), 0u);
  EXPECT_EQ(text.start_of(1), 5u);
  EXPECT_EQ(text.start_of(2), 8u);
}

}  // namespace
}  // namespace pclust::suffix
