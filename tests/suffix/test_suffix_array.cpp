#include "pclust/suffix/suffix_array.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>

#include "pclust/util/rng.hpp"

namespace pclust::suffix {
namespace {

/// O(n^2 log n) reference: sort suffix indices by suffix comparison.
std::vector<std::int32_t> brute_force_sa(std::string_view text) {
  std::vector<std::int32_t> sa(text.size());
  std::iota(sa.begin(), sa.end(), 0);
  std::sort(sa.begin(), sa.end(), [&](std::int32_t a, std::int32_t b) {
    return text.substr(static_cast<std::size_t>(a)) <
           text.substr(static_cast<std::size_t>(b));
  });
  return sa;
}

std::string random_text(std::uint64_t seed, std::size_t len, int alphabet) {
  util::Xoshiro256 rng(seed);
  std::string s(len, '\0');
  for (auto& c : s) {
    c = static_cast<char>(rng.below(static_cast<std::uint64_t>(alphabet)));
  }
  return s;
}

TEST(SuffixArray, EmptyText) {
  EXPECT_TRUE(build_suffix_array("", 4).empty());
}

TEST(SuffixArray, SingleCharacter) {
  const std::string t(1, '\2');
  const auto sa = build_suffix_array(t, 4);
  EXPECT_EQ(sa, (std::vector<std::int32_t>{0}));
}

TEST(SuffixArray, KnownSmallCase) {
  // "banana" over mapped alphabet {a=0, b=1, n=2}.
  std::string t = "banana";
  for (auto& c : t) c = (c == 'a') ? 0 : (c == 'b' ? 1 : 2);
  const auto sa = build_suffix_array(t, 3);
  EXPECT_EQ(sa, (std::vector<std::int32_t>{5, 3, 1, 0, 4, 2}));
}

TEST(SuffixArray, AllEqualSymbols) {
  const std::string t(50, '\3');
  const auto sa = build_suffix_array(t, 8);
  // Suffixes of a^n sort longest-last... shortest suffix is smallest.
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(sa[i], static_cast<std::int32_t>(49 - i));
  }
}

struct SaCase {
  std::uint64_t seed;
  std::size_t length;
  int alphabet;
};

class SuffixArrayRandom : public ::testing::TestWithParam<SaCase> {};

TEST_P(SuffixArrayRandom, MatchesBruteForce) {
  const auto [seed, length, alphabet] = GetParam();
  const std::string t = random_text(seed, length, alphabet);
  EXPECT_EQ(build_suffix_array(t, alphabet), brute_force_sa(t));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SuffixArrayRandom,
    ::testing::Values(SaCase{1, 10, 2}, SaCase{2, 100, 2}, SaCase{3, 100, 4},
                      SaCase{4, 500, 3}, SaCase{5, 500, 23},
                      SaCase{6, 1000, 5}, SaCase{7, 2000, 23},
                      SaCase{8, 777, 2}, SaCase{9, 64, 23},
                      SaCase{10, 1500, 4}));

TEST(SuffixArray, IsAPermutation) {
  const std::string t = random_text(42, 3000, 23);
  const auto sa = build_suffix_array(t, 23);
  std::vector<bool> seen(t.size(), false);
  for (auto v : sa) {
    ASSERT_GE(v, 0);
    ASSERT_LT(static_cast<std::size_t>(v), t.size());
    ASSERT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = true;
  }
}

TEST(SuffixArray, SortedProperty) {
  const std::string t = random_text(43, 2000, 3);
  const auto sa = build_suffix_array(t, 3);
  const std::string_view sv(t);
  for (std::size_t i = 1; i < sa.size(); ++i) {
    ASSERT_LT(sv.substr(static_cast<std::size_t>(sa[i - 1])),
              sv.substr(static_cast<std::size_t>(sa[i])))
        << "disorder at " << i;
  }
}

TEST(SuffixArray, SymbolOutOfRangeThrows) {
  const std::string t(3, '\7');
  EXPECT_THROW(build_suffix_array(t, 4), std::invalid_argument);
}

TEST(SuffixArray, InvertIsInverse) {
  const std::string t = random_text(44, 500, 4);
  const auto sa = build_suffix_array(t, 4);
  const auto rank = invert_suffix_array(sa);
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(rank[static_cast<std::size_t>(sa[i])],
              static_cast<std::int32_t>(i));
  }
}

}  // namespace
}  // namespace pclust::suffix
