#include "pclust/suffix/maximal_match.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "pclust/synth/generator.hpp"

namespace pclust::suffix {
namespace {

struct Fixture {
  seq::SequenceSet set;
  std::unique_ptr<ConcatText> text;
  std::vector<std::int32_t> sa;
  std::vector<std::int32_t> lcp;

  explicit Fixture(const seq::SequenceSet& sequences) : set(sequences) {
    init();
  }
  explicit Fixture(std::initializer_list<const char*> seqs) {
    int i = 0;
    for (const char* s : seqs) set.add("s" + std::to_string(i++), s);
    init();
  }
  void init() {
    text = std::make_unique<ConcatText>(set);
    sa = build_suffix_array(text->text(), seq::kIndexAlphabetSize);
    lcp = build_lcp(*text, sa);
  }
  [[nodiscard]] std::vector<MaximalMatch> matches(
      MaximalMatchParams params = {}) const {
    return MaximalMatchEnumerator(*text, sa, lcp, params).all();
  }
};

using Key = std::tuple<seq::SeqId, seq::SeqId, std::uint32_t, std::uint32_t,
                       std::uint32_t>;

Key key(const MaximalMatch& m) {
  return {m.a, m.b, m.a_pos, m.b_pos, m.length};
}

/// O(n^2 * len^2) reference: every position pair across different sequences,
/// extended maximally and tested for flank maximality.
std::multiset<Key> brute_force(const seq::SequenceSet& set,
                               std::uint32_t min_len) {
  std::multiset<Key> out;
  for (seq::SeqId a = 0; a < set.size(); ++a) {
    for (seq::SeqId b = a + 1; b < set.size(); ++b) {
      const auto sa_res = set.residues(a);
      const auto sb_res = set.residues(b);
      for (std::uint32_t i = 0; i < sa_res.size(); ++i) {
        for (std::uint32_t j = 0; j < sb_res.size(); ++j) {
          // Left-maximal?
          if (i > 0 && j > 0 && sa_res[i - 1] == sb_res[j - 1]) continue;
          std::uint32_t len = 0;
          while (i + len < sa_res.size() && j + len < sb_res.size() &&
                 sa_res[i + len] == sb_res[j + len]) {
            ++len;
          }
          if (len < min_len) continue;  // also skips len == 0 (right-maximal)
          out.insert({a, b, i, j, len});
        }
      }
    }
  }
  return out;
}

TEST(MaximalMatch, SimpleSharedWord) {
  Fixture f({"WWWDEFGHIKWWW", "MMDEFGHIKMM"});
  MaximalMatchParams p;
  p.min_length = 5;
  const auto ms = f.matches(p);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_EQ(ms[0].a, 0u);
  EXPECT_EQ(ms[0].b, 1u);
  EXPECT_EQ(ms[0].a_pos, 3u);
  EXPECT_EQ(ms[0].b_pos, 2u);
  EXPECT_EQ(ms[0].length, 7u);
  EXPECT_EQ(ms[0].diagonal(), 1);
}

TEST(MaximalMatch, NoMatchBelowThreshold) {
  Fixture f({"WWWDEFWWW", "MMDEFMM"});
  MaximalMatchParams p;
  p.min_length = 5;
  EXPECT_TRUE(f.matches(p).empty());
  p.min_length = 3;
  EXPECT_EQ(f.matches(p).size(), 1u);
}

TEST(MaximalMatch, MatchAtSequenceBoundariesIsMaximal) {
  // Match runs to both sequence starts and both ends: flanks are
  // boundaries, so it must be reported.
  Fixture f({"DEFGH", "DEFGH"});
  MaximalMatchParams p;
  p.min_length = 5;
  const auto ms = f.matches(p);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_EQ(ms[0].length, 5u);
  EXPECT_EQ(ms[0].a_pos, 0u);
  EXPECT_EQ(ms[0].b_pos, 0u);
}

TEST(MaximalMatch, NonLeftMaximalPairSuppressed) {
  // "ADEFGH" vs "ADEFGH": the length-6 match at (0,0) is reported; the
  // inner (1,1) "DEFGH" must NOT be (same left char 'A').
  Fixture f({"ADEFGH", "ADEFGH"});
  MaximalMatchParams p;
  p.min_length = 4;
  const auto ms = f.matches(p);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_EQ(ms[0].length, 6u);
}

TEST(MaximalMatch, WithinSequenceRepeatsIgnored) {
  Fixture f({"DEFGHDEFGH"});  // repeat within ONE sequence: no pairs
  MaximalMatchParams p;
  p.min_length = 4;
  EXPECT_TRUE(f.matches(p).empty());
}

TEST(MaximalMatch, DecreasingLengthOrder) {
  Fixture f({"AAADEFGHIKLMAAA" "CCQRSTVWCC",
             "MMDEFGHIKLMMM" "WWQRSTVWWW",
             "DEFGHYYYYY"});
  MaximalMatchParams p;
  p.min_length = 5;
  const auto ms = f.matches(p);
  ASSERT_GE(ms.size(), 3u);
  for (std::size_t i = 1; i < ms.size(); ++i) {
    EXPECT_GE(ms[i - 1].length, ms[i].length);
  }
}

TEST(MaximalMatch, PairsNormalized) {
  Fixture f({"MMDEFGHIKMM", "WWWDEFGHIKWWW"});
  MaximalMatchParams p;
  p.min_length = 5;
  for (const auto& m : f.matches(p)) EXPECT_LT(m.a, m.b);
}

class MaximalMatchRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaximalMatchRandom, MatchesBruteForce) {
  synth::DatasetSpec spec;
  spec.seed = GetParam();
  spec.num_sequences = 30;
  spec.num_families = 3;
  spec.mean_length = 60;
  spec.noise_fraction = 0.2;
  spec.redundant_fraction = 0.1;
  spec.max_divergence = 0.2;
  const auto d = synth::generate(spec);
  Fixture f(d.sequences);

  MaximalMatchParams p;
  p.min_length = 6;
  p.max_node_occurrences = 0;  // unlimited: brute force has no cap either
  std::multiset<Key> got;
  for (const auto& m : f.matches(p)) got.insert(key(m));
  const auto expected = brute_force(d.sequences, p.min_length);
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaximalMatchRandom,
                         ::testing::Values(1, 2, 3, 4, 5, 21, 22, 23));

TEST(MaximalMatch, EarlyStopHonored) {
  Fixture f({"DEFGHIKLMN", "DEFGHIKLMN", "DEFGHIKLMN"});
  MaximalMatchParams p;
  p.min_length = 4;
  MaximalMatchEnumerator e(*f.text, f.sa, f.lcp, p);
  int count = 0;
  const auto stats = e.enumerate(
      0, static_cast<std::int32_t>(f.sa.size()) - 1,
      [&count](const MaximalMatch&) { return ++count < 2; });
  EXPECT_EQ(count, 2);
  EXPECT_EQ(stats.pairs_emitted, 2u);
}

TEST(MaximalMatch, BigNodeSkipped) {
  seq::SequenceSet set;
  for (int i = 0; i < 20; ++i) {
    set.add("s" + std::to_string(i), "DEFGHIKLMN");
  }
  Fixture f(set);
  MaximalMatchParams p;
  p.min_length = 4;
  p.max_node_occurrences = 5;
  MaximalMatchEnumerator e(*f.text, f.sa, f.lcp, p);
  const auto stats = e.enumerate(
      0, static_cast<std::int32_t>(f.sa.size()) - 1,
      [](const MaximalMatch&) { return true; });
  EXPECT_GT(stats.nodes_skipped_big, 0u);
  EXPECT_EQ(stats.pairs_emitted, 0u);
}

TEST(PrefixBuckets, CoverAllResiduePositionsDisjointly) {
  synth::DatasetSpec spec;
  spec.num_sequences = 40;
  spec.num_families = 3;
  spec.mean_length = 50;
  const auto d = synth::generate(spec);
  Fixture f(d.sequences);
  MaximalMatchEnumerator e(*f.text, f.sa, f.lcp, {});
  const auto buckets = e.prefix_buckets(3);
  std::vector<bool> covered(f.sa.size(), false);
  for (const auto& b : buckets) {
    ASSERT_LE(b.lb, b.rb);
    for (std::int32_t i = b.lb; i <= b.rb; ++i) {
      ASSERT_FALSE(covered[static_cast<std::size_t>(i)]);
      covered[static_cast<std::size_t>(i)] = true;
    }
    EXPECT_GT(b.weight, 0u);
  }
  // Every non-separator suffix is covered; separator suffixes are not.
  for (std::size_t i = 0; i < f.sa.size(); ++i) {
    const bool sep =
        f.text->is_separator(static_cast<std::size_t>(f.sa[i]));
    EXPECT_EQ(covered[i], !sep) << "SA index " << i;
  }
}

TEST(PrefixBuckets, UnionOfBucketEnumerationsEqualsWhole) {
  synth::DatasetSpec spec;
  spec.seed = 77;
  spec.num_sequences = 40;
  spec.num_families = 4;
  spec.mean_length = 60;
  const auto d = synth::generate(spec);
  Fixture f(d.sequences);
  MaximalMatchParams p;
  p.min_length = 6;
  MaximalMatchEnumerator e(*f.text, f.sa, f.lcp, p);

  std::multiset<Key> whole;
  for (const auto& m : e.all()) whole.insert(key(m));

  std::multiset<Key> pieced;
  for (const auto& b : e.prefix_buckets(3)) {
    e.enumerate(b.lb, b.rb, [&pieced](const MaximalMatch& m) {
      pieced.insert(key(m));
      return true;
    });
  }
  EXPECT_EQ(whole, pieced);
}

}  // namespace
}  // namespace pclust::suffix

// -- Tree-backend equivalence -------------------------------------------
#include "pclust/suffix/suffix_tree.hpp"

namespace pclust::suffix {
namespace {

class TreeBackendEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(TreeBackendEquivalence, IdenticalPairSequence) {
  synth::DatasetSpec spec;
  spec.seed = GetParam();
  spec.num_sequences = 50;
  spec.num_families = 4;
  spec.mean_length = 70;
  spec.noise_fraction = 0.2;
  spec.redundant_fraction = 0.1;
  const auto d = synth::generate(spec);
  Fixture f(d.sequences);

  MaximalMatchParams p;
  p.min_length = 8;
  MaximalMatchEnumerator flat(*f.text, f.sa, f.lcp, p);
  std::vector<MaximalMatch> from_flat;
  flat.enumerate(0, static_cast<std::int32_t>(f.sa.size()) - 1,
                 [&](const MaximalMatch& m) {
                   from_flat.push_back(m);
                   return true;
                 });

  const SuffixTree tree(*f.text, f.sa, f.lcp);
  std::vector<MaximalMatch> from_tree;
  const auto stats = enumerate_from_tree(tree, *f.text, f.sa, p,
                                         [&](const MaximalMatch& m) {
                                           from_tree.push_back(m);
                                           return true;
                                         });
  // Not just the same set: the identical emission sequence.
  EXPECT_EQ(from_flat, from_tree);
  EXPECT_EQ(stats.pairs_emitted, from_flat.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeBackendEquivalence,
                         ::testing::Values(61, 62, 63, 64));

TEST(TreeBackend, EarlyStopAndBigNodeSkip) {
  seq::SequenceSet set;
  for (int i = 0; i < 8; ++i) set.add("s" + std::to_string(i), "DEFGHIKLMN");
  Fixture f(set);
  MaximalMatchParams p;
  p.min_length = 4;
  const SuffixTree tree(*f.text, f.sa, f.lcp);
  int count = 0;
  enumerate_from_tree(tree, *f.text, f.sa, p, [&count](const MaximalMatch&) {
    return ++count < 3;
  });
  EXPECT_EQ(count, 3);

  p.max_node_occurrences = 4;
  const auto stats = enumerate_from_tree(tree, *f.text, f.sa, p,
                                         [](const MaximalMatch&) {
                                           return true;
                                         });
  EXPECT_GT(stats.nodes_skipped_big, 0u);
}

}  // namespace
}  // namespace pclust::suffix
