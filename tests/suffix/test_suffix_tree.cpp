#include "pclust/suffix/suffix_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>

#include "pclust/suffix/lcp.hpp"
#include "pclust/suffix/suffix_array.hpp"
#include "pclust/synth/generator.hpp"

namespace pclust::suffix {
namespace {

struct Fixture {
  seq::SequenceSet set;
  std::unique_ptr<ConcatText> text;
  std::vector<std::int32_t> sa;
  std::vector<std::int32_t> lcp;
  std::unique_ptr<SuffixTree> tree;

  explicit Fixture(std::initializer_list<const char*> seqs) {
    int i = 0;
    for (const char* s : seqs) set.add("s" + std::to_string(i++), s);
    text = std::make_unique<ConcatText>(set);
    sa = build_suffix_array(text->text(), seq::kIndexAlphabetSize);
    lcp = build_lcp(*text, sa);
    tree = std::make_unique<SuffixTree>(*text, sa, lcp);
  }
};

/// Brute-force truncated LCP of two suffixes.
std::int32_t ref_lcp(const ConcatText& t, std::size_t a, std::size_t b) {
  std::int32_t k = 0;
  while (a + static_cast<std::size_t>(k) < t.size() &&
         b + static_cast<std::size_t>(k) < t.size() &&
         t.at(a + static_cast<std::size_t>(k)) ==
             t.at(b + static_cast<std::size_t>(k)) &&
         !t.is_separator(a + static_cast<std::size_t>(k))) {
    ++k;
  }
  return k;
}

TEST(Lcp, MatchesBruteForceOnRandomData) {
  synth::DatasetSpec spec;
  spec.num_sequences = 60;
  spec.num_families = 4;
  spec.mean_length = 50;
  spec.noise_fraction = 0.2;
  spec.redundant_fraction = 0.1;
  const auto d = synth::generate(spec);
  const ConcatText text(d.sequences);
  const auto sa = build_suffix_array(text.text(), seq::kIndexAlphabetSize);
  const auto lcp = build_lcp(text, sa);
  ASSERT_EQ(lcp.size(), sa.size());
  EXPECT_EQ(lcp[0], 0);
  for (std::size_t i = 1; i < sa.size(); ++i) {
    ASSERT_EQ(lcp[i],
              ref_lcp(text, static_cast<std::size_t>(sa[i - 1]),
                      static_cast<std::size_t>(sa[i])))
        << "at SA index " << i;
  }
}

TEST(Lcp, NeverCrossesSeparators) {
  Fixture f({"ACDE", "ACDE"});  // identical sequences
  // Max LCP is 4 (the sequence length), never 5+ across the separator.
  for (auto v : f.lcp) EXPECT_LE(v, 4);
  EXPECT_NE(std::count(f.lcp.begin(), f.lcp.end(), 4), 0);
}

TEST(SuffixTree, RootCoversEverything) {
  Fixture f({"ACDE", "FGH"});
  const auto& root = f.tree->node(f.tree->root());
  EXPECT_EQ(root.depth, 0);
  EXPECT_EQ(root.lb, 0);
  EXPECT_EQ(root.rb, static_cast<std::int32_t>(f.sa.size()) - 1);
  EXPECT_EQ(root.parent, SuffixTree::kNoNode);
}

TEST(SuffixTree, ParentChildInvariants) {
  Fixture f({"ACDEACDE", "CDEACD", "ACAC"});
  const auto& tree = *f.tree;
  for (SuffixTree::NodeId v = 0;
       v < static_cast<SuffixTree::NodeId>(tree.node_count()); ++v) {
    const auto& node = tree.node(v);
    EXPECT_LE(node.lb, node.rb);
    if (node.parent != SuffixTree::kNoNode) {
      const auto& parent = tree.node(node.parent);
      EXPECT_LT(parent.depth, node.depth);
      EXPECT_LE(parent.lb, node.lb);
      EXPECT_GE(parent.rb, node.rb);
    } else {
      EXPECT_EQ(v, tree.root());
    }
  }
}

TEST(SuffixTree, ChildrenAreDisjointAndOrdered) {
  Fixture f({"ACDEACDE", "CDEACD", "ACAC"});
  const auto& tree = *f.tree;
  for (SuffixTree::NodeId v = 0;
       v < static_cast<SuffixTree::NodeId>(tree.node_count()); ++v) {
    const auto kids = tree.children(v);
    for (std::size_t i = 0; i < kids.size(); ++i) {
      EXPECT_EQ(tree.node(kids[i]).parent, v);
      if (i > 0) {
        EXPECT_GT(tree.node(kids[i]).lb, tree.node(kids[i - 1]).rb);
      }
    }
  }
}

TEST(SuffixTree, EveryNodeDepthIsIntervalMinimum) {
  Fixture f({"MKTAYIAKQR", "MKTAYIAKQA", "TAYIAK"});
  const auto& tree = *f.tree;
  for (SuffixTree::NodeId v = 0;
       v < static_cast<SuffixTree::NodeId>(tree.node_count()); ++v) {
    const auto& node = tree.node(v);
    if (node.lb == node.rb) continue;
    std::int32_t min_lcp = INT32_MAX;
    for (std::int32_t i = node.lb + 1; i <= node.rb; ++i) {
      min_lcp = std::min(min_lcp, f.lcp[static_cast<std::size_t>(i)]);
    }
    EXPECT_EQ(node.depth, min_lcp) << "node " << v;
  }
}

TEST(SuffixTree, LeafParentIsDeepestCover) {
  Fixture f({"ACDEACDE", "CDEACD"});
  const auto& tree = *f.tree;
  for (std::size_t i = 0; i < f.sa.size(); ++i) {
    const auto p = tree.leaf_parent(static_cast<std::int32_t>(i));
    const auto& node = tree.node(p);
    EXPECT_LE(node.lb, static_cast<std::int32_t>(i));
    EXPECT_GE(node.rb, static_cast<std::int32_t>(i));
    // No child of p covers i (p is deepest).
    for (auto c : tree.children(p)) {
      const auto& child = tree.node(c);
      EXPECT_TRUE(static_cast<std::int32_t>(i) < child.lb ||
                  static_cast<std::int32_t>(i) > child.rb);
    }
  }
}

TEST(SuffixTree, NodesByDepthSortedAndFiltered) {
  Fixture f({"ACDEACDEACDE", "DEACDEAC"});
  const auto nodes = f.tree->nodes_by_depth(2);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_GE(f.tree->node(nodes[i]).depth, 2);
    if (i > 0) {
      EXPECT_GE(f.tree->node(nodes[i - 1]).depth,
                f.tree->node(nodes[i]).depth);
    }
  }
}

TEST(SuffixTree, IdenticalSequencesShareDeepNode) {
  Fixture f({"MKTAYIAKQR", "MKTAYIAKQR"});
  const auto nodes = f.tree->nodes_by_depth(10);
  ASSERT_FALSE(nodes.empty());
  EXPECT_EQ(f.tree->node(nodes[0]).depth, 10);
  EXPECT_EQ(f.tree->leaf_count(nodes[0]), 2);
}

TEST(SuffixTree, TotalEdgeCharsPositive) {
  Fixture f({"ACDE", "ACDF"});
  EXPECT_GT(f.tree->total_edge_chars(), 0u);
}

TEST(SuffixTree, EmptyTextSafe) {
  seq::SequenceSet set;
  const ConcatText text(set);
  const std::vector<std::int32_t> sa, lcp;
  const SuffixTree tree(text, sa, lcp);
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(SuffixTree, MemoryUsageGrowsWithInput) {
  // The paper's GST is linear-space; at minimum the breakdown must name
  // every array, be non-zero on a real tree, and grow with the text.
  Fixture small({"ACDE", "ACDF"});
  const auto b = small.tree->memory_usage();
  EXPECT_EQ(b.name, "suffix_tree");
  EXPECT_EQ(b.parts.size(), 4u);
  EXPECT_GT(b.total(), 0u);

  Fixture big({"ACDEFGHIKLMNPQRSTVWY", "ACDEFGHIKLMNPQRSTVWA",
               "YWVTSRQPNMLKIHGFEDCA"});
  EXPECT_GT(big.tree->memory_usage().total(), b.total());

  const auto text_mem = small.text->memory_usage();
  EXPECT_EQ(text_mem.name, "concat_text");
  EXPECT_GT(text_mem.total(), 0u);
}

}  // namespace
}  // namespace pclust::suffix
