#include "pclust/suffix/kmer_index.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "pclust/synth/generator.hpp"

namespace pclust::suffix {
namespace {

TEST(KmerIndex, SharedWordIndexed) {
  seq::SequenceSet set;
  set.add("a", "WWWDEFGHIKLMWWW");
  set.add("b", "MMDEFGHIKLMMM");
  set.add("c", "YYYYYYYYYYYY");
  KmerIndex idx(set, {}, KmerIndex::Params{.w = 10});
  // "DEFGHIKLM" is 9 long; shared 10-mers: "DEFGHIKLMW"? no — shared words
  // must appear in BOTH. Shared substring is "DEFGHIKLM" (9) plus b has
  // "DEFGHIKLMM" and a has "DEFGHIKLMW": no shared 10-mer.
  EXPECT_EQ(idx.word_count(), 0u);

  KmerIndex idx8(set, {}, KmerIndex::Params{.w = 8});
  // 8-mers inside "DEFGHIKLM": DEFGHIKL, EFGHIKLM -> both shared.
  EXPECT_EQ(idx8.word_count(), 2u);
  for (std::size_t w = 0; w < idx8.word_count(); ++w) {
    EXPECT_EQ(idx8.sequences_of(w), (std::vector<seq::SeqId>{0, 1}));
  }
}

TEST(KmerIndex, DecodeWordRoundTrip) {
  seq::SequenceSet set;
  set.add("a", "DEFGHIKLMN");
  set.add("b", "DEFGHIKLMN");
  KmerIndex idx(set, {}, KmerIndex::Params{.w = 10});
  ASSERT_EQ(idx.word_count(), 1u);
  EXPECT_EQ(idx.decode_word(0), "DEFGHIKLMN");
}

TEST(KmerIndex, WordsWithXSkipped) {
  seq::SequenceSet set;
  set.add("a", "DEFGXHIKLMN");
  set.add("b", "DEFGXHIKLMN");
  KmerIndex idx(set, {}, KmerIndex::Params{.w = 6});
  for (std::size_t w = 0; w < idx.word_count(); ++w) {
    EXPECT_EQ(idx.decode_word(w).find('X'), std::string::npos);
  }
  // "HIKLMN" after the X is shared and X-free.
  EXPECT_EQ(idx.word_count(), 1u);
  EXPECT_EQ(idx.decode_word(0), "HIKLMN");
}

TEST(KmerIndex, DuplicateOccurrencesCollapsePerSequence) {
  seq::SequenceSet set;
  set.add("a", "DEFGHIDEFGHI");  // word appears twice in a
  set.add("b", "XXDEFGHIXX");
  KmerIndex idx(set, {}, KmerIndex::Params{.w = 6});
  ASSERT_EQ(idx.word_count(), 1u);
  EXPECT_EQ(idx.sequences_of(0).size(), 2u);  // distinct sequences only
}

TEST(KmerIndex, HighOccurrenceWordsDropped) {
  seq::SequenceSet set;
  for (int i = 0; i < 10; ++i) {
    set.add("s" + std::to_string(i), "DEFGHIKLMN");
  }
  KmerIndex idx(set, {},
                KmerIndex::Params{.w = 10, .max_sequences_per_word = 5});
  EXPECT_EQ(idx.word_count(), 0u);
  EXPECT_EQ(idx.dropped_high_occurrence(), 1u);
}

TEST(KmerIndex, SubsetRestriction) {
  seq::SequenceSet set;
  set.add("a", "DEFGHIKLMN");
  set.add("b", "DEFGHIKLMN");
  set.add("c", "DEFGHIKLMN");
  KmerIndex idx(set, {0, 2}, KmerIndex::Params{.w = 10});
  ASSERT_EQ(idx.word_count(), 1u);
  EXPECT_EQ(idx.sequences_of(0), (std::vector<seq::SeqId>{0, 2}));
}

TEST(KmerIndex, InvalidWThrows) {
  seq::SequenceSet set;
  set.add("a", "DEFGHIKLMN");
  EXPECT_THROW(KmerIndex(set, {}, KmerIndex::Params{.w = 1}),
               std::invalid_argument);
  EXPECT_THROW(KmerIndex(set, {}, KmerIndex::Params{.w = 13}),
               std::invalid_argument);
}

TEST(KmerIndex, MatchesBruteForceOnSynthetic) {
  synth::DatasetSpec spec;
  spec.num_sequences = 50;
  spec.num_families = 4;
  spec.mean_length = 40;
  const auto d = synth::generate(spec);
  const std::uint32_t w = 8;
  KmerIndex idx(d.sequences, {}, KmerIndex::Params{.w = w});

  // Brute force: ASCII w-mers (X-free) -> distinct sequence sets.
  std::map<std::string, std::set<seq::SeqId>> ref;
  for (seq::SeqId id = 0; id < d.sequences.size(); ++id) {
    const std::string ascii = d.sequences.ascii(id);
    if (ascii.size() < w) continue;
    for (std::size_t i = 0; i + w <= ascii.size(); ++i) {
      const std::string word = ascii.substr(i, w);
      if (word.find('X') != std::string::npos) continue;
      ref[word].insert(id);
    }
  }
  std::erase_if(ref, [](const auto& kv) { return kv.second.size() < 2; });

  ASSERT_EQ(idx.word_count(), ref.size());
  for (std::size_t wi = 0; wi < idx.word_count(); ++wi) {
    const auto it = ref.find(idx.decode_word(wi));
    ASSERT_NE(it, ref.end()) << idx.decode_word(wi);
    const auto members = idx.sequences_of(wi);
    EXPECT_EQ(std::set<seq::SeqId>(members.begin(), members.end()),
              it->second);
  }
}

TEST(KmerIndex, MemoryUsageCoversCsrArrays) {
  seq::SequenceSet set;
  set.add("a", "WWWDEFGHIKLMWWW");
  set.add("b", "MMDEFGHIKLMMM");
  const KmerIndex idx(set, {}, KmerIndex::Params{.w = 8});
  ASSERT_GT(idx.word_count(), 0u);
  const auto b = idx.memory_usage();
  EXPECT_EQ(b.name, "kmer_index");
  ASSERT_EQ(b.parts.size(), 3u);
  // One packed u64 per word plus CSR offsets plus member ids.
  EXPECT_GE(b.total(), idx.word_count() * sizeof(std::uint64_t));
}

}  // namespace
}  // namespace pclust::suffix
