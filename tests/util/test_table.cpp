#include "pclust/util/table.hpp"

#include <gtest/gtest.h>

namespace pclust::util {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, TitleAndFootnotes) {
  Table t({"c"});
  t.set_title("TABLE I");
  t.add_footnote("a NR stands for non-redundant.");
  t.add_row({"x"});
  const std::string s = t.to_string();
  EXPECT_EQ(s.rfind("TABLE I", 0), 0u);
  EXPECT_NE(s.find("non-redundant"), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NE(t.to_string().find("| 1 |"), std::string::npos);
}

}  // namespace
}  // namespace pclust::util
