#include "pclust/util/io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "pclust/util/metrics.hpp"

namespace pclust::util::io {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

/// The IoEnv is process-global: every test starts fault-free and leaves
/// the environment fault-free.
class IoEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    io().reset();
    util::metrics().reset();
    dir_ = fs::temp_directory_path() / "pclust-test-io";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    io().reset();
    fs::remove_all(dir_);
  }

  fs::path dir_;
};

// ---- fault plan parsing ------------------------------------------------

TEST(IoFaultPlanTest, ParsesClassKindOrdinalAndSticky) {
  const IoFaultPlan plan =
      IoFaultPlan::parse("checkpoint:enospc@2:sticky, telemetry:eio@5");
  ASSERT_EQ(plan.faults.size(), 2u);
  EXPECT_EQ(plan.faults[0].cls, ArtifactClass::kCheckpoint);
  EXPECT_EQ(plan.faults[0].kind, FaultKind::kEnospc);
  EXPECT_EQ(plan.faults[0].at_write, 2u);
  EXPECT_TRUE(plan.faults[0].sticky);
  EXPECT_EQ(plan.faults[1].cls, ArtifactClass::kTelemetry);
  EXPECT_EQ(plan.faults[1].kind, FaultKind::kEio);
  EXPECT_EQ(plan.faults[1].at_write, 5u);
  EXPECT_FALSE(plan.faults[1].sticky);
}

TEST(IoFaultPlanTest, ParsesEveryClassAndKind) {
  for (const char* cls : {"families", "checkpoint", "report", "telemetry",
                          "trace", "log", "spill"}) {
    for (const char* kind : {"enospc", "eio", "short", "fsync"}) {
      const std::string spec = std::string(cls) + ":" + kind + "@1";
      const IoFaultPlan plan = IoFaultPlan::parse(spec);
      ASSERT_EQ(plan.faults.size(), 1u) << spec;
      EXPECT_EQ(class_name(plan.faults[0].cls), cls);
      EXPECT_EQ(kind_name(plan.faults[0].kind), kind);
    }
  }
}

TEST(IoFaultPlanTest, RoundTripsThroughToString) {
  const std::string spec = "families:eio@3:sticky,log:short@1";
  EXPECT_EQ(IoFaultPlan::parse(spec).to_string(), spec);
}

TEST(IoFaultPlanTest, RejectsMalformedSpecs) {
  for (const char* bad :
       {"families", "families:enospc", "families:bogus@1", "bogus:eio@1",
        "families:eio@x", "families:eio@1:often"}) {
    EXPECT_THROW((void)IoFaultPlan::parse(bad), std::invalid_argument) << bad;
  }
}

TEST(IoFaultPlanTest, StickyMatchesEveryLaterOrdinal) {
  const IoFaultPlan plan = IoFaultPlan::parse("report:eio@3:sticky");
  EXPECT_EQ(plan.fault_at(ArtifactClass::kReport, 2), nullptr);
  EXPECT_NE(plan.fault_at(ArtifactClass::kReport, 3), nullptr);
  EXPECT_NE(plan.fault_at(ArtifactClass::kReport, 100), nullptr);
  EXPECT_EQ(plan.fault_at(ArtifactClass::kFamilies, 3), nullptr);
}

TEST(IoFaultPlanTest, TransientMatchesExactlyOneOrdinal) {
  const IoFaultPlan plan = IoFaultPlan::parse("report:eio@3");
  EXPECT_EQ(plan.fault_at(ArtifactClass::kReport, 2), nullptr);
  EXPECT_NE(plan.fault_at(ArtifactClass::kReport, 3), nullptr);
  EXPECT_EQ(plan.fault_at(ArtifactClass::kReport, 4), nullptr);
}

// ---- commit_file -------------------------------------------------------

TEST_F(IoEnvTest, CommitWritesAtomicallyAndCleansTmp) {
  const fs::path out = dir_ / "fam.tsv";
  EXPECT_EQ(io().commit_file(ArtifactClass::kFamilies, out, "a\tb\n"),
            CommitStatus::kCommitted);
  EXPECT_EQ(slurp(out), "a\tb\n");
  EXPECT_FALSE(fs::exists(out.string() + ".tmp"));
}

TEST_F(IoEnvTest, TransientFaultHealsThroughRetry) {
  io().configure(IoFaultPlan::parse("families:enospc@1"));
  const fs::path out = dir_ / "fam.tsv";
  EXPECT_EQ(io().commit_file(ArtifactClass::kFamilies, out, "data"),
            CommitStatus::kCommitted);
  EXPECT_EQ(slurp(out), "data");
  EXPECT_GE(util::metrics().counter("io.retries").value(), 1u);
  EXPECT_GE(util::metrics().counter("io.faults_injected").value(), 1u);
}

TEST_F(IoEnvTest, StickyFaultOnFatalClassThrowsAttributedError) {
  io().configure(IoFaultPlan::parse("families:enospc@1:sticky"));
  const fs::path out = dir_ / "fam.tsv";
  try {
    (void)io().commit_file(ArtifactClass::kFamilies, out, "data");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.artifact_class(), ArtifactClass::kFamilies);
    EXPECT_EQ(e.path(), out.string());
    EXPECT_NE(std::string(e.what()).find("io[families]"), std::string::npos);
  }
  EXPECT_FALSE(fs::exists(out));
  EXPECT_FALSE(fs::exists(out.string() + ".tmp"));  // no torn tmp left
}

TEST_F(IoEnvTest, StickyFaultOnDropClassDropsAndCounts) {
  io().configure(IoFaultPlan::parse("trace:eio@1:sticky"));
  const fs::path out = dir_ / "trace.json";
  EXPECT_EQ(io().commit_file(ArtifactClass::kTrace, out, "{}"),
            CommitStatus::kDropped);
  EXPECT_FALSE(fs::exists(out));
  EXPECT_EQ(io().dropped(ArtifactClass::kTrace), 1u);
  EXPECT_GE(util::metrics().counter("io.dropped.trace").value(), 1u);
}

TEST_F(IoEnvTest, ShortWriteIsDetectedAndHealed) {
  io().configure(IoFaultPlan::parse("families:short@1"));
  const fs::path out = dir_ / "fam.tsv";
  const std::string bytes(4096, 'x');
  EXPECT_EQ(io().commit_file(ArtifactClass::kFamilies, out, bytes),
            CommitStatus::kCommitted);
  EXPECT_EQ(fs::file_size(out), bytes.size());
  EXPECT_GE(util::metrics().counter("io.retries").value(), 1u);
}

TEST_F(IoEnvTest, FaultTargetsOnlyTheScheduledOrdinal) {
  io().configure(IoFaultPlan::parse("families:enospc@2:sticky"));
  const fs::path first = dir_ / "a.tsv";
  EXPECT_EQ(io().commit_file(ArtifactClass::kFamilies, first, "1"),
            CommitStatus::kCommitted);
  EXPECT_THROW(
      (void)io().commit_file(ArtifactClass::kFamilies, dir_ / "b.tsv", "2"),
      IoError);
}

TEST_F(IoEnvTest, ConfigureResetsPerClassOrdinals) {
  io().configure(IoFaultPlan::parse("families:enospc@1:sticky"));
  EXPECT_THROW(
      (void)io().commit_file(ArtifactClass::kFamilies, dir_ / "a.tsv", "1"),
      IoError);
  // Reconfiguring the same plan restarts the write counters: the next
  // write is ordinal 1 again and the storm still applies.
  io().configure(IoFaultPlan::parse("families:enospc@1:sticky"));
  EXPECT_THROW(
      (void)io().commit_file(ArtifactClass::kFamilies, dir_ / "b.tsv", "2"),
      IoError);
  io().reset();
  EXPECT_EQ(io().commit_file(ArtifactClass::kFamilies, dir_ / "c.tsv", "3"),
            CommitStatus::kCommitted);
}

// ---- admit_append / open_stream ---------------------------------------

TEST_F(IoEnvTest, AdmitAppendDropsExactlyTheScheduledRecord) {
  io().configure(IoFaultPlan::parse("telemetry:eio@2"));
  EXPECT_TRUE(io().admit_append(ArtifactClass::kTelemetry));
  EXPECT_FALSE(io().admit_append(ArtifactClass::kTelemetry));
  EXPECT_TRUE(io().admit_append(ArtifactClass::kTelemetry));
}

TEST_F(IoEnvTest, StickyAppendStormRejectsEverythingFromN) {
  io().configure(IoFaultPlan::parse("telemetry:enospc@2:sticky"));
  EXPECT_TRUE(io().admit_append(ArtifactClass::kTelemetry));
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(io().admit_append(ArtifactClass::kTelemetry));
  }
}

TEST_F(IoEnvTest, OpenFaultAtWriteZeroFailsTheOpen) {
  io().configure(IoFaultPlan::parse("log:eio@0"));
  const std::string path = (dir_ / "sink.log").string();
  EXPECT_EQ(io().open_stream(ArtifactClass::kLog, path, "a"), nullptr);
  // Transient: the second open succeeds.
  std::FILE* f = io().open_stream(ArtifactClass::kLog, path, "a");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
}

// ---- SpillFile ---------------------------------------------------------

TEST_F(IoEnvTest, SpillFileRoundTripsAndRemovesItself) {
  fs::path spilled;
  const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 251, 252};
  {
    SpillFile spill("test-table");
    spill.write(payload.data(), payload.size());
    spill.finish();
    spilled = spill.path();
    EXPECT_TRUE(fs::exists(spilled));
    EXPECT_EQ(spill.bytes_written(), payload.size());
    EXPECT_EQ(spill.read_all(), payload);
  }
  EXPECT_FALSE(fs::exists(spilled));  // destructor removes the file
}

TEST_F(IoEnvTest, SpillWriteFaultThrowsSoCallerKeepsRam) {
  io().configure(IoFaultPlan::parse("spill:enospc@1:sticky"));
  SpillFile spill("test-table");
  const char byte = 'x';
  EXPECT_THROW(spill.write(&byte, 1), IoError);
}

}  // namespace
}  // namespace pclust::util::io
