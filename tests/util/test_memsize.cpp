#include "pclust/util/memsize.hpp"

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "pclust/util/metrics.hpp"

namespace pclust::util {
namespace {

TEST(MemSize, BreakdownTotalsItsParts) {
  MemoryBreakdown b("widget");
  EXPECT_EQ(b.total(), 0u);
  b.add("nodes", 128).add("edges", 64);
  EXPECT_EQ(b.parts.size(), 2u);
  EXPECT_EQ(b.total(), 192u);
}

TEST(MemSize, NestedBreakdownFoldsToSinglePart) {
  MemoryBreakdown inner("inner");
  inner.add("a", 10).add("b", 30);
  MemoryBreakdown outer("outer");
  outer.add("payload", 5).add("inner", inner);
  EXPECT_EQ(outer.parts.size(), 2u);
  EXPECT_EQ(outer.total(), 45u);
}

TEST(MemSize, VectorBytesTracksCapacityNotSize) {
  std::vector<std::uint64_t> v;
  EXPECT_EQ(vector_bytes(v), 0u);
  v.reserve(100);
  v.push_back(1);
  // Capacity is what the allocator holds, regardless of size.
  EXPECT_EQ(vector_bytes(v), v.capacity() * sizeof(std::uint64_t));
  EXPECT_GE(vector_bytes(v), 100 * sizeof(std::uint64_t));
}

TEST(MemSize, StringBytesIgnoresSsoButCountsHeap) {
  // Small strings live in the object; a long one must show heap bytes at
  // least as large as its capacity.
  const std::string small = "ab";
  EXPECT_EQ(string_bytes(small), 0u);
  const std::string big(4096, 'x');
  EXPECT_GE(string_bytes(big), big.capacity());
}

TEST(MemSize, HashContainerBytesScalesWithSizeAndBuckets) {
  std::unordered_map<std::uint64_t, std::uint64_t> m;
  const std::uint64_t empty = hash_container_bytes(m);
  for (std::uint64_t i = 0; i < 1000; ++i) m[i] = i;
  const std::uint64_t filled = hash_container_bytes(m);
  // At minimum: one node (two pointers + kv pair) per element beyond the
  // empty container's bucket array.
  EXPECT_GE(filled, empty + 1000 * (2 * sizeof(void*) + 16));
  EXPECT_GE(filled, m.bucket_count() * sizeof(void*));
}

TEST(MemSize, RssReadsProcAndPeakDominatesCurrent) {
  const std::uint64_t current = current_rss_bytes();
  const std::uint64_t peak = peak_rss_bytes();
  // /proc is present on the platforms we test on; a running process is
  // at least a page resident.
  EXPECT_GT(current, 0u);
  EXPECT_GE(peak, current);
}

TEST(MemSize, RecordMemoryPublishesGaugesWithHighWaterMark) {
  metrics().reset();
  MemoryBreakdown b("memsize_test_struct");
  b.add("nodes", 100).add("edges", 50);
  record_memory(b);

  MetricsSnapshot snap = metrics().snapshot();
  EXPECT_EQ(snap.gauges.at("mem.memsize_test_struct.nodes").last, 100u);
  EXPECT_EQ(snap.gauges.at("mem.memsize_test_struct.edges").last, 50u);
  EXPECT_EQ(snap.gauges.at("mem.memsize_test_struct.total").last, 150u);

  // A smaller second instance must not lower the high-water mark — that is
  // what makes "one index per component" report the largest instance.
  MemoryBreakdown smaller("memsize_test_struct");
  smaller.add("nodes", 10).add("edges", 5);
  record_memory(smaller);
  snap = metrics().snapshot();
  EXPECT_EQ(snap.gauges.at("mem.memsize_test_struct.total").last, 15u);
  EXPECT_EQ(snap.gauges.at("mem.memsize_test_struct.total").max, 150u);
  metrics().reset();
}

TEST(MemSize, RecordMemoryPrefixesGaugeKeys) {
  metrics().reset();
  MemoryBreakdown b("memsize_test_struct");
  b.add("nodes", 7);
  record_memory(b, "rr");
  const MetricsSnapshot snap = metrics().snapshot();
  EXPECT_EQ(snap.gauges.at("mem.rr.memsize_test_struct.nodes").last, 7u);
  EXPECT_EQ(snap.gauges.at("mem.rr.memsize_test_struct.total").last, 7u);
  metrics().reset();
}

}  // namespace
}  // namespace pclust::util
