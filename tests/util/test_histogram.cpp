#include "pclust/util/histogram.hpp"

#include <gtest/gtest.h>

namespace pclust::util {
namespace {

TEST(Histogram, BucketBoundaries) {
  Histogram h(5, 5, 30);  // buckets: 5-9, 10-14, 15-19, 20-24, 25-29
  EXPECT_EQ(h.bucket_count(), 5u);
  EXPECT_EQ(h.bucket_lo(0), 5);
  EXPECT_EQ(h.bucket_hi(0), 9);
  EXPECT_EQ(h.bucket_label(0), "5-9");
  EXPECT_EQ(h.bucket_label(4), "25-29");
}

TEST(Histogram, AddRoutesToCorrectBucket) {
  Histogram h(5, 5, 30);
  h.add(5);
  h.add(9);
  h.add(10);
  h.add(29);
  EXPECT_EQ(h.count(0), 2);
  EXPECT_EQ(h.count(1), 1);
  EXPECT_EQ(h.count(4), 1);
}

TEST(Histogram, UnderflowAndOverflow) {
  Histogram h(5, 5, 30);
  h.add(4);
  h.add(0);
  h.add(30);
  h.add(7000);  // the paper's 7K-sequence giant subgraph is "off the plot"
  EXPECT_EQ(h.underflow(), 2);
  EXPECT_EQ(h.overflow(), 2);
  EXPECT_EQ(h.total(), 4);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0, 10, 100);
  h.add(15, 7);
  EXPECT_EQ(h.count(1), 7);
  EXPECT_EQ(h.total(), 7);
}

TEST(Histogram, InvalidArgsThrow) {
  EXPECT_THROW(Histogram(0, 0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(10, 5, 10), std::invalid_argument);
}

TEST(Histogram, PercentileEmptyReturnsZero) {
  const Histogram h(5, 5, 30);
  EXPECT_EQ(h.percentile(0.0), 0);
  EXPECT_EQ(h.percentile(50.0), 0);
  EXPECT_EQ(h.percentile(100.0), 0);
}

TEST(Histogram, PercentileSingleValue) {
  Histogram h(0, 10, 100);
  h.add(42);  // bucket 4 = [40, 49]
  EXPECT_EQ(h.percentile(0.0), 49);
  EXPECT_EQ(h.percentile(50.0), 49);
  EXPECT_EQ(h.percentile(100.0), 49);
}

TEST(Histogram, PercentileCeilRankAcrossBuckets) {
  Histogram h(0, 10, 100);
  h.add(5, 50);   // bucket 0 -> hi 9
  h.add(95, 50);  // bucket 9 -> hi 99
  EXPECT_EQ(h.percentile(10.0), 9);
  EXPECT_EQ(h.percentile(50.0), 9);    // ceil-rank: 50th sample is bucket 0
  EXPECT_EQ(h.percentile(51.0), 99);
  EXPECT_EQ(h.percentile(100.0), 99);
}

TEST(Histogram, PercentileUnderflowResolvesBelowLo) {
  Histogram h(10, 5, 30);
  h.add(3);    // underflow
  h.add(12);   // bucket 0 -> hi 14
  EXPECT_EQ(h.percentile(25.0), 9);  // lo - 1
  EXPECT_EQ(h.percentile(100.0), 14);
}

TEST(Histogram, PercentileOverflowResolvesToRoundedCap) {
  Histogram h(0, 10, 100);
  h.add(5);
  h.add(7000);  // overflow
  // Overflow resolves to lo + bucket_count*width (the rounded-up cap);
  // monotone above the last in-range bucket's upper bound.
  EXPECT_EQ(h.percentile(100.0), 100);
  EXPECT_GE(h.percentile(100.0), h.percentile(50.0));
}

TEST(Histogram, PercentileClampsOutOfRangeP) {
  Histogram h(0, 10, 100);
  h.add(15);
  EXPECT_EQ(h.percentile(-5.0), h.percentile(0.0));
  EXPECT_EQ(h.percentile(250.0), h.percentile(100.0));
}

TEST(Histogram, ToStringListsNonEmptyBuckets) {
  Histogram h(0, 5, 20);
  h.add(2);
  h.add(17);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("0-4"), std::string::npos);
  EXPECT_NE(s.find("15-19"), std::string::npos);
  EXPECT_EQ(s.find("5-9"), std::string::npos);
}

}  // namespace
}  // namespace pclust::util
