#include "pclust/util/histogram.hpp"

#include <gtest/gtest.h>

namespace pclust::util {
namespace {

TEST(Histogram, BucketBoundaries) {
  Histogram h(5, 5, 30);  // buckets: 5-9, 10-14, 15-19, 20-24, 25-29
  EXPECT_EQ(h.bucket_count(), 5u);
  EXPECT_EQ(h.bucket_lo(0), 5);
  EXPECT_EQ(h.bucket_hi(0), 9);
  EXPECT_EQ(h.bucket_label(0), "5-9");
  EXPECT_EQ(h.bucket_label(4), "25-29");
}

TEST(Histogram, AddRoutesToCorrectBucket) {
  Histogram h(5, 5, 30);
  h.add(5);
  h.add(9);
  h.add(10);
  h.add(29);
  EXPECT_EQ(h.count(0), 2);
  EXPECT_EQ(h.count(1), 1);
  EXPECT_EQ(h.count(4), 1);
}

TEST(Histogram, UnderflowAndOverflow) {
  Histogram h(5, 5, 30);
  h.add(4);
  h.add(0);
  h.add(30);
  h.add(7000);  // the paper's 7K-sequence giant subgraph is "off the plot"
  EXPECT_EQ(h.underflow(), 2);
  EXPECT_EQ(h.overflow(), 2);
  EXPECT_EQ(h.total(), 4);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0, 10, 100);
  h.add(15, 7);
  EXPECT_EQ(h.count(1), 7);
  EXPECT_EQ(h.total(), 7);
}

TEST(Histogram, InvalidArgsThrow) {
  EXPECT_THROW(Histogram(0, 0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(10, 5, 10), std::invalid_argument);
}

TEST(Histogram, ToStringListsNonEmptyBuckets) {
  Histogram h(0, 5, 20);
  h.add(2);
  h.add(17);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("0-4"), std::string::npos);
  EXPECT_NE(s.find("15-19"), std::string::npos);
  EXPECT_EQ(s.find("5-9"), std::string::npos);
}

}  // namespace
}  // namespace pclust::util
