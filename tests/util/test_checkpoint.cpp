#include "pclust/util/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace pclust::util {
namespace {

namespace fs = std::filesystem;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pclust_ckpt_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path file(const char* name) const { return dir_ / name; }

  fs::path dir_;
};

TEST_F(CheckpointTest, Crc32MatchesKnownVector) {
  // The classic IEEE check value for "123456789".
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST_F(CheckpointTest, RoundTripsEveryFieldType) {
  CheckpointWriter w;
  w.u8(7);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.f64(-2.5e300);
  w.str("protein families");
  w.u8_vec({0, 1, 255});
  w.u32_vec({42, 0, 0xFFFFFFFFu});
  w.u64_vec({});
  write_checkpoint(file("t.ckpt"), 9, 3, w);

  std::uint32_t version = 0;
  CheckpointReader r = read_checkpoint(file("t.ckpt"), 9, 3, &version);
  EXPECT_EQ(version, 3u);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.f64(), -2.5e300);
  EXPECT_EQ(r.str(), "protein families");
  EXPECT_EQ(r.u8_vec(), (std::vector<std::uint8_t>{0, 1, 255}));
  EXPECT_EQ(r.u32_vec(), (std::vector<std::uint32_t>{42, 0, 0xFFFFFFFFu}));
  EXPECT_TRUE(r.u64_vec().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST_F(CheckpointTest, EveryCorruptByteIsDetected) {
  CheckpointWriter w;
  w.u64(123456789);
  w.str("payload under test");
  write_checkpoint(file("c.ckpt"), 2, 1, w);

  std::ifstream in(file("c.ckpt"), std::ios::binary);
  std::vector<char> original((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  in.close();

  for (std::size_t i = 0; i < original.size(); ++i) {
    std::vector<char> bytes = original;
    bytes[i] = static_cast<char>(bytes[i] ^ 0x5A);
    std::ofstream out(file("c.ckpt"), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    EXPECT_THROW((void)read_checkpoint(file("c.ckpt"), 2, 1), CheckpointError)
        << "flipped byte " << i << " was accepted";
    EXPECT_FALSE(checkpoint_valid(file("c.ckpt"), 2, 1));
  }
}

TEST_F(CheckpointTest, TruncationIsDetected) {
  CheckpointWriter w;
  w.u32_vec({1, 2, 3, 4, 5});
  write_checkpoint(file("t.ckpt"), 1, 1, w);
  const auto full_size = fs::file_size(file("t.ckpt"));
  for (const std::uintmax_t keep : {std::uintmax_t{0}, std::uintmax_t{10},
                                    full_size - 1}) {
    fs::resize_file(file("t.ckpt"), keep);
    EXPECT_THROW((void)read_checkpoint(file("t.ckpt"), 1, 1), CheckpointError)
        << "kept " << keep << " bytes";
    // restore for the next iteration
    CheckpointWriter again;
    again.u32_vec({1, 2, 3, 4, 5});
    write_checkpoint(file("t.ckpt"), 1, 1, again);
  }
}

TEST_F(CheckpointTest, WrongPhaseTagRejected) {
  CheckpointWriter w;
  w.u8(1);
  write_checkpoint(file("p.ckpt"), 3, 1, w);
  EXPECT_THROW((void)read_checkpoint(file("p.ckpt"), 4, 1), CheckpointError);
  EXPECT_TRUE(checkpoint_valid(file("p.ckpt"), 3, 1));
  EXPECT_FALSE(checkpoint_valid(file("p.ckpt"), 4, 1));
}

TEST_F(CheckpointTest, NewerPayloadVersionRejected) {
  CheckpointWriter w;
  w.u8(1);
  write_checkpoint(file("v.ckpt"), 3, 2, w);
  EXPECT_THROW((void)read_checkpoint(file("v.ckpt"), 3, 1), CheckpointError);
  EXPECT_NO_THROW((void)read_checkpoint(file("v.ckpt"), 3, 5));
}

TEST_F(CheckpointTest, MissingFileRejected) {
  EXPECT_THROW((void)read_checkpoint(file("absent.ckpt"), 1, 1),
               CheckpointError);
  EXPECT_FALSE(checkpoint_valid(file("absent.ckpt"), 1, 1));
}

TEST_F(CheckpointTest, ReaderOverrunThrows) {
  CheckpointWriter w;
  w.u32(1);
  write_checkpoint(file("o.ckpt"), 1, 1, w);
  CheckpointReader r = read_checkpoint(file("o.ckpt"), 1, 1);
  (void)r.u32();
  EXPECT_THROW((void)r.u32(), CheckpointError);
}

TEST_F(CheckpointTest, RewriteIsAtomicNoTmpResidue) {
  CheckpointWriter w1;
  w1.str("generation one");
  write_checkpoint(file("a.ckpt"), 1, 1, w1);
  CheckpointWriter w2;
  w2.str("generation two");
  write_checkpoint(file("a.ckpt"), 1, 1, w2);

  CheckpointReader r = read_checkpoint(file("a.ckpt"), 1, 1);
  EXPECT_EQ(r.str(), "generation two");
  // The tmp staging file must not be left behind.
  EXPECT_FALSE(fs::exists(file("a.ckpt.tmp")));
}

// ---- generation rotation + fault-tolerant recovery --------------------

TEST_F(CheckpointTest, KeepPreviousRotatesLastGoodGeneration) {
  CheckpointWriter g1;
  g1.str("generation one");
  write_checkpoint(file("r.ckpt"), 1, 1, g1, /*keep_previous=*/true);
  EXPECT_FALSE(fs::exists(checkpoint_backup_path(file("r.ckpt"))));

  CheckpointWriter g2;
  g2.str("generation two");
  write_checkpoint(file("r.ckpt"), 1, 1, g2, /*keep_previous=*/true);

  CheckpointReader primary = read_checkpoint(file("r.ckpt"), 1, 1);
  EXPECT_EQ(primary.str(), "generation two");
  CheckpointReader backup =
      read_checkpoint(checkpoint_backup_path(file("r.ckpt")), 1, 1);
  EXPECT_EQ(backup.str(), "generation one");
}

TEST_F(CheckpointTest, QuarantineMovesFileAside) {
  CheckpointWriter w;
  w.u32(7);
  write_checkpoint(file("q.ckpt"), 1, 1, w);
  const fs::path moved = quarantine_checkpoint(file("q.ckpt"));
  EXPECT_EQ(moved, checkpoint_quarantine_path(file("q.ckpt")));
  EXPECT_FALSE(fs::exists(file("q.ckpt")));
  EXPECT_TRUE(fs::exists(moved));
}

TEST_F(CheckpointTest, RecoverPrefersHealthyPrimary) {
  CheckpointWriter g1;
  g1.str("old");
  write_checkpoint(file("h.ckpt"), 1, 1, g1, true);
  CheckpointWriter g2;
  g2.str("new");
  write_checkpoint(file("h.ckpt"), 1, 1, g2, true);

  CheckpointRecovery rec = recover_checkpoint(file("h.ckpt"), 1, 1);
  ASSERT_TRUE(rec.reader.has_value());
  EXPECT_FALSE(rec.from_backup);
  EXPECT_TRUE(rec.events.empty());
  EXPECT_EQ(rec.reader->str(), "new");
}

TEST_F(CheckpointTest, RecoverRollsBackToBackupAndQuarantines) {
  CheckpointWriter g1;
  g1.str("last good");
  write_checkpoint(file("b.ckpt"), 1, 1, g1, true);
  CheckpointWriter g2;
  g2.str("doomed");
  write_checkpoint(file("b.ckpt"), 1, 1, g2, true);
  // Flip one payload byte of the primary.
  {
    std::fstream io(file("b.ckpt"),
                    std::ios::binary | std::ios::in | std::ios::out);
    io.seekp(30);
    char c = 0;
    io.seekg(30);
    io.get(c);
    io.seekp(30);
    io.put(static_cast<char>(c ^ 0x01));
  }

  CheckpointRecovery rec = recover_checkpoint(file("b.ckpt"), 1, 1);
  ASSERT_TRUE(rec.reader.has_value());
  EXPECT_TRUE(rec.from_backup);
  EXPECT_EQ(rec.reader->str(), "last good");
  EXPECT_TRUE(fs::exists(checkpoint_quarantine_path(file("b.ckpt"))));
  ASSERT_EQ(rec.events.size(), 2u);
  EXPECT_NE(rec.events[0].find("quarantined"), std::string::npos);
  EXPECT_NE(rec.events[1].find("rolled back"), std::string::npos);
}

TEST_F(CheckpointTest, RecoverWithBothGenerationsDamagedMeansRecompute) {
  CheckpointWriter g1;
  g1.str("one");
  write_checkpoint(file("d.ckpt"), 1, 1, g1, true);
  CheckpointWriter g2;
  g2.str("two");
  write_checkpoint(file("d.ckpt"), 1, 1, g2, true);
  fs::resize_file(file("d.ckpt"), 5);
  fs::resize_file(checkpoint_backup_path(file("d.ckpt")), 5);

  CheckpointRecovery rec = recover_checkpoint(file("d.ckpt"), 1, 1);
  EXPECT_FALSE(rec.reader.has_value());
  EXPECT_GE(rec.events.size(), 2u);
  EXPECT_TRUE(fs::exists(checkpoint_quarantine_path(file("d.ckpt"))));
}

TEST_F(CheckpointTest, RecoverMissingFileIsSilentRecompute) {
  CheckpointRecovery rec = recover_checkpoint(file("nope.ckpt"), 1, 1);
  EXPECT_FALSE(rec.reader.has_value());
  EXPECT_TRUE(rec.events.empty());  // nothing to quarantine or roll back
}

TEST_F(CheckpointTest, DamageSweepNeverThrowsAndNeverYieldsWrongData) {
  // The corruption sweep of ISSUE satellite 3: for EVERY truncation length
  // and EVERY single-byte flip, recover_checkpoint must (a) not throw and
  // (b) either decline to resume or return the original payload bytes —
  // damage may cost a recompute but never produces wrong data.
  CheckpointWriter w;
  w.u64(0x1122334455667788ull);
  w.str("sweep payload");
  w.u32_vec({9, 8, 7});
  write_checkpoint(file("s.ckpt"), 6, 2, w);

  std::ifstream in(file("s.ckpt"), std::ios::binary);
  const std::vector<char> original((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
  in.close();

  const auto rewrite = [&](const std::vector<char>& bytes) {
    std::ofstream out(file("s.ckpt"), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };
  const auto check_payload_if_resumed = [&](const char* what, std::size_t i) {
    CheckpointRecovery rec;
    EXPECT_NO_THROW(rec = recover_checkpoint(file("s.ckpt"), 6, 2))
        << what << " " << i;
    if (rec.reader.has_value()) {
      // Only header damage outside the CRC's reach can still resume; the
      // payload it returns must be byte-identical to what was written.
      EXPECT_EQ(rec.reader->u64(), 0x1122334455667788ull) << what << " " << i;
      EXPECT_EQ(rec.reader->str(), "sweep payload") << what << " " << i;
      EXPECT_EQ(rec.reader->u32_vec(), (std::vector<std::uint32_t>{9, 8, 7}))
          << what << " " << i;
    } else {
      EXPECT_TRUE(fs::exists(checkpoint_quarantine_path(file("s.ckpt"))))
          << what << " " << i;
      fs::remove(checkpoint_quarantine_path(file("s.ckpt")));
    }
  };

  for (std::size_t keep = 0; keep < original.size(); ++keep) {
    rewrite(std::vector<char>(original.begin(),
                              original.begin() +
                                  static_cast<std::ptrdiff_t>(keep)));
    CheckpointRecovery rec;
    EXPECT_NO_THROW(rec = recover_checkpoint(file("s.ckpt"), 6, 2))
        << "truncated to " << keep;
    EXPECT_FALSE(rec.reader.has_value()) << "truncated to " << keep;
    fs::remove(checkpoint_quarantine_path(file("s.ckpt")));
  }
  for (std::size_t i = 0; i < original.size(); ++i) {
    for (const char mask : {char(0x01), char(0x80), char(0x5A)}) {
      std::vector<char> bytes = original;
      bytes[i] = static_cast<char>(bytes[i] ^ mask);
      rewrite(bytes);
      check_payload_if_resumed("flipped byte", i);
    }
  }
}

}  // namespace
}  // namespace pclust::util
