#include "pclust/util/trace.hpp"

#include <gtest/gtest.h>

#include "pclust/util/json.hpp"

namespace pclust::util {
namespace {

/// enable() per test, disable() on exit — the tracer is process-global.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { trace::enable(); }
  void TearDown() override { trace::disable(); }
};

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  trace::disable();
  trace::complete(0, 0, "span", "phase", 0.0, 10.0);
  trace::instant(0, 0, "event", "heal", 5.0);
  EXPECT_FALSE(trace::enabled());
  EXPECT_EQ(trace::now_us(), 0.0);
  trace::enable();
  const JsonValue v = parse_json(trace::render_json());
  // Only the pid-0 "pipeline" process metadata from enable() survives.
  for (const JsonValue& e : v.at("traceEvents").array) {
    EXPECT_EQ(e.at("ph").as_string(), "M");
  }
}

TEST_F(TraceTest, EmitsCompleteAndInstantEvents) {
  EXPECT_TRUE(trace::enabled());
  const int pid = trace::begin_process("sim:rr");
  EXPECT_GT(pid, 0);
  EXPECT_EQ(trace::current_pid(), pid);
  trace::name_thread(pid, 1, "worker-1");
  trace::complete(pid, 1, "generate", "generation", 100.0, 50.0);
  trace::instant(pid, 0, "worker_failed", "heal", 125.0);

  const JsonValue v = parse_json(trace::render_json());
  EXPECT_EQ(v.at("displayTimeUnit").as_string(), "ms");
  const auto& events = v.at("traceEvents").array;

  bool saw_complete = false, saw_instant = false, saw_process_name = false,
       saw_thread_name = false;
  for (const JsonValue& e : events) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "X" && e.at("name").as_string() == "generate") {
      saw_complete = true;
      EXPECT_EQ(e.at("pid").as_u64(), static_cast<std::uint64_t>(pid));
      EXPECT_EQ(e.at("tid").as_u64(), 1u);
      EXPECT_DOUBLE_EQ(e.at("ts").as_number(), 100.0);
      EXPECT_DOUBLE_EQ(e.at("dur").as_number(), 50.0);
      EXPECT_EQ(e.at("cat").as_string(), "generation");
    }
    if (ph == "i" && e.at("name").as_string() == "worker_failed") {
      saw_instant = true;
      EXPECT_EQ(e.at("s").as_string(), "t");
    }
    if (ph == "M" && e.at("name").as_string() == "process_name" &&
        e.at("args").at("name").as_string() == "sim:rr") {
      saw_process_name = true;
    }
    if (ph == "M" && e.at("name").as_string() == "thread_name" &&
        e.at("args").at("name").as_string() == "worker-1") {
      saw_thread_name = true;
    }
  }
  EXPECT_TRUE(saw_complete);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_process_name);
  EXPECT_TRUE(saw_thread_name);
}

TEST_F(TraceTest, RenderIsDeterministicForFixedTimestamps) {
  const int pid = trace::begin_process("sim:ccd");
  // Insertion order scrambled relative to timestamps.
  trace::complete(pid, 2, "b", "sim", 30.0, 5.0);
  trace::complete(pid, 1, "a", "sim", 10.0, 5.0);
  trace::instant(pid, 1, "event", "heal", 12.0);
  const std::string first = trace::render_json();

  trace::enable();  // clears the buffer; rebuild in a different order
  const int pid2 = trace::begin_process("sim:ccd");
  ASSERT_EQ(pid2, pid);  // pids restart from 1 after enable()
  trace::instant(pid2, 1, "event", "heal", 12.0);
  trace::complete(pid2, 1, "a", "sim", 10.0, 5.0);
  trace::complete(pid2, 2, "b", "sim", 30.0, 5.0);
  EXPECT_EQ(trace::render_json(), first);
}

TEST_F(TraceTest, WallSpanRecordsOnPipelineTimeline) {
  { const trace::WallSpan span("rr"); }
  const JsonValue v = parse_json(trace::render_json());
  bool found = false;
  for (const JsonValue& e : v.at("traceEvents").array) {
    if (e.at("ph").as_string() == "X" && e.at("name").as_string() == "rr") {
      found = true;
      EXPECT_EQ(e.at("pid").as_u64(), 0u);
      EXPECT_EQ(e.at("cat").as_string(), "phase");
      EXPECT_GE(e.at("dur").as_number(), 0.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TraceTest, SetCurrentPidRoundTrips) {
  const int pid = trace::begin_process("sim:dsd");
  trace::set_current_pid(0);
  EXPECT_EQ(trace::current_pid(), 0);
  trace::set_current_pid(pid);
  EXPECT_EQ(trace::current_pid(), pid);
}

}  // namespace
}  // namespace pclust::util
