#include "pclust/util/jsonl.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace pclust::util {
namespace {

namespace fs = std::filesystem;

class JsonlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (fs::temp_directory_path() / "pclust-test-tail.jsonl").string();
    fs::remove(path_);
  }
  void TearDown() override { fs::remove(path_); }

  void write(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary);
    out << bytes;
  }
  void append(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out << bytes;
  }

  std::string path_;
};

TEST_F(JsonlTest, MissingFileIsNotAnError) {
  JsonlTailReader reader(path_);
  std::vector<std::string> lines;
  EXPECT_FALSE(reader.poll(lines));
  EXPECT_TRUE(lines.empty());
}

TEST_F(JsonlTest, ReadsCompleteLinesAndSkipsBlanks) {
  write("{\"a\":1}\n\n{\"b\":2}\n");
  JsonlTailReader reader(path_);
  std::vector<std::string> lines;
  EXPECT_TRUE(reader.poll(lines));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"a\":1}");
  EXPECT_EQ(lines[1], "{\"b\":2}");
}

TEST_F(JsonlTest, BuffersTornFinalLine) {
  write("{\"a\":1}\n{\"b\":");  // producer killed mid-record
  JsonlTailReader reader(path_);
  std::vector<std::string> lines;
  EXPECT_TRUE(reader.poll(lines));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "{\"a\":1}");
  EXPECT_TRUE(reader.has_partial_tail());
  EXPECT_EQ(reader.partial_tail(), "{\"b\":");
}

TEST_F(JsonlTest, SplicesTailWhenWriterFinishesTheLine) {
  write("{\"a\":1}\n{\"b\":");
  JsonlTailReader reader(path_);
  std::vector<std::string> lines;
  (void)reader.poll(lines);
  lines.clear();

  append("2}\n{\"c\":3}\n");
  EXPECT_TRUE(reader.poll(lines));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"b\":2}");  // torn bytes surface exactly once
  EXPECT_EQ(lines[1], "{\"c\":3}");
  EXPECT_FALSE(reader.has_partial_tail());
}

TEST_F(JsonlTest, PollWithoutGrowthReturnsNothing) {
  write("{\"a\":1}\n");
  JsonlTailReader reader(path_);
  std::vector<std::string> lines;
  (void)reader.poll(lines);
  lines.clear();
  EXPECT_TRUE(reader.poll(lines));
  EXPECT_TRUE(lines.empty());
}

TEST_F(JsonlTest, IncrementalAppendsSurfaceInOrder) {
  JsonlTailReader reader(path_);
  std::vector<std::string> all;
  write("");
  for (int i = 0; i < 5; ++i) {
    append("{\"n\":" + std::to_string(i) + "}\n");
    std::vector<std::string> lines;
    EXPECT_TRUE(reader.poll(lines));
    all.insert(all.end(), lines.begin(), lines.end());
  }
  ASSERT_EQ(all.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(all[static_cast<std::size_t>(i)],
              "{\"n\":" + std::to_string(i) + "}");
  }
}

TEST_F(JsonlTest, TruncatedFileResetsTheReader) {
  write("{\"a\":1}\n{\"b\":2}\n");
  JsonlTailReader reader(path_);
  std::vector<std::string> lines;
  (void)reader.poll(lines);
  lines.clear();

  write("{\"x\":9}\n");  // rotate: smaller than the consumed offset
  EXPECT_TRUE(reader.poll(lines));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "{\"x\":9}");
}

TEST_F(JsonlTest, OffsetPointsAtStartOfBufferedTail) {
  write("abc\ndef");
  JsonlTailReader reader(path_);
  std::vector<std::string> lines;
  (void)reader.poll(lines);
  EXPECT_EQ(reader.offset(), 4u);  // "abc\n" consumed, "def" buffered
  EXPECT_EQ(reader.partial_tail(), "def");
}

TEST_F(JsonlTest, CrlfTailsAreToleratedAsContent) {
  // The reader splits on '\n' only; a '\r' stays in the line (telemetry
  // never writes CRLF, but a reader must not corrupt foreign files).
  write("a\r\nb\n");
  JsonlTailReader reader(path_);
  std::vector<std::string> lines;
  (void)reader.poll(lines);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "a\r");
  EXPECT_EQ(lines[1], "b");
}

}  // namespace
}  // namespace pclust::util
