#include "pclust/util/json.hpp"

#include <gtest/gtest.h>

namespace pclust::util {
namespace {

TEST(JsonWriter, ObjectsArraysAndScalars) {
  JsonWriter w;
  w.begin_object()
      .key("n")
      .value(3)
      .key("xs")
      .begin_array()
      .value(1.5)
      .value(true)
      .null()
      .end_array()
      .key("s")
      .value("hi")
      .end_object();
  EXPECT_EQ(w.str(), R"({"n":3,"xs":[1.5,true,null],"s":"hi"})");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.begin_object().key("k\"1").value("a\\b\n\tc").end_object();
  EXPECT_EQ(w.str(), R"({"k\"1":"a\\b\n\tc"})");
}

TEST(JsonWriter, IntegersStayExact) {
  JsonWriter w;
  w.begin_array()
      .value(std::uint64_t{18446744073709551615ull})
      .value(std::int64_t{-42})
      .end_array();
  EXPECT_EQ(w.str(), "[18446744073709551615,-42]");
}

TEST(JsonWriter, RawNestsPrerenderedDocuments) {
  JsonWriter inner;
  inner.begin_object().key("a").value(1).end_object();
  JsonWriter w;
  w.begin_object().key("inner");
  w.raw(inner.str());
  w.key("b").value(2).end_object();
  EXPECT_EQ(w.str(), R"({"inner":{"a":1},"b":2})");
}

TEST(JsonParse, RoundTripsWriterOutput) {
  JsonWriter w;
  w.begin_object()
      .key("name")
      .value("rr")
      .key("seconds")
      .value(1.25)
      .key("flags")
      .begin_array()
      .value(false)
      .end_array()
      .end_object();
  const JsonValue v = parse_json(w.str());
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("name").as_string(), "rr");
  EXPECT_DOUBLE_EQ(v.at("seconds").as_number(), 1.25);
  ASSERT_TRUE(v.at("flags").is_array());
  EXPECT_FALSE(v.at("flags").array[0].bool_value);
}

TEST(JsonParse, StringEscapes) {
  const JsonValue v = parse_json(R"({"s":"a\"b\\c\ndA"})");
  EXPECT_EQ(v.at("s").as_string(), "a\"b\\c\ndA");
}

TEST(JsonParse, FindReturnsNullptrForMissing) {
  const JsonValue v = parse_json(R"({"a":1})");
  EXPECT_NE(v.find("a"), nullptr);
  EXPECT_EQ(v.find("b"), nullptr);
  EXPECT_THROW((void)v.at("b"), JsonError);
}

TEST(JsonParse, AsU64RequiresNumber) {
  const JsonValue v = parse_json(R"({"n":7,"s":"x"})");
  EXPECT_EQ(v.at("n").as_u64(), 7u);
  EXPECT_THROW((void)v.at("s").as_u64(), JsonError);
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_THROW((void)parse_json(""), JsonError);
  EXPECT_THROW((void)parse_json("{"), JsonError);
  EXPECT_THROW((void)parse_json("[1,]"), JsonError);
  EXPECT_THROW((void)parse_json("{\"a\":1} extra"), JsonError);
  EXPECT_THROW((void)parse_json("{'a':1}"), JsonError);
}

TEST(JsonParse, PreservesObjectInsertionOrder) {
  const JsonValue v = parse_json(R"({"z":1,"a":2})");
  ASSERT_EQ(v.object.size(), 2u);
  EXPECT_EQ(v.object[0].first, "z");
  EXPECT_EQ(v.object[1].first, "a");
}

}  // namespace
}  // namespace pclust::util
