#include "pclust/util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace pclust::util {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(1234);
  SplitMix64 b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, Deterministic) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Xoshiro256, BelowZeroReturnsZero) {
  Xoshiro256 rng(7);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Xoshiro256, BelowOneAlwaysZero) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256, BelowCoversAllValues) {
  Xoshiro256 rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, BetweenInclusiveBounds) {
  Xoshiro256 rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Xoshiro256, ChanceMatchesProbability) {
  Xoshiro256 rng(13);
  int hits = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.25, 0.02);
}

TEST(Xoshiro256, ForkIsIndependentOfDrawCount) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  (void)b();  // advance b only
  Xoshiro256 fa = a.fork(9);
  Xoshiro256 fb = b.fork(9);
  // fork depends only on the *current* state... a and b differ after the
  // draw, which is the intended semantic: children of the same (seed, key)
  // taken at the same point agree.
  Xoshiro256 a2(42);
  Xoshiro256 fa2 = a2.fork(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fa(), fa2());
  (void)fb;
}

TEST(Xoshiro256, ForkKeysGiveDistinctStreams) {
  Xoshiro256 root(42);
  Xoshiro256 c1 = root.fork(1);
  Xoshiro256 c2 = root.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (c1() == c2()) ? 1 : 0;
  EXPECT_LT(equal, 2);
}

TEST(Mix64, AvalanchesSingleBitFlips) {
  // Flipping one input bit should flip roughly half the output bits.
  const std::uint64_t base = mix64(0x123456789abcdef0ULL);
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t other =
        mix64(0x123456789abcdef0ULL ^ (std::uint64_t{1} << bit));
    const int flipped = __builtin_popcountll(base ^ other);
    EXPECT_GT(flipped, 10) << "bit " << bit;
    EXPECT_LT(flipped, 54) << "bit " << bit;
  }
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(hash_combine(0, 1), 2),
            hash_combine(hash_combine(0, 2), 1));
}

}  // namespace
}  // namespace pclust::util
