#include "pclust/util/options.hpp"

#include <gtest/gtest.h>

namespace pclust::util {
namespace {

Options make_opts() {
  Options o;
  o.define("n", "100", "sequence count");
  o.define("scale", "0.5", "scale factor");
  o.define_flag("verbose", "chatty output");
  return o;
}

void parse(Options& o, std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  o.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Options, DefaultsApply) {
  Options o = make_opts();
  parse(o, {});
  EXPECT_EQ(o.get_int("n"), 100);
  EXPECT_DOUBLE_EQ(o.get_double("scale"), 0.5);
  EXPECT_FALSE(o.get_flag("verbose"));
}

TEST(Options, SpaceSeparatedValue) {
  Options o = make_opts();
  parse(o, {"--n", "42"});
  EXPECT_EQ(o.get_int("n"), 42);
}

TEST(Options, EqualsValue) {
  Options o = make_opts();
  parse(o, {"--scale=2.25"});
  EXPECT_DOUBLE_EQ(o.get_double("scale"), 2.25);
}

TEST(Options, FlagSetsTrue) {
  Options o = make_opts();
  parse(o, {"--verbose"});
  EXPECT_TRUE(o.get_flag("verbose"));
}

TEST(Options, Positionals) {
  Options o = make_opts();
  parse(o, {"input.fa", "--n", "7", "output.fa"});
  ASSERT_EQ(o.positionals().size(), 2u);
  EXPECT_EQ(o.positionals()[0], "input.fa");
  EXPECT_EQ(o.positionals()[1], "output.fa");
}

TEST(Options, DoubleDashStopsOptionParsing) {
  Options o = make_opts();
  parse(o, {"--", "--n"});
  ASSERT_EQ(o.positionals().size(), 1u);
  EXPECT_EQ(o.positionals()[0], "--n");
}

TEST(Options, UnknownOptionThrows) {
  Options o = make_opts();
  EXPECT_THROW(parse(o, {"--bogus", "1"}), std::invalid_argument);
}

TEST(Options, MissingValueThrows) {
  Options o = make_opts();
  EXPECT_THROW(parse(o, {"--n"}), std::invalid_argument);
}

TEST(Options, BadIntegerThrows) {
  Options o = make_opts();
  parse(o, {"--n", "12x"});
  EXPECT_THROW({ [[maybe_unused]] auto v = o.get_int("n"); },
               std::invalid_argument);
}

TEST(Options, HelpRequested) {
  Options o = make_opts();
  parse(o, {"--help"});
  EXPECT_TRUE(o.help_requested());
  const std::string u = o.usage("prog", "Test program");
  EXPECT_NE(u.find("--n"), std::string::npos);
  EXPECT_NE(u.find("sequence count"), std::string::npos);
}

TEST(Options, UndeclaredGetThrows) {
  Options o = make_opts();
  parse(o, {});
  EXPECT_THROW({ [[maybe_unused]] auto v = o.get("nope"); },
               std::invalid_argument);
}

}  // namespace
}  // namespace pclust::util
