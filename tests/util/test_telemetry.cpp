#include "pclust/util/telemetry.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <string>
#include <vector>

#include "pclust/util/json.hpp"
#include "pclust/util/log.hpp"

namespace pclust::util::telemetry {
namespace {

// ---------------------------------------------------------------------------
// WatchdogPolicy: pure heuristics, deterministic inputs.

WatchdogInputs at(double t, double last_progress, std::uint64_t done = 1) {
  WatchdogInputs in;
  in.t = t;
  in.phase_active = true;
  in.phase_started = 0.0;
  in.done = done;
  in.last_progress = last_progress;
  in.rss_kb = 1000;
  return in;
}

TEST(WatchdogPolicy, StallWarnsOncePerEpisodeAndRearms) {
  WatchdogLimits limits;
  limits.stall_seconds = 10.0;
  WatchdogPolicy dog(limits);

  EXPECT_TRUE(dog.observe(at(5.0, 0.0)).empty());
  auto warns = dog.observe(at(15.0, 0.0));
  ASSERT_EQ(warns.size(), 1u);
  EXPECT_EQ(warns[0].kind, "stall");
  EXPECT_DOUBLE_EQ(warns[0].stalled_seconds, 15.0);
  EXPECT_TRUE(dog.stalled());
  // Episode continues: no repeat warning.
  EXPECT_TRUE(dog.observe(at(25.0, 0.0)).empty());
  // Progress resumes: re-armed...
  EXPECT_TRUE(dog.observe(at(26.0, 25.5, 2)).empty());
  EXPECT_FALSE(dog.stalled());
  // ...so a second episode warns again.
  warns = dog.observe(at(40.0, 25.5, 2));
  ASSERT_EQ(warns.size(), 1u);
  EXPECT_EQ(warns[0].kind, "stall");
}

TEST(WatchdogPolicy, StallMeasuresFromPhaseStartBeforeFirstProgress) {
  WatchdogLimits limits;
  limits.stall_seconds = 10.0;
  WatchdogPolicy dog(limits);
  WatchdogInputs in = at(8.0, 0.0, 0);
  in.phase_started = 5.0;  // phase began at t=5, so only 3s elapsed
  EXPECT_DOUBLE_EQ(dog.stalled_seconds(in), 3.0);
  EXPECT_TRUE(dog.observe(in).empty());
  in.phase_active = false;
  EXPECT_DOUBLE_EQ(dog.stalled_seconds(in), 0.0);
}

TEST(WatchdogPolicy, RetrySpikeComparesAgainstPreviousObservation) {
  WatchdogLimits limits;
  limits.retry_spike = 4;
  WatchdogPolicy dog(limits);

  // First observation only sets the baseline, however large.
  WatchdogInputs in = at(1.0, 0.5);
  in.link_retries = 100;
  EXPECT_TRUE(dog.observe(in).empty());
  // +3 within one window: below threshold.
  in.t = 2.0;
  in.last_progress = 1.5;
  in.link_retries = 103;
  EXPECT_TRUE(dog.observe(in).empty());
  // +4: spike.
  in.t = 3.0;
  in.last_progress = 2.5;
  in.link_retries = 107;
  auto warns = dog.observe(in);
  ASSERT_EQ(warns.size(), 1u);
  EXPECT_EQ(warns[0].kind, "heartbeat_retries");
}

TEST(WatchdogPolicy, RssGrowthWarnsOncePerPhase) {
  WatchdogLimits limits;
  limits.rss_growth_factor = 1.5;
  limits.rss_window = 3;
  WatchdogPolicy dog(limits);

  const auto feed = [&](std::uint64_t rss_kb) {
    WatchdogInputs in = at(1.0, 0.5);
    in.rss_kb = rss_kb;
    return dog.observe(in);
  };
  EXPECT_TRUE(feed(1000).empty());  // window not yet full
  EXPECT_TRUE(feed(1400).empty());
  // Window {1000,1400,2000}: monotone, ratio 2.0 > 1.5.
  auto warns = feed(2000);
  ASSERT_EQ(warns.size(), 1u);
  EXPECT_EQ(warns[0].kind, "rss_growth");
  // Once per phase.
  EXPECT_TRUE(feed(4000).empty());
  // phase_reset re-arms and clears the history.
  dog.phase_reset();
  EXPECT_TRUE(feed(5000).empty());
  EXPECT_TRUE(feed(8000).empty());
  EXPECT_EQ(feed(9000).size(), 1u);
}

TEST(WatchdogPolicy, NonMonotoneRssDoesNotWarn) {
  WatchdogLimits limits;
  limits.rss_growth_factor = 1.5;
  limits.rss_window = 3;
  WatchdogPolicy dog(limits);
  const auto feed = [&](std::uint64_t rss_kb) {
    WatchdogInputs in = at(1.0, 0.5);
    in.rss_kb = rss_kb;
    return dog.observe(in);
  };
  EXPECT_TRUE(feed(1000).empty());
  EXPECT_TRUE(feed(900).empty());  // dip breaks monotonicity
  EXPECT_TRUE(feed(2000).empty());
}

// ---------------------------------------------------------------------------
// Stream-level tests: enable to a temp file, drive the hooks, parse JSONL.

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Zero the "seq" field so streams with different interleaved wall samples
/// compare equal on their deterministic records.
std::string strip_seq(std::string line) {
  const auto pos = line.find("\"seq\":");
  if (pos == std::string::npos) return line;
  auto end = pos + 6;
  while (end < line.size() && std::isdigit(static_cast<unsigned char>(line[end]))) {
    ++end;
  }
  return line.substr(0, pos + 6) + "0" + line.substr(end);
}

/// enable() per test with a long wall interval (no wall samples interfere),
/// disable() on exit — the stream is process-global.
class TelemetryStreamTest : public ::testing::Test {
 protected:
  void TearDown() override { disable(); }

  TelemetryConfig config(const std::string& name) const {
    TelemetryConfig c;
    c.path = ::testing::TempDir() + name;
    c.command = "test_telemetry";
    c.interval = 3600.0;       // park the wall sampler
    c.virtual_interval = 1.0;  // deterministic virtual cadence
    return c;
  }
};

TEST_F(TelemetryStreamTest, EmitsSchemaValidJsonl) {
  const TelemetryConfig cfg = config("stream_schema.jsonl");
  enable(cfg);
  EXPECT_TRUE(enabled());
  phase_begin("rr", /*virtual_time=*/false, 1, 1);
  progress_enqueued(10);
  progress_done(4);
  progress_merges(2);
  poll_deadline();  // no deadline configured: must not throw
  phase_end("rr", 0.5);
  disable();
  EXPECT_FALSE(enabled());

  const std::vector<std::string> lines = read_lines(cfg.path);
  ASSERT_EQ(lines.size(), 4u);  // start, phase begin, phase end, end

  const JsonValue start = parse_json(lines[0]);
  EXPECT_EQ(start.at("type").as_string(), "start");
  EXPECT_EQ(start.at("schema").as_string(), "pclust-telemetry");
  EXPECT_EQ(start.at("version").as_u64(), 1u);
  EXPECT_EQ(start.at("command").as_string(), "test_telemetry");
  EXPECT_GT(start.at("watchdog").at("wall_stall_seconds").as_number(), 0.0);

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const JsonValue v = parse_json(lines[i]);
    EXPECT_EQ(v.at("seq").as_u64(), i) << lines[i];
    // All four records here are wall-domain: t + ISO-8601 ts present.
    EXPECT_GE(v.at("t").as_number(), 0.0);
    EXPECT_EQ(v.at("ts").as_string().size(), 20u);
  }

  const JsonValue begin = parse_json(lines[1]);
  EXPECT_EQ(begin.at("type").as_string(), "phase");
  EXPECT_EQ(begin.at("event").as_string(), "begin");
  EXPECT_EQ(begin.at("phase").as_string(), "rr");
  EXPECT_EQ(begin.at("mode").as_string(), "wall");
  EXPECT_EQ(begin.at("ranks").as_u64(), 1u);

  const JsonValue end_phase = parse_json(lines[2]);
  EXPECT_EQ(end_phase.at("event").as_string(), "end");
  EXPECT_DOUBLE_EQ(end_phase.at("seconds").as_number(), 0.5);
  EXPECT_EQ(end_phase.at("progress").at("enqueued").as_u64(), 10u);
  EXPECT_EQ(end_phase.at("progress").at("done").as_u64(), 4u);
  EXPECT_EQ(end_phase.at("progress").at("merges").as_u64(), 2u);
  EXPECT_GE(end_phase.at("max_progress_gap").at("wall").as_number(), 0.0);

  const JsonValue end = parse_json(lines[3]);
  EXPECT_EQ(end.at("type").as_string(), "end");
  EXPECT_EQ(end.at("warnings").as_u64(), 0u);
  EXPECT_EQ(end.at("stalls").as_u64(), 0u);
}

/// One scripted virtual phase; returns the mode:"virtual" sample lines.
std::vector<std::string> scripted_virtual_run(const TelemetryConfig& cfg) {
  enable(cfg);
  phase_begin("ccd", /*virtual_time=*/true, 3, 1);
  progress_enqueued(100);
  record_rank(0, "master", 0.1, 0.4, 0.0);
  record_rank(1, "worker", 0.8, 0.1, 0.1);
  record_rank(2, "worker", 0.7, 0.2, 0.1);
  record_round_trip(0.25);
  progress_done_virtual(10, 0.9);
  virtual_tick(1.2);  // crosses vt=1.0
  record_rank(1, "worker", 1.6, 0.2, 0.2);
  record_round_trip(0.5);
  progress_done_virtual(20, 2.1);
  virtual_tick(2.6);  // crosses vt=2.0
  virtual_tick(2.9);  // no crossing: no sample
  phase_end("ccd", 2.9);
  disable();

  std::vector<std::string> samples;
  for (const std::string& line : read_lines(cfg.path)) {
    // phase-begin records carry mode:"virtual" too; samples only here.
    if (line.find("\"type\":\"sample\"") != std::string::npos &&
        line.find("\"mode\":\"virtual\"") != std::string::npos) {
      samples.push_back(strip_seq(line));
    }
  }
  return samples;
}

TEST_F(TelemetryStreamTest, VirtualSamplesAreByteIdenticalAcrossRuns) {
  const auto first = scripted_virtual_run(config("virtual_a.jsonl"));
  const auto second = scripted_virtual_run(config("virtual_b.jsonl"));
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first, second);

  // Virtual-domain records carry no wall-clock fields.
  for (const std::string& line : first) {
    EXPECT_EQ(line.find("\"t\":"), std::string::npos) << line;
    EXPECT_EQ(line.find("\"ts\":"), std::string::npos) << line;
  }

  const JsonValue s0 = parse_json(first[0]);
  EXPECT_EQ(s0.at("type").as_string(), "sample");
  EXPECT_DOUBLE_EQ(s0.at("vt").as_number(), 1.2);
  EXPECT_EQ(s0.at("progress").at("done").as_u64(), 10u);
  // rate = 10 done / 1.2 virtual seconds; ETA covers the remaining 90.
  EXPECT_NEAR(s0.at("rate").as_number(), 10.0 / 1.2, 1e-9);
  EXPECT_NEAR(s0.at("eta_seconds").as_number(), 90.0 / (10.0 / 1.2), 1e-9);
  ASSERT_EQ(s0.at("ranks").array.size(), 3u);
  EXPECT_EQ(s0.at("ranks").array[1].at("level").as_string(), "worker");
  EXPECT_DOUBLE_EQ(s0.at("ranks").array[1].at("busy").as_number(), 0.8);

  // Second sample: per-rank figures are deltas against the first.
  const JsonValue s1 = parse_json(first[1]);
  EXPECT_DOUBLE_EQ(s1.at("ranks").array[1].at("busy").as_number(),
                   1.6 - 0.8);
  EXPECT_DOUBLE_EQ(s1.at("ranks").array[0].at("busy").as_number(), 0.0);
  EXPECT_EQ(s1.at("round_trip_us").at("count").as_u64(), 2u);
}

TEST_F(TelemetryStreamTest, VirtualStallWarnsDeterministically) {
  TelemetryConfig cfg = config("virtual_stall.jsonl");
  cfg.virtual_stall_seconds = 1.0;
  enable(cfg);
  phase_begin("rr", /*virtual_time=*/true, 2, 1);
  progress_done_virtual(1, 0.5);
  progress_done_virtual(1, 5.0);  // 4.5 virtual seconds of silence
  const TelemetryStatus mid = status();
  EXPECT_EQ(mid.warnings, 1u);
  EXPECT_EQ(mid.stalls, 1u);
  progress_done_virtual(1, 12.0);  // already warned this phase: no repeat
  EXPECT_EQ(status().warnings, 1u);
  phase_end("rr", 12.0);
  disable();

  std::vector<JsonValue> warnings;
  JsonValue phase_end_record;
  for (const std::string& line : read_lines(cfg.path)) {
    const JsonValue v = parse_json(line);
    if (v.at("type").as_string() == "warning") warnings.push_back(v);
    if (v.at("type").as_string() == "phase" &&
        v.at("event").as_string() == "end") {
      phase_end_record = v;
    }
  }
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0].at("kind").as_string(), "stall");
  EXPECT_EQ(warnings[0].at("mode").as_string(), "virtual");
  EXPECT_DOUBLE_EQ(warnings[0].at("stalled_seconds").as_number(), 4.5);
  EXPECT_DOUBLE_EQ(warnings[0].at("vt").as_number(), 5.0);
  // The phase-end gap ledger records the worst observed gap (7.0 from the
  // second silence), the calibration basis for --telemetry-stall.
  EXPECT_DOUBLE_EQ(
      phase_end_record.at("max_progress_gap").at("virtual").as_number(), 7.0);
}

TEST_F(TelemetryStreamTest, DisabledHooksAreNoOps) {
  ASSERT_FALSE(enabled());
  phase_begin("rr", true, 4, 1);
  progress_enqueued(5);
  progress_done(5);
  record_rank(1, "worker", 1.0, 0.0, 0.0);
  virtual_tick(10.0);
  poll_deadline();
  phase_end("rr", 1.0);
  const TelemetryStatus s = status();
  EXPECT_FALSE(s.enabled);
  EXPECT_EQ(s.records, 0u);
}

TEST_F(TelemetryStreamTest, StatusReflectsLiveStream) {
  const TelemetryConfig cfg = config("status.jsonl");
  enable(cfg);
  phase_begin("rr", false, 1, 1);
  const TelemetryStatus s = status();
  EXPECT_TRUE(s.enabled);
  EXPECT_EQ(s.path, cfg.path);
  EXPECT_DOUBLE_EQ(s.interval, 3600.0);
  EXPECT_EQ(s.records, 2u);  // start + phase begin
  EXPECT_FALSE(s.fatal);
}

// ---------------------------------------------------------------------------
// Log-line format: ISO-8601 timestamp, then a monotonic sequence number so
// stream consumers can totally order lines within one second.

TEST(LogLine, CarriesTimestampAndMonotonicSequence) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  PCLUST_INFO << "telemetry-log-probe-one";
  PCLUST_INFO << "telemetry-log-probe-two";
  const std::string err = ::testing::internal::GetCapturedStderr();
  set_log_level(saved);

  // Expected shape: [2026-08-08T12:34:56Z#000123 pclust INFO ] msg
  const auto seq_of = [&err](const std::string& probe) -> long {
    const auto msg = err.find(probe);
    if (msg == std::string::npos) return -1;
    const auto open = err.rfind('[', msg);
    const auto hash = err.find('#', open);
    EXPECT_EQ(hash - open, 21u);  // '[' + 20-char ISO-8601 timestamp
    EXPECT_EQ(err[open + 11], 'T');
    EXPECT_EQ(err[hash - 1], 'Z');
    EXPECT_EQ(err.substr(hash + 7, 13), " pclust INFO ");
    return std::stol(err.substr(hash + 1, 6));
  };
  const long first = seq_of("telemetry-log-probe-one");
  const long second = seq_of("telemetry-log-probe-two");
  ASSERT_GT(first, 0);
  EXPECT_EQ(second, first + 1);
}

}  // namespace
}  // namespace pclust::util::telemetry
