#include "pclust/util/strings.hpp"

#include <gtest/gtest.h>

namespace pclust::util {
namespace {

TEST(Split, BasicAndEdgeCases) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(Trim, RemovesEdgesOnly) {
  EXPECT_EQ(trim("  a b \t\n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_TRUE(starts_with("foo", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(WithCommas, Grouping) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(-1234567), "-1,234,567");
}

TEST(FormatDuration, PaperStyleRendering) {
  EXPECT_EQ(format_duration(4.56), "4.56s");
  EXPECT_EQ(format_duration(123), "2m 3s");
  // 3h 20m is how the paper reports the 160K/512-processor run.
  EXPECT_EQ(format_duration(3 * 3600 + 20 * 60), "3h 20m 0s");
}

TEST(Format, PrintfSemantics) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
  EXPECT_EQ(format("plain"), "plain");
}

}  // namespace
}  // namespace pclust::util
