#include "pclust/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace pclust::util {
namespace {

TEST(Summarize, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, SingleValue) {
  const Summary s = summarize({3.5});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Summarize, KnownValues) {
  const Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
}

TEST(Summarize, EvenCountMedianAverages) {
  const Summary s = summarize({1, 2, 3, 10});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(RunningStats, MatchesBatchComputation) {
  RunningStats rs;
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : v) rs.add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.stddev(), 0.0);
}

}  // namespace
}  // namespace pclust::util
