#include "pclust/util/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "pclust/util/json.hpp"

namespace pclust::util {
namespace {

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, SumsAcrossThreads) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kAdds = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(Gauge, TracksLastAndHighWater) {
  Gauge g;
  g.set(10);
  g.set(30);
  g.set(5);
  EXPECT_EQ(g.last(), 5u);
  EXPECT_EQ(g.max(), 30u);
  g.reset();
  EXPECT_EQ(g.last(), 0u);
  EXPECT_EQ(g.max(), 0u);
}

TEST(SizeHistogram, PowerOfTwoBuckets) {
  SizeHistogram h;
  h.add(0);   // bucket 0
  h.add(1);   // bucket 1
  h.add(2);   // bucket 2
  h.add(3);   // bucket 2
  h.add(17);  // bucket 5 (bit width of 17)
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 23u);
  EXPECT_EQ(snap.max, 17u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 2u);
  EXPECT_EQ(snap.buckets[5], 1u);
}

TEST(SizeHistogram, SnapshotPercentileAndMean) {
  SizeHistogram h;
  for (int i = 0; i < 99; ++i) h.add(1);
  h.add(1024);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.percentile(50.0), 1u);
  EXPECT_GE(snap.percentile(100.0), 1024u);
  EXPECT_DOUBLE_EQ(snap.mean(), (99.0 + 1024.0) / 100.0);
  EXPECT_EQ(SizeHistogram::Snapshot{}.percentile(50.0), 0u);
}

TEST(MetricsRegistry, HandlesAreStableAndNamed) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(reg.snapshot().counter("x.count"), 3u);
  EXPECT_EQ(reg.snapshot().counter("missing"), 0u);
}

TEST(MetricsRegistry, ResetZeroesInPlace) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  SizeHistogram& h = reg.histogram("h");
  c.add(7);
  g.set(9);
  h.add(4);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);  // same handle, zeroed in place
  EXPECT_EQ(g.max(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST(MetricsSnapshot, DeltaSinceSubtractsPerName) {
  MetricsRegistry reg;
  Counter& c = reg.counter("work.done");
  SizeHistogram& h = reg.histogram("batch");
  c.add(10);
  h.add(4);
  const MetricsSnapshot before = reg.snapshot();
  c.add(5);
  reg.counter("late.arrival").add(7);  // absent from `before`
  h.add(4);
  h.add(100);
  const MetricsSnapshot delta = reg.snapshot().delta_since(before);
  EXPECT_EQ(delta.counter("work.done"), 5u);
  EXPECT_EQ(delta.counter("late.arrival"), 7u);  // full value when new
  const auto hist = delta.histograms.at("batch");
  EXPECT_EQ(hist.count, 2u);
  EXPECT_EQ(hist.sum, 104u);
}

TEST(MetricsSnapshot, DeltaSinceToleratesResets) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  c.add(100);
  const MetricsSnapshot before = reg.snapshot();
  reg.reset();
  c.add(3);  // counter restarted below its previous value
  EXPECT_EQ(reg.snapshot().delta_since(before).counter("c"), 3u);
}

TEST(MetricsSnapshot, ToJsonIsParseableAndComplete) {
  MetricsRegistry reg;
  reg.counter("pace.alignments_attempted").add(12);
  reg.gauge("pace.master.queue_depth").set(5);
  reg.histogram("pace.work_batch_size").add(200);
  JsonWriter w;
  reg.snapshot().to_json(w);
  const JsonValue v = parse_json(w.str());
  EXPECT_EQ(v.at("counters").at("pace.alignments_attempted").as_u64(), 12u);
  EXPECT_EQ(v.at("gauges").at("pace.master.queue_depth").at("last").as_u64(),
            5u);
  const JsonValue& hist =
      v.at("histograms").at("pace.work_batch_size");
  EXPECT_EQ(hist.at("count").as_u64(), 1u);
  EXPECT_EQ(hist.at("max").as_u64(), 200u);
  // Percentile ladder for telemetry/analyze consumers: p50/p90/p95/p99.
  for (const char* p : {"p50", "p90", "p95", "p99"}) {
    EXPECT_NE(hist.find(p), nullptr) << p;
  }
}

TEST(Metrics, ProcessRegistryIsASingleton) {
  Counter& c = metrics().counter("test.singleton_probe");
  c.reset();
  c.add(2);
  EXPECT_EQ(metrics().snapshot().counter("test.singleton_probe"), 2u);
  c.reset();
}

}  // namespace
}  // namespace pclust::util
