#include "pclust/util/memgov.hpp"

#include <gtest/gtest.h>

#include "pclust/util/metrics.hpp"

namespace pclust::util {
namespace {

/// The governor is process-global: every test reinstalls a known state
/// and leaves it unbudgeted.
class MemGovTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::metrics().reset();
    governor().configure(0);
  }
  void TearDown() override { governor().configure(0); }
};

TEST_F(MemGovTest, LedgerTracksChargesAndReleases) {
  governor().charge("a", 100);
  governor().charge("b", 50);
  EXPECT_EQ(governor().ledger(), 150u);
  EXPECT_EQ(governor().high_water(), 150u);
  governor().release(50);
  EXPECT_EQ(governor().ledger(), 100u);
  EXPECT_EQ(governor().high_water(), 150u);  // high-water never recedes
}

TEST_F(MemGovTest, UnbudgetedGovernorNeverDegrades) {
  governor().charge("a", 1u << 30);
  EXPECT_FALSE(governor().budgeted());
  EXPECT_EQ(governor().pressure(), 0.0);
  EXPECT_EQ(governor().recommend_grain(64), 64u);
  EXPECT_EQ(governor().recommend_batch(256), 256u);
  EXPECT_FALSE(governor().should_stream("bgg"));
  EXPECT_FALSE(governor().should_spill("dsd"));
  EXPECT_FALSE(governor().hard_exceeded());
  EXPECT_NO_THROW(governor().check_phase_boundary("rr", false));
  EXPECT_TRUE(governor().degradation_log().empty());
}

TEST_F(MemGovTest, ConfigureResetsLedgerAndLog) {
  governor().configure(1000);
  governor().charge("a", 900);
  (void)governor().should_stream("bgg");
  governor().configure(1000);
  EXPECT_EQ(governor().ledger(), 0u);
  EXPECT_EQ(governor().high_water(), 0u);
  EXPECT_TRUE(governor().degradation_log().empty());
}

TEST_F(MemGovTest, GrainHalvesAtPressureAndQuartersNearBudget) {
  governor().configure(1000);
  governor().charge("a", 500);  // pressure 0.5 — below the grain lever
  EXPECT_EQ(governor().recommend_grain(64), 64u);
  governor().charge("b", 250);  // pressure 0.75
  EXPECT_EQ(governor().recommend_grain(64), 32u);
  governor().charge("c", 210);  // pressure 0.96
  EXPECT_EQ(governor().recommend_grain(64), 16u);
  EXPECT_EQ(governor().recommend_batch(256), 64u);
}

TEST_F(MemGovTest, ShrunkenGrainNeverDropsBelowFloor) {
  governor().configure(100);
  governor().charge("a", 99);
  EXPECT_EQ(governor().recommend_grain(16), 8u);
  EXPECT_EQ(governor().recommend_grain(4), 4u);  // already tiny: untouched
}

TEST_F(MemGovTest, StreamAndSpillLeversFireAtTheirThresholds) {
  governor().configure(1000);
  governor().charge("a", 400);  // pressure 0.4
  EXPECT_FALSE(governor().should_stream("bgg"));
  EXPECT_FALSE(governor().should_spill("dsd"));
  governor().charge("b", 150);  // pressure 0.55
  EXPECT_TRUE(governor().should_stream("bgg"));
  EXPECT_FALSE(governor().should_spill("dsd"));
  governor().charge("c", 200);  // pressure 0.75
  EXPECT_TRUE(governor().should_spill("dsd"));
}

TEST_F(MemGovTest, LeversAreRecordedOncePerPhaseAndAction) {
  governor().configure(1000);
  governor().charge("a", 990);
  (void)governor().should_stream("bgg");
  (void)governor().should_stream("bgg");
  (void)governor().should_spill("dsd");
  (void)governor().recommend_grain(64);
  (void)governor().recommend_grain(64);
  const auto log = governor().degradation_log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].phase, "bgg");
  EXPECT_EQ(log[0].action, "stream");
  EXPECT_EQ(log[1].phase, "dsd");
  EXPECT_EQ(log[1].action, "spill");
  EXPECT_EQ(log[2].action, "shrink-grain");
}

TEST_F(MemGovTest, HardExceedTripsOnlyPastTwiceTheBudget) {
  governor().configure(1000);
  governor().charge("a", 1999);
  EXPECT_FALSE(governor().hard_exceeded());
  EXPECT_NO_THROW(governor().check_phase_boundary("rr", false));
  governor().charge("b", 2);  // ledger 2001 > 2x budget
  EXPECT_TRUE(governor().hard_exceeded());
  EXPECT_THROW(governor().check_phase_boundary("rr", false),
               MemoryBudgetExceeded);
}

TEST_F(MemGovTest, HardExceedStaysTrippedAfterRelease) {
  governor().configure(100);
  governor().charge("a", 300);
  governor().release(300);
  // The peak happened; shedding memory afterwards does not un-doom the
  // run — the phase boundary still reports it.
  EXPECT_TRUE(governor().hard_exceeded());
  EXPECT_THROW(governor().check_phase_boundary("ccd", true),
               MemoryBudgetExceeded);
}

TEST_F(MemGovTest, BoundaryMessageCarriesResumeGuidance) {
  governor().configure(100);
  governor().charge("a", 300);
  try {
    governor().check_phase_boundary("rr", /*resumable=*/true);
    FAIL() << "expected MemoryBudgetExceeded";
  } catch (const MemoryBudgetExceeded& e) {
    EXPECT_NE(std::string(e.what()).find("--resume"), std::string::npos);
  }
  try {
    governor().check_phase_boundary("rr", /*resumable=*/false);
    FAIL() << "expected MemoryBudgetExceeded";
  } catch (const MemoryBudgetExceeded& e) {
    EXPECT_EQ(std::string(e.what()).find("--resume"), std::string::npos);
  }
}

TEST_F(MemGovTest, MemoryChargeReleasesOnDestruction) {
  governor().configure(1000);
  {
    MemoryCharge charge("table", 400);
    EXPECT_EQ(governor().ledger(), 400u);
    charge.add("more", 100);
    EXPECT_EQ(governor().ledger(), 500u);
  }
  EXPECT_EQ(governor().ledger(), 0u);
  EXPECT_EQ(governor().high_water(), 500u);
}

TEST_F(MemGovTest, MemoryChargeMoveTransfersOwnership) {
  governor().configure(1000);
  MemoryCharge a("table", 200);
  MemoryCharge b(std::move(a));
  EXPECT_EQ(a.bytes(), 0u);
  EXPECT_EQ(b.bytes(), 200u);
  EXPECT_EQ(governor().ledger(), 200u);
  b.reset();
  EXPECT_EQ(governor().ledger(), 0u);
}

TEST_F(MemGovTest, HighWaterGaugeIsPublished) {
  governor().configure(0);
  governor().charge("a", 12345);
  EXPECT_EQ(util::metrics().gauge("memgov.high_water_bytes").max(), 12345u);
}

}  // namespace
}  // namespace pclust::util
