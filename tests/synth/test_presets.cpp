#include "pclust/synth/presets.hpp"

#include <gtest/gtest.h>

namespace pclust::synth {
namespace {

TEST(Presets, Paper160kFullScaleNumbers) {
  const DatasetSpec spec = paper_160k(1.0);
  EXPECT_EQ(spec.num_sequences, 160'000u);
  EXPECT_EQ(spec.num_families, 221u);
  EXPECT_EQ(spec.mean_length, 163u);
}

TEST(Presets, Paper160kScalesDown) {
  const DatasetSpec spec = paper_160k(0.05);
  EXPECT_EQ(spec.num_sequences, 8'000u);
  EXPECT_GT(spec.num_families, 10u);
  EXPECT_LT(spec.num_families, 221u);
  // Must stay feasible: members >= families * min size.
  const double members =
      spec.num_sequences *
      (1.0 - spec.redundant_fraction - spec.noise_fraction);
  EXPECT_GE(members, spec.num_families * spec.min_family_size);
}

TEST(Presets, Paper22kNumbers) {
  const DatasetSpec spec = paper_22k(1.0);
  EXPECT_EQ(spec.num_sequences, 22'186u);
  EXPECT_EQ(spec.mean_length, 256u);
  EXPECT_DOUBLE_EQ(spec.noise_fraction, 0.0);
}

TEST(Presets, TinyGenerates) {
  const Dataset d = generate(tiny());
  EXPECT_EQ(d.sequences.size(), 300u);
}

TEST(Presets, ScaledPresetsGenerate) {
  const Dataset d = generate(paper_160k(0.005));
  EXPECT_EQ(d.sequences.size(), 800u);
  const Dataset e = generate(paper_22k(0.02));
  EXPECT_GE(e.sequences.size(), 400u);
}

TEST(Presets, FloorsPreventDegenerateSpecs) {
  const DatasetSpec spec = paper_160k(0.0001);
  EXPECT_GE(spec.num_sequences, 200u);
  EXPECT_GE(spec.num_families, 2u);
  EXPECT_NO_THROW(generate(spec));
}

}  // namespace
}  // namespace pclust::synth
