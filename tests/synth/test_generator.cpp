#include "pclust/synth/generator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "pclust/align/predicates.hpp"
#include "pclust/seq/alphabet.hpp"

namespace pclust::synth {
namespace {

DatasetSpec small_spec() {
  DatasetSpec spec;
  spec.seed = 7;
  spec.num_sequences = 400;
  spec.num_families = 8;
  spec.mean_length = 100;
  spec.redundant_fraction = 0.10;
  spec.noise_fraction = 0.20;
  return spec;
}

TEST(Generator, ProducesRequestedCount) {
  const Dataset d = generate(small_spec());
  EXPECT_EQ(d.sequences.size(), 400u);
  EXPECT_EQ(d.truth.family.size(), 400u);
  EXPECT_EQ(d.truth.redundant.size(), 400u);
  EXPECT_EQ(d.truth.contained_in.size(), 400u);
}

TEST(Generator, DeterministicInSeed) {
  const Dataset a = generate(small_spec());
  const Dataset b = generate(small_spec());
  ASSERT_EQ(a.sequences.size(), b.sequences.size());
  for (seq::SeqId i = 0; i < a.sequences.size(); ++i) {
    EXPECT_EQ(a.sequences.ascii(i), b.sequences.ascii(i));
    EXPECT_EQ(a.sequences.name(i), b.sequences.name(i));
    EXPECT_EQ(a.truth.family[i], b.truth.family[i]);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  DatasetSpec s2 = small_spec();
  s2.seed = 8;
  const Dataset a = generate(small_spec());
  const Dataset b = generate(s2);
  int same = 0;
  for (seq::SeqId i = 0; i < a.sequences.size(); ++i) {
    if (a.sequences.ascii(i) == b.sequences.ascii(i)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Generator, FractionsRespected) {
  const Dataset d = generate(small_spec());
  EXPECT_EQ(d.truth.redundant_count(), 40u);   // 10 % of 400
  EXPECT_EQ(d.truth.noise_count(), 80u);       // 20 % of 400
}

TEST(Generator, NoiseHasNoFamilyAndNoParent) {
  const Dataset d = generate(small_spec());
  for (seq::SeqId i = 0; i < d.sequences.size(); ++i) {
    if (d.truth.family[i] == -1) {
      EXPECT_FALSE(d.truth.redundant[i]);
      EXPECT_EQ(d.truth.contained_in[i], seq::kInvalidSeqId);
    }
  }
}

TEST(Generator, RedundantSequencesAreActuallyContained) {
  // The central guarantee: every injected duplicate passes the paper's
  // Definition-1 containment test against its recorded parent.
  const Dataset d = generate(small_spec());
  const auto& scheme = align::blosum62();
  std::size_t checked = 0;
  for (seq::SeqId i = 0; i < d.sequences.size(); ++i) {
    if (!d.truth.redundant[i]) continue;
    const seq::SeqId parent = d.truth.contained_in[i];
    ASSERT_NE(parent, seq::kInvalidSeqId);
    const auto out = align::test_containment(d.sequences.residues(i),
                                             d.sequences.residues(parent),
                                             scheme);
    EXPECT_TRUE(out.accepted)
        << d.sequences.name(i) << " not contained in "
        << d.sequences.name(parent);
    ++checked;
  }
  EXPECT_EQ(checked, 40u);
}

TEST(Generator, RedundantParentSharesFamily) {
  const Dataset d = generate(small_spec());
  for (seq::SeqId i = 0; i < d.sequences.size(); ++i) {
    if (d.truth.redundant[i]) {
      EXPECT_EQ(d.truth.family[i],
                d.truth.family[d.truth.contained_in[i]]);
    }
  }
}

TEST(Generator, FamilyMembersOverlapPerDefinition2) {
  // Members of the same family should usually pass the 30 %-identity /
  // 80 %-coverage overlap test; sample a few pairs.
  DatasetSpec spec = small_spec();
  spec.noise_fraction = 0;
  spec.redundant_fraction = 0;
  spec.num_sequences = 60;
  spec.num_families = 3;
  const Dataset d = generate(spec);
  const auto clusters = d.truth.benchmark_clusters();
  ASSERT_GE(clusters.size(), 3u);
  int accepted = 0, tested = 0;
  for (const auto& c : clusters) {
    for (std::size_t i = 0; i + 1 < c.size() && i < 6; ++i) {
      ++tested;
      if (align::test_overlap(d.sequences.residues(c[i]),
                              d.sequences.residues(c[i + 1]),
                              align::blosum62())
              .accepted) {
        ++accepted;
      }
    }
  }
  EXPECT_GT(accepted, tested * 7 / 10);
}

TEST(Generator, NoiseDoesNotOverlapFamilies) {
  const Dataset d = generate(small_spec());
  seq::SeqId noise = seq::kInvalidSeqId, member = seq::kInvalidSeqId;
  for (seq::SeqId i = 0; i < d.sequences.size(); ++i) {
    if (d.truth.family[i] == -1 && noise == seq::kInvalidSeqId) noise = i;
    if (d.truth.family[i] >= 0 && member == seq::kInvalidSeqId) member = i;
  }
  ASSERT_NE(noise, seq::kInvalidSeqId);
  ASSERT_NE(member, seq::kInvalidSeqId);
  EXPECT_FALSE(align::test_overlap(d.sequences.residues(noise),
                                   d.sequences.residues(member),
                                   align::blosum62())
                   .accepted);
}

TEST(Generator, BenchmarkClustersPartitionMembers) {
  const Dataset d = generate(small_spec());
  const auto clusters = d.truth.benchmark_clusters();
  std::set<seq::SeqId> seen;
  std::size_t total = 0;
  for (const auto& c : clusters) {
    for (seq::SeqId id : c) {
      EXPECT_TRUE(seen.insert(id).second) << "duplicate member";
      EXPECT_GE(d.truth.family[id], 0);
      EXPECT_FALSE(d.truth.redundant[id]);
    }
    total += c.size();
  }
  EXPECT_EQ(total, 400u - 40u - 80u);
}

TEST(Generator, MinSizeFilterApplies) {
  const Dataset d = generate(small_spec());
  for (const auto& c : d.truth.benchmark_clusters(10)) {
    EXPECT_GE(c.size(), 10u);
  }
}

TEST(Generator, MeanLengthApproximatelyTarget) {
  const Dataset d = generate(small_spec());
  EXPECT_NEAR(d.sequences.mean_length(), 100.0, 25.0);
}

TEST(Generator, InfeasibleSpecThrows) {
  DatasetSpec spec = small_spec();
  spec.num_sequences = 20;
  spec.num_families = 10;  // 20*(1-0.3)=14 members < 10 families * 5 min
  EXPECT_THROW(generate(spec), std::invalid_argument);
}

TEST(Generator, InvalidFractionsThrow) {
  DatasetSpec spec = small_spec();
  spec.redundant_fraction = 0.6;
  spec.noise_fraction = 0.5;
  EXPECT_THROW(generate(spec), std::invalid_argument);
}

TEST(Generator, ZeroSequencesThrows) {
  DatasetSpec spec = small_spec();
  spec.num_sequences = 0;
  EXPECT_THROW(generate(spec), std::invalid_argument);
}

TEST(Generator, UnshuffledGroupsFamiliesTogether) {
  DatasetSpec spec = small_spec();
  spec.shuffle = false;
  const Dataset d = generate(spec);
  // Without shuffling, family labels are non-interleaved (monotone until
  // redundant/noise blocks).
  std::int32_t prev = -2;
  bool in_member_block = true;
  for (seq::SeqId i = 0; i < d.sequences.size() && in_member_block; ++i) {
    if (d.truth.redundant[i] || d.truth.family[i] == -1) {
      in_member_block = false;
      break;
    }
    EXPECT_GE(d.truth.family[i], prev);
    prev = d.truth.family[i];
  }
}

TEST(Generator, FamilySizesSkewed) {
  DatasetSpec spec = small_spec();
  spec.num_sequences = 2000;
  spec.num_families = 10;
  spec.zipf_skew = 1.0;
  const Dataset d = generate(spec);
  const auto clusters = d.truth.benchmark_clusters();
  ASSERT_EQ(clusters.size(), 10u);
  EXPECT_GT(clusters.front().size(), 3 * clusters.back().size());
}

}  // namespace
}  // namespace pclust::synth
