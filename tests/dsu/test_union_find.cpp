#include "pclust/dsu/union_find.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <stdexcept>

namespace pclust::dsu {
namespace {

TEST(UnionFind, InitiallySingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.set_count(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.find(i), i);
    EXPECT_EQ(uf.set_size(i), 1u);
  }
}

TEST(UnionFind, MergeReturnsWhetherDistinct) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.merge(0, 1));
  EXPECT_FALSE(uf.merge(1, 0));
  EXPECT_TRUE(uf.merge(2, 3));
  EXPECT_TRUE(uf.merge(0, 3));
  EXPECT_FALSE(uf.merge(1, 2));
  EXPECT_EQ(uf.set_count(), 1u);
  EXPECT_EQ(uf.set_size(0), 4u);
}

TEST(UnionFind, FindIsIdempotent) {
  UnionFind uf(10);
  uf.merge(1, 2);
  uf.merge(2, 3);
  const auto r = uf.find(3);
  EXPECT_EQ(uf.find(3), r);
  EXPECT_EQ(uf.find(r), r);
}

TEST(UnionFind, TransitiveClosure) {
  UnionFind uf(6);
  uf.merge(0, 1);
  uf.merge(2, 3);
  EXPECT_FALSE(uf.same(1, 3));
  uf.merge(1, 2);
  EXPECT_TRUE(uf.same(0, 3));
  EXPECT_FALSE(uf.same(0, 4));
}

TEST(UnionFind, ExtractSetsOrderedBySize) {
  UnionFind uf(7);
  uf.merge(0, 1);
  uf.merge(1, 2);  // {0,1,2}
  uf.merge(3, 4);  // {3,4}
  const auto sets = uf.extract_sets();
  ASSERT_EQ(sets.size(), 4u);
  EXPECT_EQ(sets[0].size(), 3u);
  EXPECT_EQ(sets[1].size(), 2u);
  EXPECT_EQ(sets[2].size(), 1u);
  // Members sorted within each set (insertion order by construction).
  EXPECT_EQ(sets[0], (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(UnionFind, ExtractSetsMinSizeFilter) {
  UnionFind uf(7);
  uf.merge(0, 1);
  uf.merge(1, 2);
  uf.merge(3, 4);
  const auto sets = uf.extract_sets(3);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].size(), 3u);
}

TEST(UnionFind, SizesAlwaysSumToN) {
  std::mt19937 gen(99);
  UnionFind uf(200);
  for (int step = 0; step < 300; ++step) {
    uf.merge(gen() % 200, gen() % 200);
    const auto sets = uf.extract_sets();
    std::size_t total = 0;
    for (const auto& s : sets) total += s.size();
    ASSERT_EQ(total, 200u);
    ASSERT_EQ(sets.size(), uf.set_count());
  }
}

TEST(UnionFind, MergeOrderDoesNotChangePartition) {
  // Same edge set applied in two different orders yields the same partition.
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> edges = {
      {0, 5}, {1, 6}, {2, 7}, {5, 6}, {8, 9}, {3, 8}};
  UnionFind a(10), b(10);
  for (auto [x, y] : edges) a.merge(x, y);
  for (auto it = edges.rbegin(); it != edges.rend(); ++it) {
    b.merge(it->first, it->second);
  }
  for (std::uint32_t x = 0; x < 10; ++x) {
    for (std::uint32_t y = 0; y < 10; ++y) {
      EXPECT_EQ(a.same(x, y), b.same(x, y)) << x << "," << y;
    }
  }
}

TEST(UnionFind, ResetClears) {
  UnionFind uf(3);
  uf.merge(0, 1);
  uf.reset(4);
  EXPECT_EQ(uf.set_count(), 4u);
  EXPECT_FALSE(uf.same(0, 1));
}

TEST(UnionFind, EmptyExtract) {
  UnionFind uf(0);
  EXPECT_TRUE(uf.extract_sets().empty());
  EXPECT_EQ(uf.set_count(), 0u);
}

TEST(UnionFind, RestoreRoundTripsThePartition) {
  UnionFind original(8);
  original.merge(0, 3);
  original.merge(3, 5);
  original.merge(1, 7);

  UnionFind restored;
  restored.restore(original.parents());
  EXPECT_EQ(restored.size(), 8u);
  EXPECT_EQ(restored.set_count(), original.set_count());
  EXPECT_EQ(restored.set_size(0), 3u);
  EXPECT_EQ(restored.extract_sets(), original.extract_sets());

  // The restored forest keeps merging correctly.
  restored.merge(5, 7);
  EXPECT_TRUE(restored.same(0, 1));
  EXPECT_EQ(restored.set_size(0), 5u);
}

TEST(UnionFind, RestoreRejectsCorruptForests) {
  UnionFind uf;
  EXPECT_THROW(uf.restore({0, 9}), std::invalid_argument);  // out of range
  EXPECT_THROW(uf.restore({1, 0}), std::invalid_argument);  // 2-cycle
  EXPECT_THROW(uf.restore({1, 2, 0}), std::invalid_argument);  // 3-cycle
  uf.restore({0, 0, 1});  // a valid chain still works
  EXPECT_TRUE(uf.same(0, 2));
  EXPECT_EQ(uf.set_count(), 1u);
}

TEST(UnionFind, ComponentLabelsArePureFunctionsOfThePartition) {
  // Build the same partition {0,2,4} {1,3} {5} along two different merge
  // orders; find() roots may differ, the canonical labels may not.
  UnionFind a(6);
  a.merge(0, 2);
  a.merge(2, 4);
  a.merge(1, 3);

  UnionFind b(6);
  b.merge(4, 2);
  b.merge(3, 1);
  b.merge(4, 0);

  const std::vector<std::uint32_t> expected{0, 1, 0, 1, 0, 5};
  EXPECT_EQ(a.component_labels(), expected);
  EXPECT_EQ(b.component_labels(), expected);

  // Labels never mutate the forest: extracting them twice is stable and
  // leaves the partition intact.
  EXPECT_EQ(a.component_labels(), expected);
  EXPECT_EQ(a.set_count(), 3u);
}

TEST(UnionFind, RootPathWalksToTheRootWithoutCompression) {
  // Equal-size union hangs root 2 under root 0 while 3 stays under 2,
  // leaving the depth-2 chain 3 -> 2 -> 0.
  UnionFind uf(4);
  uf.merge(0, 1);
  uf.merge(2, 3);
  uf.merge(1, 3);
  const std::vector<std::uint32_t> before = uf.parents();

  EXPECT_EQ(uf.root_path(3), (std::vector<std::uint32_t>{3, 2, 0}));
  EXPECT_EQ(uf.root_path(0), (std::vector<std::uint32_t>{0}));
  EXPECT_THROW((void)uf.root_path(4), std::invalid_argument);

  // The walk is read-only: the stored pointers are untouched (find()
  // would have halved 3's parent straight to the root).
  EXPECT_EQ(uf.parents(), before);
}

TEST(UnionFind, MemoryUsageIsLinearInElementCount) {
  UnionFind uf(1000);
  const auto b = uf.memory_usage();
  EXPECT_EQ(b.name, "union_find");
  ASSERT_EQ(b.parts.size(), 2u);
  // Two u32 vectors of exactly n elements (capacity may round up, never
  // down), so the total is at least 2 * 4 * n and O(n) overall.
  EXPECT_GE(b.total(), 2u * sizeof(std::uint32_t) * 1000u);
  EXPECT_LE(b.total(), 4u * sizeof(std::uint32_t) * 1000u + 1024u);

  // Growth is monotone in n: the linear-space claim's testable core.
  EXPECT_GT(b.total(), UnionFind(10).memory_usage().total());
}

}  // namespace
}  // namespace pclust::dsu
