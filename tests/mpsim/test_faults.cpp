// Fault-injection semantics of the simulator: planned crashes are recorded
// (not rethrown), failure-aware receives observe dead peers, drops only
// delay, duplicates re-deliver, stragglers slow the clock — and every
// faulted execution is a deterministic function of (plan, workload).
#include "pclust/mpsim/runtime.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace pclust::mpsim {
namespace {

// crash_at = 0 fires on the first charge or communication op even under the
// free model (clock 0 >= 0), which keeps these tests instant.
FaultPlan crash_rank(int rank, double at = 0.0) {
  FaultPlan plan;
  plan.crashes.push_back({rank, at});
  return plan;
}

TEST(Faults, PlannedCrashRecordedNotRethrown) {
  const auto r = run(3, MachineModel::free(), crash_rank(2),
                     [](Communicator& comm) {
                       comm.charge_cells(1);
                       if (comm.rank() == 2) FAIL() << "rank 2 must be dead";
                     });
  EXPECT_EQ(r.crashed_ranks, (std::vector<int>{2}));
}

TEST(Faults, RecvStatusReportsFailedPeer) {
  RecvStatus seen = RecvStatus::kOk;
  run(2, MachineModel::free(), crash_rank(1), [&](Communicator& comm) {
    if (comm.rank() == 1) {
      comm.charge_cells(1);  // dies here
      return;
    }
    Message msg;
    seen = comm.recv_status(1, 7, msg);
    EXPECT_FALSE(comm.peer_alive(1));
  });
  EXPECT_EQ(seen, RecvStatus::kRankFailed);
}

TEST(Faults, MessagesSentBeforeCrashStayDeliverable) {
  int got = 0;
  run(2, MachineModel::free(), crash_rank(1, 1.0), [&](Communicator& comm) {
    if (comm.rank() == 1) {
      comm.send(0, 5, std::any(41), 4);
      comm.send(0, 5, std::any(42), 4);
      comm.clock().advance(2.0);
      comm.charge_cells(1);  // now past crash_at = 1.0
      return;
    }
    Message msg;
    while (comm.recv_status(1, 5, msg) == RecvStatus::kOk) {
      got = msg.take<int>();
    }
  });
  EXPECT_EQ(got, 42);  // both arrived before the failure was observed
}

TEST(Faults, RecvStatusTimesOutOnSilentPeer) {
  RecvStatus seen = RecvStatus::kOk;
  run(2, MachineModel::free(), [&](Communicator& comm) {
    if (comm.rank() == 1) {
      comm.barrier();  // alive but never sends on tag 3
      return;
    }
    Message msg;
    seen = comm.recv_status(1, 3, msg, 0.05);
    comm.barrier();
  });
  EXPECT_EQ(seen, RecvStatus::kTimeout);
}

TEST(Faults, PlainRecvThrowsOnFailedPeer) {
  try {
    run(2, MachineModel::free(), crash_rank(1), [](Communicator& comm) {
      if (comm.rank() == 1) {
        comm.charge_cells(1);
        return;
      }
      (void)comm.recv(1, 0);
    });
    FAIL() << "expected RankError";
  } catch (const RankError& e) {
    EXPECT_EQ(e.rank(), 0);
    try {
      std::rethrow_if_nested(e);
      FAIL() << "expected a nested RankFailedError";
    } catch (const RankFailedError& nested) {
      EXPECT_EQ(nested.rank(), 1);
    }
  }
}

TEST(Faults, DropsDelayButNeverLoseMessages) {
  FaultPlan plan;
  plan.seed = 9;
  plan.drop_probability = 0.8;
  plan.retransmit_delay = 0.5;
  constexpr int kMessages = 32;
  std::vector<int> received;
  const auto faulted = run(2, MachineModel::bluegene_l(), plan,
                           [&](Communicator& comm) {
                             if (comm.rank() == 1) {
                               for (int i = 0; i < kMessages; ++i) {
                                 comm.send(0, 0, std::any(i), 8);
                               }
                               return;
                             }
                             for (int i = 0; i < kMessages; ++i) {
                               received.push_back(comm.recv(1, 0).take<int>());
                             }
                           });
  std::vector<int> expected(kMessages);
  for (int i = 0; i < kMessages; ++i) expected[static_cast<std::size_t>(i)] = i;
  EXPECT_EQ(received, expected);  // reliable link: order and content intact

  const auto clean = run(2, MachineModel::bluegene_l(), [](Communicator& comm) {
    if (comm.rank() == 1) {
      for (int i = 0; i < kMessages; ++i) comm.send(0, 0, std::any(i), 8);
      return;
    }
    for (int i = 0; i < kMessages; ++i) (void)comm.recv(1, 0);
  });
  EXPECT_GT(faulted.makespan, clean.makespan);  // retransmits cost time
}

TEST(Faults, DuplicatesAreRedelivered) {
  FaultPlan plan;
  plan.seed = 4;
  plan.duplicate_probability = 0.7;
  constexpr int kMessages = 40;
  int extras = 0;
  run(2, MachineModel::free(), plan, [&](Communicator& comm) {
    if (comm.rank() == 1) {
      for (int i = 0; i < kMessages; ++i) comm.send(0, 0, std::any(i), 8);
      comm.barrier();
      return;
    }
    for (int i = 0; i < kMessages; ++i) (void)comm.recv(1, 0);
    comm.barrier();  // all copies are queued at send time
    while (comm.poll(1, 0)) {
      (void)comm.recv(1, 0);
      ++extras;
    }
  });
  EXPECT_GT(extras, 0) << "p=0.7 over 40 messages must duplicate some";
  EXPECT_LE(extras, kMessages);
}

TEST(Faults, CollectivesAreNeverPerturbed) {
  FaultPlan plan;
  plan.seed = 11;
  plan.drop_probability = 0.9;
  plan.duplicate_probability = 0.9;
  const auto clean = run(4, MachineModel::bluegene_l(), [](Communicator& comm) {
    (void)comm.allreduce_sum(static_cast<double>(comm.rank()));
    comm.barrier();
  });
  double sum = -1.0;
  const auto faulted = run(4, MachineModel::bluegene_l(), plan,
                           [&](Communicator& comm) {
                             const double s = comm.allreduce_sum(
                                 static_cast<double>(comm.rank()));
                             if (comm.rank() == 0) sum = s;
                             comm.barrier();
                           });
  EXPECT_DOUBLE_EQ(sum, 6.0);
  // Internal (negative) tags ride the reliable layer: identical timing.
  EXPECT_DOUBLE_EQ(faulted.makespan, clean.makespan);
}

TEST(Faults, StragglerScalesComputeOnly) {
  FaultPlan plan;
  plan.straggler_factor = {1.0, 4.0};
  const auto r = run(2, MachineModel::bluegene_l(), plan,
                     [](Communicator& comm) { comm.charge_cells(1'000'000); });
  ASSERT_EQ(r.rank_times.size(), 2u);
  EXPECT_DOUBLE_EQ(r.rank_times[1], 4.0 * r.rank_times[0]);
}

TEST(Faults, FaultedRunIsDeterministic) {
  FaultPlan plan;
  plan.seed = 77;
  plan.drop_probability = 0.3;
  plan.duplicate_probability = 0.2;
  plan.crashes.push_back({3, 0.01});  // dies inside its compute charge
  plan.straggler_factor = {1.0, 2.0};
  const auto once = [&] {
    return run(4, MachineModel::bluegene_l(), plan, [](Communicator& comm) {
      if (comm.rank() == 0) {
        for (int w = 1; w < comm.size(); ++w) {
          comm.send(w, 0, std::any(w), 64);
        }
        Message msg;
        for (int w = 1; w < comm.size(); ++w) {
          (void)comm.recv_status(w, 1, msg);
        }
        return;
      }
      comm.charge_cells(500'000);
      Message msg;
      if (comm.recv_status(0, 0, msg) == RecvStatus::kOk) {
        comm.send(0, 1, std::any(msg.take<int>()), 64);
      }
    });
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a.crashed_ranks, (std::vector<int>{3}));
  EXPECT_EQ(a.crashed_ranks, b.crashed_ranks);
  EXPECT_EQ(a.rank_times, b.rank_times);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(Faults, MalformedPlansRejected) {
  FaultPlan bad_rank;
  bad_rank.crashes.push_back({5, 0.0});
  EXPECT_THROW(run(4, MachineModel::free(), bad_rank, [](Communicator&) {}),
               std::invalid_argument);

  FaultPlan bad_prob;
  bad_prob.drop_probability = 1.0;
  EXPECT_THROW(run(4, MachineModel::free(), bad_prob, [](Communicator&) {}),
               std::invalid_argument);

  FaultPlan bad_delay;
  bad_delay.retransmit_delay = -1.0;
  bad_delay.drop_probability = 0.1;
  EXPECT_THROW(run(4, MachineModel::free(), bad_delay, [](Communicator&) {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace pclust::mpsim
