#include "pclust/mpsim/runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace pclust::mpsim {
namespace {

TEST(Runtime, SingleRankRuns) {
  int calls = 0;
  const auto r = run(1, MachineModel::free(), [&](Communicator& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(r.rank_times.size(), 1u);
}

TEST(Runtime, AllRanksRunExactlyOnce) {
  std::atomic<int> calls{0};
  std::vector<std::atomic<int>> per_rank(8);
  run(8, MachineModel::free(), [&](Communicator& comm) {
    ++calls;
    ++per_rank[static_cast<std::size_t>(comm.rank())];
  });
  EXPECT_EQ(calls.load(), 8);
  for (auto& c : per_rank) EXPECT_EQ(c.load(), 1);
}

TEST(Runtime, BreakdownPartitionsEachRanksVirtualTime) {
  // busy + comm + idle must equal rank_times per rank, up to fp rounding —
  // the analyzer and report-check both lean on this identity. Exercise all
  // three buckets: compute charges, real wire traffic, and barrier waits.
  const auto r = run(4, MachineModel::bluegene_l(), [](Communicator& comm) {
    comm.charge_cells(1000u * static_cast<std::uint64_t>(comm.rank() + 1));
    if (comm.rank() == 0) {
      for (int dst = 1; dst < comm.size(); ++dst) {
        comm.send(dst, 7, int{1}, 1 << 16);
      }
    } else {
      (void)comm.recv(0, 7);
    }
    comm.barrier();
  });
  ASSERT_EQ(r.rank_breakdown.size(), r.rank_times.size());
  double busy_total = 0.0;
  for (std::size_t i = 0; i < r.rank_times.size(); ++i) {
    const RankBreakdown& b = r.rank_breakdown[i];
    EXPECT_GE(b.busy, 0.0);
    EXPECT_GE(b.comm, 0.0);
    EXPECT_GE(b.idle, 0.0);
    const double total = b.busy + b.comm + b.idle;
    EXPECT_NEAR(total, r.rank_times[i], 1e-9 + 1e-6 * r.rank_times[i]);
    busy_total += b.busy;
  }
  // Unequal charges -> unequal busy times, and someone actually computed.
  EXPECT_GT(busy_total, 0.0);
  EXPECT_LT(r.rank_breakdown[0].busy, r.rank_breakdown[3].busy);
  // The barrier releases everyone at the same virtual instant.
  for (const double t : r.rank_times) EXPECT_DOUBLE_EQ(t, r.makespan);
}

TEST(Runtime, InvalidProcessorCountThrows) {
  EXPECT_THROW(run(0, MachineModel::free(), [](Communicator&) {}),
               std::invalid_argument);
}

TEST(Runtime, ExceptionPropagatesAsRankError) {
  try {
    run(4, MachineModel::free(), [](Communicator& comm) {
      if (comm.rank() == 2) throw std::runtime_error("boom");
      comm.barrier();  // others block; must be released
    });
    FAIL() << "expected RankError";
  } catch (const RankError& e) {
    EXPECT_EQ(e.rank(), 2);
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    // The original exception is nested for callers that need its type.
    try {
      std::rethrow_if_nested(e);
      FAIL() << "expected a nested exception";
    } catch (const std::runtime_error& nested) {
      EXPECT_STREQ(nested.what(), "boom");
    }
  }
}

TEST(Runtime, ExceptionWhilePeersBlockedInRecv) {
  try {
    run(3, MachineModel::free(), [](Communicator& comm) {
      if (comm.rank() == 0) throw std::logic_error("fail");
      (void)comm.recv(0, 1);  // would deadlock without abort
    });
    FAIL() << "expected RankError";
  } catch (const RankError& e) {
    EXPECT_EQ(e.rank(), 0);
    try {
      std::rethrow_if_nested(e);
      FAIL() << "expected a nested exception";
    } catch (const std::logic_error&) {
    }
  }
}

TEST(Runtime, ConcurrentFailuresAllJoinedLowestRankWins) {
  try {
    run(6, MachineModel::free(), [](Communicator& comm) {
      // Ranks 1, 3, 5 all throw concurrently; the rest block in a recv
      // that abort must release. Every thread must be joined regardless.
      if (comm.rank() % 2 == 1) {
        throw std::runtime_error("fail-" + std::to_string(comm.rank()));
      }
      (void)comm.recv(comm.rank() + 1, 0);
    });
    FAIL() << "expected RankError";
  } catch (const RankError& e) {
    EXPECT_EQ(e.rank(), 1);  // lowest-ranked original failure
    EXPECT_NE(std::string(e.what()).find("fail-1"), std::string::npos);
  }
}

TEST(PointToPoint, PayloadAndMetadataDelivered) {
  run(2, MachineModel::free(), [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, std::any(std::string("hello")), 5);
    } else {
      Message m = comm.recv(0, 7);
      EXPECT_EQ(m.src, 0);
      EXPECT_EQ(m.tag, 7);
      EXPECT_EQ(m.bytes, 5u);
      EXPECT_EQ(m.take<std::string>(), "hello");
    }
  });
}

TEST(PointToPoint, FifoPerSourceAndTag) {
  run(2, MachineModel::free(), [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) comm.send(1, 3, std::any(i), 4);
    } else {
      for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(comm.recv(0, 3).take<int>(), i);
      }
    }
  });
}

TEST(PointToPoint, TagSelectivity) {
  run(2, MachineModel::free(), [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, std::any(std::string("one")), 3);
      comm.send(1, 2, std::any(std::string("two")), 3);
    } else {
      // Receive tag 2 first even though tag 1 was sent first.
      EXPECT_EQ(comm.recv(0, 2).take<std::string>(), "two");
      EXPECT_EQ(comm.recv(0, 1).take<std::string>(), "one");
    }
  });
}

TEST(PointToPoint, PollDoesNotConsume) {
  run(2, MachineModel::free(), [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 5, std::any(42), 4);
      comm.barrier();
    } else {
      comm.barrier();
      EXPECT_TRUE(comm.poll(0, 5));
      EXPECT_TRUE(comm.poll(0, 5));
      EXPECT_FALSE(comm.poll(0, 6));
      EXPECT_EQ(comm.recv(0, 5).take<int>(), 42);
      EXPECT_FALSE(comm.poll(0, 5));
    }
  });
}

TEST(VirtualTime, RecvAdvancesToArrival) {
  MachineModel m = MachineModel::free();
  m.latency = 1.0;
  m.byte_cost = 0.5;
  const auto r = run(2, m, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.clock().advance(10.0);
      comm.send(1, 0, std::any(0), 4);  // stamped at 10 + latency = 11
    } else {
      (void)comm.recv(0, 0);
      // arrival = 11 (stamp) + 1 (latency) + 4 * 0.5 (transfer) = 14.
      EXPECT_DOUBLE_EQ(comm.clock().now(), 14.0);
    }
  });
  EXPECT_DOUBLE_EQ(r.makespan, 14.0);
}

TEST(VirtualTime, RecvNeverMovesClockBackwards) {
  MachineModel m = MachineModel::free();
  run(2, m, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 0, std::any(0), 0);
    } else {
      comm.clock().advance(100.0);
      (void)comm.recv(0, 0);
      EXPECT_DOUBLE_EQ(comm.clock().now(), 100.0);
    }
  });
}

TEST(VirtualTime, ChargesScaleWithModel) {
  MachineModel m = MachineModel::free();
  m.cell_cost = 2.0;
  m.index_char_cost = 3.0;
  m.pair_cost = 5.0;
  m.find_cost = 7.0;
  const auto r = run(1, m, [](Communicator& comm) {
    comm.charge_cells(2);
    comm.charge_index_chars(1);
    comm.charge_pairs(1);
    comm.charge_finds(1);
  });
  EXPECT_DOUBLE_EQ(r.makespan, 4.0 + 3.0 + 5.0 + 7.0);
}

TEST(Barrier, SynchronizesClocksToMax) {
  MachineModel m = MachineModel::free();
  const auto r = run(4, m, [](Communicator& comm) {
    comm.clock().advance(static_cast<double>(comm.rank()));
    comm.barrier();
    EXPECT_DOUBLE_EQ(comm.clock().now(), 3.0);  // latency 0 in free model
  });
  for (double t : r.rank_times) EXPECT_DOUBLE_EQ(t, 3.0);
}

TEST(Barrier, LatencyTermApplied) {
  MachineModel m = MachineModel::free();
  m.latency = 1.0;
  run(4, m, [](Communicator& comm) {
    comm.barrier();
    // 2 * latency * ceil(log2 4) = 4, plus the send-side... barrier only.
    EXPECT_DOUBLE_EQ(comm.clock().now(), 4.0);
  });
}

TEST(Barrier, ReusableAcrossGenerations) {
  run(3, MachineModel::free(), [](Communicator& comm) {
    for (int i = 0; i < 5; ++i) comm.barrier();
  });
}

TEST(Broadcast, DeliversToAll) {
  run(4, MachineModel::free(), [](Communicator& comm) {
    std::any payload;
    if (comm.rank() == 2) payload = std::string("family");
    const std::any out = comm.broadcast(2, std::move(payload), 6);
    EXPECT_EQ(std::any_cast<std::string>(out), "family");
  });
}

TEST(Broadcast, TreeTimeModel) {
  MachineModel m = MachineModel::free();
  m.latency = 1.0;
  run(8, m, [](Communicator& comm) {
    (void)comm.broadcast(0, std::any(1), 0);
    // depth = 3 rounds of latency 1.
    EXPECT_DOUBLE_EQ(comm.clock().now(), 3.0);
  });
}

TEST(AllreduceMax, AgreesEverywhere) {
  run(5, MachineModel::free(), [](Communicator& comm) {
    const double v = comm.allreduce_max(static_cast<double>(comm.rank() * 10));
    EXPECT_DOUBLE_EQ(v, 40.0);
  });
}

TEST(Counters, SummedAcrossRanks) {
  const auto r = run(4, MachineModel::free(), [](Communicator& comm) {
    comm.count("pairs", static_cast<std::uint64_t>(comm.rank()));
    comm.count("pairs", 1);
    if (comm.rank() == 0) comm.count("special");
  });
  EXPECT_EQ(r.counter("pairs"), 0u + 1 + 2 + 3 + 4u);
  EXPECT_EQ(r.counter("special"), 1u);
  EXPECT_EQ(r.counter("missing"), 0u);
}

TEST(Runtime, MasterWorkerEchoPattern) {
  // Miniature of the PaCE protocol: workers send requests; master replies.
  const int p = 6;
  const auto r = run(p, MachineModel::free(), [p](Communicator& comm) {
    constexpr int kReq = 1, kRep = 2;
    if (comm.rank() == 0) {
      for (int w = 1; w < p; ++w) {
        Message m = comm.recv(w, kReq);
        comm.send(w, kRep, std::any(m.take<int>() * 2), 4);
      }
    } else {
      comm.send(0, kReq, std::any(comm.rank()), 4);
      EXPECT_EQ(comm.recv(0, kRep).take<int>(), comm.rank() * 2);
    }
  });
  EXPECT_EQ(r.rank_times.size(), static_cast<std::size_t>(p));
}

TEST(Runtime, ManyRanksScale) {
  // 128 threads must start, exchange, and tear down cleanly.
  const auto r = run(128, MachineModel::free(), [](Communicator& comm) {
    comm.barrier();
    if (comm.rank() != 0) {
      comm.send(0, 9, std::any(comm.rank()), 4);
    } else {
      std::int64_t sum = 0;
      for (int w = 1; w < comm.size(); ++w) sum += comm.recv(w, 9).take<int>();
      EXPECT_EQ(sum, 127 * 128 / 2);
    }
    comm.barrier();
  });
  EXPECT_EQ(r.rank_times.size(), 128u);
}

}  // namespace
}  // namespace pclust::mpsim

namespace pclust::mpsim {
namespace {

TEST(AllreduceSum, AgreesEverywhere) {
  run(6, MachineModel::free(), [](Communicator& comm) {
    const double v = comm.allreduce_sum(static_cast<double>(comm.rank()));
    EXPECT_DOUBLE_EQ(v, 15.0);
  });
}

TEST(Gather, RootReceivesAllInRankOrder) {
  run(5, MachineModel::free(), [](Communicator& comm) {
    const auto out =
        comm.gather(2, std::any(comm.rank() * 10), 4);
    if (comm.rank() == 2) {
      ASSERT_EQ(out.size(), 5u);
      for (int r = 0; r < 5; ++r) {
        EXPECT_EQ(std::any_cast<int>(out[static_cast<std::size_t>(r)]),
                  r * 10);
      }
    } else {
      EXPECT_TRUE(out.empty());
    }
  });
}

TEST(Gather, RootClockAdvancesToSlowest) {
  MachineModel m = MachineModel::free();
  run(3, m, [](Communicator& comm) {
    comm.clock().advance(static_cast<double>(comm.rank()) * 5.0);
    const auto out = comm.gather(0, std::any(1), 0);
    if (comm.rank() == 0) {
      EXPECT_GE(comm.clock().now(), 10.0);  // waited for rank 2
      EXPECT_EQ(out.size(), 3u);
    }
  });
}

TEST(Scatter, EachRankGetsItsPayload) {
  run(4, MachineModel::free(), [](Communicator& comm) {
    std::vector<std::any> payloads;
    if (comm.rank() == 1) {
      for (int r = 0; r < 4; ++r) payloads.emplace_back(r + 100);
    }
    const std::any mine = comm.scatter(1, std::move(payloads), 4);
    EXPECT_EQ(std::any_cast<int>(mine), comm.rank() + 100);
  });
}

TEST(Scatter, WrongPayloadCountThrows) {
  try {
    run(3, MachineModel::free(), [](Communicator& comm) {
      std::vector<std::any> payloads(2);  // needs 3
      (void)comm.scatter(0, std::move(payloads), 1);
    });
    FAIL() << "expected RankError";
  } catch (const RankError& err) {
    EXPECT_EQ(err.rank(), 0);
    try {
      std::rethrow_if_nested(err);
      FAIL() << "expected nested invalid_argument";
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(Collectives, ComposeAcrossPhases) {
  // gather -> root decision -> scatter -> allreduce, like a phase barrier
  // with data. Exercises tag separation between collective kinds.
  run(4, MachineModel::free(), [](Communicator& comm) {
    const auto all = comm.gather(0, std::any(comm.rank() + 1), 4);
    std::vector<std::any> doubled;
    if (comm.rank() == 0) {
      for (const auto& v : all) {
        doubled.emplace_back(std::any_cast<int>(v) * 2);
      }
    }
    const std::any mine = comm.scatter(0, std::move(doubled), 4);
    const double total =
        comm.allreduce_sum(static_cast<double>(std::any_cast<int>(mine)));
    EXPECT_DOUBLE_EQ(total, 2.0 * (1 + 2 + 3 + 4));
  });
}

}  // namespace
}  // namespace pclust::mpsim
