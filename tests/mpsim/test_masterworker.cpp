// Protocol-level tests for the resilient master–worker layer, on a toy
// workload: worker rank w owns keys w*1000 .. w*1000+kPerWorker-1 and each
// verdict is the key squared. Completeness = every key applied with the
// right value, whatever faults the plan injects.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "pclust/mpsim/masterworker.hpp"
#include "pclust/mpsim/runtime.hpp"
#include "pclust/util/metrics.hpp"

namespace pclust::mpsim {
namespace {

struct ToyTask {
  int key = 0;
};
struct ToyVerdict {
  int key = 0;
  long long value = 0;
};

constexpr int kPerWorker = 57;  // not a multiple of batch_size

struct ToyOutcome {
  std::map<int, long long> values;  // first verdict wins (idempotent apply)
  std::map<int, int> applications;  // how often each key was applied
  MwMasterStats stats;
  RunResult run;
};

MwOptions toy_options() {
  MwOptions opt;
  opt.phase = "toy";
  opt.metrics_prefix = "toy";
  opt.batch_size = 8;
  opt.task_bytes = 4;
  opt.verdict_bytes = 12;
  return opt;
}

/// Run the toy phase on @p p ranks. @p hiccup, when set, is called at the
/// start of every evaluate with (rank, per-rank call ordinal) — tests use
/// it to wall-sleep a worker (hung-rank scenarios).
ToyOutcome run_toy(
    int p, const FaultPlan* plan, const MwOptions& opt,
    const std::function<void(int, std::uint64_t)>& hiccup = nullptr,
    const MachineModel& model = MachineModel::free()) {
  ToyOutcome out;
  out.run = run_phase(opt.phase, p, model, plan,
                      [&](Communicator& comm) {
                        if (comm.rank() == 0) {
                          std::set<int> seen;
                          MwMaster<ToyTask, ToyVerdict> master;
                          master.admit = [&](const ToyTask& t) {
                            return seen.insert(t.key).second
                                       ? MwAdmit::kQueue
                                       : MwAdmit::kDuplicate;
                          };
                          master.apply = [&](const ToyVerdict& v) {
                            ++out.applications[v.key];
                            out.values.emplace(v.key, v.value);
                          };
                          out.stats = mw_master_loop(comm, opt, master);
                          return;
                        }
                        MwWorker<ToyTask, ToyVerdict> worker;
                        worker.generate = [](Communicator& c, int origin) {
                          c.charge_pairs(kPerWorker);
                          std::vector<ToyTask> tasks(kPerWorker);
                          for (int i = 0; i < kPerWorker; ++i) {
                            tasks[static_cast<std::size_t>(i)].key =
                                origin * 1000 + i;
                          }
                          return tasks;
                        };
                        std::uint64_t calls = 0;
                        worker.evaluate = [&](Communicator& c,
                                              const std::vector<ToyTask>& tasks,
                                              std::vector<ToyVerdict>& verdicts) {
                          if (hiccup) hiccup(c.rank(), calls++);
                          c.charge_finds(tasks.size());
                          for (const ToyTask& t : tasks) {
                            verdicts.push_back(ToyVerdict{
                                t.key, static_cast<long long>(t.key) * t.key});
                          }
                        };
                        mw_worker_loop(comm, opt, worker);
                      });
  return out;
}

/// Every key of every worker 1..p-1 applied with value key^2.
void expect_complete(const ToyOutcome& out, int p) {
  ASSERT_EQ(out.values.size(),
            static_cast<std::size_t>(p - 1) * kPerWorker);
  for (int w = 1; w < p; ++w) {
    for (int i = 0; i < kPerWorker; ++i) {
      const int key = w * 1000 + i;
      const auto it = out.values.find(key);
      ASSERT_NE(it, out.values.end()) << "missing key " << key;
      EXPECT_EQ(it->second, static_cast<long long>(key) * key) << key;
    }
  }
}

TEST(MasterWorker, FaultFreeAppliesEveryTaskExactlyOnce) {
  const auto out = run_toy(4, nullptr, toy_options());
  expect_complete(out, 4);
  EXPECT_EQ(out.stats.submitted, 3u * kPerWorker);
  EXPECT_EQ(out.stats.dispatched, 3u * kPerWorker);
  EXPECT_EQ(out.stats.duplicates, 0u);
  EXPECT_EQ(out.stats.filtered, 0u);
  for (const auto& [key, n] : out.applications) EXPECT_EQ(n, 1) << key;
  EXPECT_TRUE(out.run.crashed_ranks.empty());
  EXPECT_EQ(out.run.counter("workers_failed"), 0u);
}

TEST(MasterWorker, CrashedWorkerStreamIsAdoptedAndReplayed) {
  FaultPlan plan;
  plan.crashes.push_back({2, 0.0});  // dies before submitting anything
  const auto out = run_toy(4, &plan, toy_options());
  expect_complete(out, 4);  // keys 2000.. came from the adopter's replay
  EXPECT_EQ(out.run.crashed_ranks, std::vector<int>{2});
  EXPECT_EQ(out.run.counter("workers_failed"), 1u);
  EXPECT_EQ(out.run.counter("streams_adopted"), 1u);
  EXPECT_FALSE(out.run.fault_events.empty());
  // Healing events carry the phase label for attribution.
  bool attributed = false;
  for (const auto& e : out.run.fault_events) {
    if (e.rfind("toy:", 0) == 0) attributed = true;
  }
  EXPECT_TRUE(attributed);
}

TEST(MasterWorker, MidPhaseCrashRequeuesOutstandingChunk) {
  // Crash rank 1 halfway through its fault-free virtual lifetime, so it has
  // submitted tasks and (usually) holds an unacknowledged chunk; whatever
  // it left behind must be requeued and completed by rank 2. The free model
  // never advances the clock, so this test needs a costed one.
  const auto model = MachineModel::bluegene_l();
  const auto golden = run_toy(3, nullptr, toy_options(), nullptr, model);
  expect_complete(golden, 3);

  FaultPlan plan;
  plan.crashes.push_back({1, 0.5 * golden.run.rank_times[1]});
  const auto out = run_toy(3, &plan, toy_options(), nullptr, model);
  expect_complete(out, 3);
  EXPECT_EQ(out.run.crashed_ranks, std::vector<int>{1});
  EXPECT_EQ(out.run.counter("workers_failed"), 1u);
  EXPECT_EQ(out.run.counter("streams_adopted"), 1u);
}

TEST(MasterWorker, DropDuplicateStragglerLinksStayComplete) {
  FaultPlan plan;
  plan.seed = 99;
  plan.drop_probability = 0.25;
  plan.duplicate_probability = 0.25;
  plan.straggler_factor = {1.0, 1.0, 3.0};
  const auto out = run_toy(3, &plan, toy_options());
  expect_complete(out, 3);
  // Duplicated deliveries are dropped by sequence number before the admit
  // hook ever sees them, so every key is still applied exactly once.
  for (const auto& [key, n] : out.applications) EXPECT_EQ(n, 1) << key;
  EXPECT_TRUE(out.run.crashed_ranks.empty());
}

TEST(MasterWorker, AllWorkersDeadThrowsAttributedError) {
  FaultPlan plan;
  plan.crashes.push_back({1, 0.0});
  try {
    run_toy(2, &plan, toy_options());
    FAIL() << "expected RankError";
  } catch (const RankError& e) {
    EXPECT_EQ(e.rank(), 0);
    EXPECT_EQ(e.phase(), "toy");
    EXPECT_NE(std::string(e.what()).find("all workers failed"),
              std::string::npos);
  }
}

TEST(MasterWorker, PhaseDeadlineSurfacesAsAttributedRankError) {
  MwOptions opt = toy_options();
  opt.deadline_seconds = 0.05;  // wall clock
  const auto hang = [](int rank, std::uint64_t) {
    if (rank == 1) std::this_thread::sleep_for(std::chrono::milliseconds(120));
  };
  try {
    run_toy(2, nullptr, opt, hang);
    FAIL() << "expected RankError from the phase watchdog";
  } catch (const RankError& e) {
    EXPECT_EQ(e.rank(), 0);
    EXPECT_EQ(e.phase(), "toy");
    EXPECT_NE(std::string(e.what()).find("phase deadline"), std::string::npos);
  }
}

TEST(MasterWorker, HeartbeatTimeoutDeclaresHungWorkerDeadAndHeals) {
  MwOptions opt = toy_options();
  opt.heartbeat_timeout = 0.05;  // wall seconds; retries back off 0.1, 0.2
  opt.heartbeat_retries = 2;
  opt.heartbeat_backoff = 2.0;
  // Rank 1 goes silent for far longer than the full retry budget
  // (0.05 + 0.1 + 0.2 = 0.35s) on its first chunk; rank 2 stays healthy.
  const auto hang = [](int rank, std::uint64_t call) {
    if (rank == 1 && call == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2000));
    }
  };
  const auto out = run_toy(3, nullptr, opt, hang);
  expect_complete(out, 3);  // rank 2 finished rank 1's share
  EXPECT_EQ(out.run.counter("workers_timed_out"), 1u);
  EXPECT_EQ(out.run.counter("workers_failed"), 0u);
  EXPECT_GE(out.run.counter("link_timeout_retries"), 2u);
  EXPECT_EQ(out.run.counter("streams_adopted"), 1u);
  EXPECT_TRUE(out.run.crashed_ranks.empty());  // hung, not crashed
  bool timeout_noted = false;
  for (const auto& e : out.run.fault_events) {
    if (e.find("heartbeat timeout") != std::string::npos) timeout_noted = true;
  }
  EXPECT_TRUE(timeout_noted);
}

TEST(MasterWorker, HeartbeatBackoffCeilingBoundsTheRetryLadder) {
  // Uncapped, the exponential ladder 0.05 * (1 + 3 + 9 + 27 + 81 + 243)
  // would wait ~18 wall seconds — far longer than the 1.2s hang, so the
  // worker would recover mid-ladder. The 0.06s ceiling clamps every retry,
  // shrinking the whole budget to ~0.35s, and it is exactly that clamp
  // which lets the timeout fire while the worker is still hung.
  MwOptions opt = toy_options();
  opt.heartbeat_timeout = 0.05;
  opt.heartbeat_retries = 5;
  opt.heartbeat_backoff = 3.0;
  opt.heartbeat_max_timeout = 0.06;
  const auto hang = [](int rank, std::uint64_t call) {
    if (rank == 1 && call == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1200));
    }
  };
  const auto out = run_toy(3, nullptr, opt, hang);
  expect_complete(out, 3);  // rank 2 adopted and replayed rank 1's stream
  EXPECT_EQ(out.run.counter("workers_timed_out"), 1u);
  // Retry-count accounting: the hung link exhausts its full retry budget
  // exactly once; the healthy link never times out.
  EXPECT_EQ(out.run.counter("link_timeout_retries"), 5u);
  EXPECT_EQ(out.run.counter("streams_adopted"), 1u);
}

TEST(MasterWorker, UncappedBackoffOutlastsTheHangAndNobodyDies) {
  // Companion to the ceiling test: the SAME ladder without the ceiling
  // outwaits the hang, so the worker wakes inside a retry window, submits,
  // and is never declared dead. The ceiling is the only difference.
  MwOptions opt = toy_options();
  opt.heartbeat_timeout = 0.05;
  opt.heartbeat_retries = 5;
  opt.heartbeat_backoff = 3.0;
  opt.heartbeat_max_timeout = 0.0;  // uncapped
  const auto hang = [](int rank, std::uint64_t call) {
    if (rank == 1 && call == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1200));
    }
  };
  const auto out = run_toy(3, nullptr, opt, hang);
  expect_complete(out, 3);
  EXPECT_EQ(out.run.counter("workers_timed_out"), 0u);
  EXPECT_EQ(out.run.counter("streams_adopted"), 0u);
  EXPECT_GE(out.run.counter("link_timeout_retries"), 1u);
}

TEST(MasterWorker, DeadlineAtHeartbeatRetryBoundaryIsAttributed) {
  // The retry ladder re-checks the phase watchdog at every boundary: with a
  // 0.15s deadline and a 0.1 -> 0.2 -> ... ladder, the second boundary
  // lands past the deadline and must surface as the deadline (with the
  // retry boundary named), not disappear into another backoff.
  MwOptions opt = toy_options();
  opt.deadline_seconds = 0.15;
  opt.heartbeat_timeout = 0.1;
  opt.heartbeat_retries = 5;
  opt.heartbeat_backoff = 2.0;
  const auto hang = [](int rank, std::uint64_t call) {
    if (rank == 1 && call == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2000));
    }
  };
  try {
    run_toy(2, nullptr, opt, hang);
    FAIL() << "expected RankError from the deadline at a retry boundary";
  } catch (const RankError& e) {
    EXPECT_EQ(e.rank(), 0);
    EXPECT_EQ(e.phase(), "toy");
    const std::string what = e.what();
    EXPECT_NE(what.find("phase deadline"), std::string::npos) << what;
    EXPECT_NE(what.find("heartbeat-retry boundary"), std::string::npos)
        << what;
  }
}

TEST(MasterWorker, MetricsUseThePhasePrefix) {
  util::metrics().reset();
  const auto out = run_toy(4, nullptr, toy_options());
  expect_complete(out, 4);
  const auto snap = util::metrics().snapshot();
  EXPECT_EQ(snap.counter("toy.generation_streams"), 3u);
  EXPECT_EQ(snap.counter("toy.workers_failed"), 0u);
  EXPECT_EQ(snap.counter("toy.pairs_requeued"), 0u);
}

}  // namespace
}  // namespace pclust::mpsim
