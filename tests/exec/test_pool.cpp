#include "pclust/exec/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace pclust::exec {
namespace {

TEST(Pool, SizeOneRunsInline) {
  Pool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(7);
  pool.for_range(7, 2, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) seen[i] = std::this_thread::get_id();
  });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(Pool, ZeroPicksHardwareConcurrency) {
  Pool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(Pool, EveryIndexVisitedExactlyOnce) {
  Pool pool(4);
  for (std::size_t n : {0u, 1u, 3u, 64u, 1000u}) {
    for (std::size_t grain : {0u, 1u, 7u, 1000u}) {
      std::vector<std::atomic<int>> hits(n);
      parallel_for(pool, n, grain, [&](std::size_t i) { hits[i]++; });
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " grain=" << grain
                                     << " i=" << i;
      }
    }
  }
}

TEST(Pool, ParallelMapIsIndexOrdered) {
  Pool pool(4);
  const auto out = parallel_map<std::uint64_t>(
      pool, 500, 3, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 500u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(Pool, ReductionMatchesSerial) {
  Pool pool(3);
  const std::size_t n = 1 << 12;
  const auto parts = parallel_map<double>(pool, n, 32, [](std::size_t i) {
    return 1.0 / static_cast<double>(i + 1);
  });
  // Fold in index order: bit-identical to the straight serial loop.
  double pooled = 0.0;
  for (double v : parts) pooled += v;
  double serial = 0.0;
  for (std::size_t i = 0; i < n; ++i) serial += 1.0 / static_cast<double>(i + 1);
  EXPECT_EQ(pooled, serial);
}

TEST(Pool, ExceptionPropagatesToCaller) {
  Pool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 100, 1,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("chunk 37");
                   }),
      std::runtime_error);
  // The pool stays usable after a failed loop.
  std::atomic<int> count{0};
  parallel_for(pool, 10, 1, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 10);
}

TEST(Pool, ConcurrentForRangeFromManyThreads) {
  // mpsim rank threads share one pool: concurrent for_range calls must each
  // see a complete, private iteration space.
  Pool pool(4);
  constexpr int kCallers = 6;
  constexpr std::size_t kN = 400;
  std::vector<std::uint64_t> sums(kCallers, 0);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &sums, c] {
      std::vector<std::uint32_t> hits(kN, 0);
      parallel_for(pool, kN, 7, [&hits](std::size_t i) { hits[i]++; });
      sums[static_cast<std::size_t>(c)] =
          std::accumulate(hits.begin(), hits.end(), std::uint64_t{0});
    });
  }
  for (auto& t : callers) t.join();
  for (std::uint64_t s : sums) EXPECT_EQ(s, kN);
}

TEST(Pool, NestedWorkFromPoolSizesAgrees) {
  // The same computation on pools of size 1, 2, and 8 gives the same bytes.
  std::vector<std::vector<std::uint64_t>> results;
  for (unsigned threads : {1u, 2u, 8u}) {
    Pool pool(threads);
    results.push_back(parallel_map<std::uint64_t>(
        pool, 777, 5, [](std::size_t i) { return (i * 2654435761u) >> 3; }));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

}  // namespace
}  // namespace pclust::exec
