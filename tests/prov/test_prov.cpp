// The provenance ledger and the explain algorithms over it: edge/ledger
// serialization round trips (strict parse: tampered summaries are
// rejected), the evidence-forest path queries, and audit_family's
// deterministic weak-link / hub / Steiner rankings on hand-built trees.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "pclust/prov/edge.hpp"
#include "pclust/prov/explain.hpp"
#include "pclust/prov/ledger.hpp"

namespace pclust::prov {
namespace {

Edge ccd_edge(std::uint32_t a, std::uint32_t b, std::int32_t score) {
  Edge e;
  e.a = a;
  e.b = b;
  e.phase = Phase::kCcd;
  e.rule = Rule::kOverlap;
  e.score = score;
  e.matches = static_cast<std::uint32_t>(score);
  e.columns = static_cast<std::uint32_t>(score) + 10;
  e.a_span = 50;
  e.b_span = 48;
  return e;
}

Edge dsd_edge(std::uint32_t a, std::uint32_t b) {
  Edge e;
  e.a = a;
  e.b = b;
  e.phase = Phase::kDsd;
  e.rule = Rule::kBd;
  e.score = 3;
  e.matches = 3;
  e.columns = 7;
  return e;
}

TEST(ProvNames, PhaseAndRuleRoundTrip) {
  for (const Phase p : {Phase::kRr, Phase::kCcd, Phase::kDsd}) {
    EXPECT_EQ(phase_from_name(phase_name(p)), p);
  }
  for (const Rule r :
       {Rule::kContainment, Rule::kOverlap, Rule::kBd, Rule::kBm}) {
    EXPECT_EQ(rule_from_name(rule_name(r)), r);
  }
  EXPECT_THROW((void)phase_from_name("bgg"), std::invalid_argument);
  EXPECT_THROW((void)rule_from_name("B_x"), std::invalid_argument);
}

TEST(ProvLedger, EdgeRoundTripsThroughItsJsonLine) {
  Edge e;
  e.a = 17;
  e.b = 3;
  e.phase = Phase::kRr;
  e.rule = Rule::kContainment;
  e.score = -4;  // negative scores must survive (alignment can go negative)
  e.matches = 91;
  e.columns = 96;
  e.a_span = 96;
  e.b_span = 120;
  EXPECT_EQ(parse_edge(render_edge(e)), e);

  const Edge d = dsd_edge(5, 5);  // a == b is legal for shingle merges
  EXPECT_EQ(parse_edge(render_edge(d)), d);
}

TEST(ProvLedger, MalformedEdgeLinesThrow) {
  EXPECT_THROW((void)parse_edge("not json"), std::runtime_error);
  EXPECT_THROW((void)parse_edge("{\"a\":1}"), std::runtime_error);
  EXPECT_THROW((void)parse_edge(
                   "{\"a\":1,\"b\":2,\"phase\":\"nope\",\"rule\":"
                   "\"overlap\",\"score\":1,\"matches\":1,\"columns\":1,"
                   "\"a_span\":0,\"b_span\":0}"),
               std::runtime_error);
}

Ledger small_ledger() {
  Ledger ledger;
  ledger.sequences = 6;
  Edge rr;
  rr.a = 5;
  rr.b = 0;
  rr.phase = Phase::kRr;
  rr.rule = Rule::kContainment;
  rr.score = 80;
  rr.matches = 40;
  rr.columns = 42;
  rr.a_span = 42;
  rr.b_span = 60;
  ledger.edges.push_back(rr);
  ledger.edges.push_back(ccd_edge(0, 1, 33));
  ledger.edges.push_back(ccd_edge(1, 2, 21));
  ledger.edges.push_back(dsd_edge(0, 2));
  ledger.recount();
  ledger.counts.rr_merges = 1;
  ledger.counts.ccd_merges = 2;
  ledger.counts.dsd_merges = 1;
  return ledger;
}

TEST(ProvLedger, RecountTalliesPhasesAndRules) {
  const Ledger ledger = small_ledger();
  EXPECT_EQ(ledger.counts.rr_edges, 1u);
  EXPECT_EQ(ledger.counts.ccd_edges, 2u);
  EXPECT_EQ(ledger.counts.dsd_edges, 1u);
  EXPECT_EQ(ledger.counts.rule_containment, 1u);
  EXPECT_EQ(ledger.counts.rule_overlap, 2u);
  EXPECT_EQ(ledger.counts.rule_bd, 1u);
  EXPECT_EQ(ledger.counts.rule_bm, 0u);
  EXPECT_EQ(ledger.counts.total_edges(), 4u);
  EXPECT_TRUE(ledger.counts.identity_holds());
}

TEST(ProvLedger, IdentityFailsWhenAMergeIsUncovered) {
  Ledger ledger = small_ledger();
  ledger.counts.ccd_merges = 3;  // one merge more than the evidence covers
  EXPECT_FALSE(ledger.counts.identity_holds());
}

TEST(ProvLedger, RenderParseRoundTripIsExact) {
  const Ledger ledger = small_ledger();
  const std::string bytes = render_ledger(ledger);
  const Ledger back = parse_ledger(bytes);
  EXPECT_EQ(back.sequences, ledger.sequences);
  EXPECT_EQ(back.edges, ledger.edges);
  EXPECT_TRUE(back.counts.identity_holds());
  // Byte stability: re-rendering the parsed ledger reproduces the bytes.
  EXPECT_EQ(render_ledger(back), bytes);
}

TEST(ProvLedger, TamperedSummaryIsRejected) {
  std::string bytes = render_ledger(small_ledger());
  const std::string::size_type at = bytes.find("\"ccd\":2");
  ASSERT_NE(at, std::string::npos);
  bytes.replace(at, 7, "\"ccd\":9");
  EXPECT_THROW((void)parse_ledger(bytes), std::runtime_error);
}

TEST(ProvLedger, TruncatedLedgerIsRejected) {
  const std::string bytes = render_ledger(small_ledger());
  // Drop the summary line: strict parsing must notice.
  const std::string::size_type last =
      bytes.find_last_of('\n', bytes.size() - 2);
  ASSERT_NE(last, std::string::npos);
  EXPECT_THROW((void)parse_ledger(bytes.substr(0, last + 1)),
               std::runtime_error);
}

TEST(ProvLedger, FileRoundTrip) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("pclust_prov_roundtrip_" + std::to_string(::getpid()) + ".jsonl");
  const Ledger ledger = small_ledger();
  write_ledger(path.string(), ledger);
  const Ledger back = read_ledger(path.string());
  EXPECT_EQ(back.edges, ledger.edges);
  EXPECT_EQ(back.sequences, ledger.sequences);
  std::filesystem::remove(path);
}

// ---- evidence forest -------------------------------------------------------

/// Path graph 0 -1- 1 -2- 2 with a pendant 4 at 2 and an RR removal
/// 7 -> 0; second tree {5, 6}; vertex 3 isolated.
Ledger forest_ledger() {
  Ledger ledger;
  ledger.sequences = 8;
  Edge rr;
  rr.a = 7;
  rr.b = 0;
  rr.phase = Phase::kRr;
  rr.rule = Rule::kContainment;
  rr.score = 55;
  ledger.edges.push_back(ccd_edge(0, 1, 10));
  ledger.edges.push_back(ccd_edge(1, 2, 5));
  ledger.edges.push_back(ccd_edge(2, 4, 7));
  ledger.edges.push_back(ccd_edge(5, 6, 3));
  ledger.edges.push_back(rr);
  ledger.edges.push_back(dsd_edge(0, 2));
  ledger.edges.push_back(dsd_edge(0, 5));  // crosses families: no support
  ledger.recount();
  ledger.counts.rr_merges = 1;
  ledger.counts.ccd_merges = 4;
  ledger.counts.dsd_merges = 2;
  return ledger;
}

TEST(EvidenceForestTest, ConnectivityFollowsRrAndCcdEdgesOnly) {
  const EvidenceForest forest(forest_ledger());
  EXPECT_TRUE(forest.connected(0, 4));
  EXPECT_TRUE(forest.connected(7, 2));  // via the RR containment edge
  EXPECT_TRUE(forest.connected(5, 6));
  EXPECT_FALSE(forest.connected(0, 5));  // the DSD edge 0-5 is not evidence
  EXPECT_FALSE(forest.connected(3, 0));  // isolated vertex
}

TEST(EvidenceForestTest, PathIsTheUniqueChainBetweenEndpoints) {
  const Ledger ledger = forest_ledger();
  const EvidenceForest forest(ledger);
  // Forest edge indices: 0:(0,1) 1:(1,2) 2:(2,4) 3:(5,6) 4:(7,0) —
  // ledger order with the DSD lines dropped.
  EXPECT_EQ(forest.path(0, 4), (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(forest.path(4, 0), (std::vector<std::uint32_t>{2, 1, 0}));
  EXPECT_EQ(forest.path(7, 2), (std::vector<std::uint32_t>{4, 0, 1}));
  EXPECT_TRUE(forest.path(1, 1).empty());
  EXPECT_TRUE(forest.path(0, 5).empty());  // disconnected
  // Consecutive path edges share a vertex, starting at the query's a.
  const auto chain = forest.path(7, 4);
  std::uint32_t at = 7;
  for (const std::uint32_t idx : chain) {
    const Edge& e = forest.edge(idx);
    ASSERT_TRUE(e.a == at || e.b == at);
    at = e.a == at ? e.b : e.a;
  }
  EXPECT_EQ(at, 4u);
}

TEST(EvidenceForestTest, CycleMeansDoubleCoveredMergeAndIsRejected) {
  Ledger ledger;
  ledger.sequences = 3;
  ledger.edges.push_back(ccd_edge(0, 1, 1));
  ledger.edges.push_back(ccd_edge(1, 2, 2));
  ledger.edges.push_back(ccd_edge(0, 2, 3));
  ledger.recount();
  ledger.counts.ccd_merges = 3;
  EXPECT_THROW(EvidenceForest{ledger}, std::invalid_argument);
}

TEST(EvidenceForestTest, SelfAndOutOfRangeEdgesAreRejected) {
  Ledger self;
  self.sequences = 2;
  self.edges.push_back(ccd_edge(1, 1, 1));
  EXPECT_THROW(EvidenceForest{self}, std::invalid_argument);

  Ledger range;
  range.sequences = 2;
  range.edges.push_back(ccd_edge(0, 2, 1));
  EXPECT_THROW(EvidenceForest{range}, std::invalid_argument);
}

// ---- family audit ----------------------------------------------------------

TEST(AuditFamilyTest, SteinerTreeWeakLinksAndHubsAreDeterministic) {
  const Ledger ledger = forest_ledger();
  const EvidenceForest forest(ledger);
  const FamilyAudit audit = audit_family(forest, ledger, {4, 0, 7});

  EXPECT_TRUE(audit.connected);
  EXPECT_EQ(audit.members, (std::vector<std::uint32_t>{0, 4, 7}));
  // Bridging intermediates on the member-to-member paths.
  EXPECT_EQ(audit.steiner_vertices, (std::vector<std::uint32_t>{1, 2}));
  // Weakest evidence first: scores 5 (edge 1), 7 (edge 2), 10 (edge 0),
  // 55 (the RR edge, index 4).
  EXPECT_EQ(audit.weak_links, (std::vector<std::uint32_t>{1, 2, 0, 4}));
  // Interior vertices 0, 1, 2 each split the three members apart; vertex 0
  // is itself a member (a fusion point can be a member). All split into
  // two groups of sizes {1, 2} except none yields three groups here.
  ASSERT_EQ(audit.hubs.size(), 3u);
  for (const Hub& hub : audit.hubs) {
    EXPECT_EQ(hub.parts, 2u);
    EXPECT_EQ(hub.min_part, 1u);
  }
  EXPECT_EQ(audit.hubs[0].seq, 0u);  // ties break on ascending id
  EXPECT_EQ(audit.hubs[1].seq, 1u);
  EXPECT_EQ(audit.hubs[2].seq, 2u);
  // DSD edge 0-2: only one endpoint is a member, so no support; 0-5 ditto.
  EXPECT_EQ(audit.dsd_support, 0u);
}

TEST(AuditFamilyTest, StarHubFragmentsIntoThreeParts) {
  Ledger ledger;
  ledger.sequences = 4;
  ledger.edges.push_back(ccd_edge(0, 1, 9));
  ledger.edges.push_back(ccd_edge(0, 2, 8));
  ledger.edges.push_back(ccd_edge(0, 3, 7));
  ledger.edges.push_back(dsd_edge(1, 2));
  ledger.recount();
  ledger.counts.ccd_merges = 3;
  ledger.counts.dsd_merges = 1;
  const EvidenceForest forest(ledger);
  const FamilyAudit audit = audit_family(forest, ledger, {1, 2, 3});

  // The star center 0 is pure Steiner and the sole hub: 3 groups of 1.
  EXPECT_EQ(audit.steiner_vertices, (std::vector<std::uint32_t>{0}));
  ASSERT_EQ(audit.hubs.size(), 1u);
  EXPECT_EQ(audit.hubs[0].seq, 0u);
  EXPECT_EQ(audit.hubs[0].parts, 3u);
  EXPECT_EQ(audit.hubs[0].min_part, 1u);
  // DSD edge 1-2 has both endpoints inside the family.
  EXPECT_EQ(audit.dsd_support, 1u);
}

TEST(AuditFamilyTest, MembersInDifferentTreesFlaggedDisconnected) {
  const Ledger ledger = forest_ledger();
  const EvidenceForest forest(ledger);
  const FamilyAudit audit = audit_family(forest, ledger, {0, 5});
  EXPECT_FALSE(audit.connected);
}

TEST(AuditFamilyTest, SingletonFamilyHasNoEvidence) {
  const Ledger ledger = forest_ledger();
  const EvidenceForest forest(ledger);
  const FamilyAudit audit = audit_family(forest, ledger, {4, 4});
  EXPECT_EQ(audit.members, (std::vector<std::uint32_t>{4}));
  EXPECT_TRUE(audit.weak_links.empty());
  EXPECT_TRUE(audit.hubs.empty());
  EXPECT_TRUE(audit.connected);
}

TEST(AuditFamilyTest, EmptyMemberListThrows) {
  const Ledger ledger = forest_ledger();
  const EvidenceForest forest(ledger);
  EXPECT_THROW((void)audit_family(forest, ledger, {}), std::invalid_argument);
}

}  // namespace
}  // namespace pclust::prov
