#include "pclust/gos/gos_pipeline.hpp"

#include <gtest/gtest.h>

#include "pclust/quality/metrics.hpp"
#include "pclust/seq/alphabet.hpp"
#include "pclust/synth/generator.hpp"

namespace pclust::gos {
namespace {

synth::Dataset dense_families(std::uint64_t seed, std::uint32_t n = 120) {
  synth::DatasetSpec spec;
  spec.seed = seed;
  spec.num_sequences = n;
  spec.num_families = 3;
  spec.mean_length = 90;
  spec.redundant_fraction = 0.10;
  spec.noise_fraction = 0.15;
  spec.max_divergence = 0.12;  // high identity: edges pass the 70 % cutoff
  return synth::generate(spec);
}

GosParams scaled_params() {
  GosParams p;
  p.aligner.word_size = 4;
  p.shared_neighbors_k = 5;  // scaled-down analog of the paper's k = 10
  return p;
}

TEST(SeededAligner, SharedWordYieldsAlignment) {
  seq::SequenceSet set;
  set.add("a", "WWWWDEFGHIKLMNWWWW");
  set.add("b", "YYDEFGHIKLMNYY");
  SeededAligner aligner(set, SeededAlignerParams{}, align::blosum62());
  const auto r = aligner.align(0, 1);
  ASSERT_TRUE(r.has_value());
  EXPECT_GE(r->matches, 10u);
  EXPECT_EQ(aligner.seeded_pairs(), 1u);
}

TEST(SeededAligner, NoSharedWordNoAlignment) {
  seq::SequenceSet set;
  set.add("a", std::string(30, 'A'));
  set.add("b", std::string(30, 'W'));
  SeededAligner aligner(set, SeededAlignerParams{}, align::blosum62());
  EXPECT_FALSE(aligner.align(0, 1).has_value());
  EXPECT_EQ(aligner.seedless_pairs(), 1u);
  EXPECT_EQ(aligner.total_cells(), 0u);
}

TEST(SeededAligner, XNeverSeeds) {
  seq::SequenceSet set;
  set.add("a", "AXAXAXAXAXAX");
  set.add("b", "AXAXAXAXAXAX");
  SeededAligner aligner(set, SeededAlignerParams{.word_size = 4},
                        align::blosum62());
  EXPECT_FALSE(aligner.align(0, 1).has_value());
}

TEST(SeededAligner, BandedCellsBounded) {
  seq::SequenceSet set;
  const std::string shared(60, 'M');
  set.add("a", shared + std::string(60, 'A'));
  set.add("b", shared + std::string(60, 'C'));
  SeededAligner banded(set, SeededAlignerParams{.band = 8},
                       align::blosum62());
  SeededAligner full(
      set, SeededAlignerParams{.band = 8, .full_matrix_fallback = true},
      align::blosum62());
  ASSERT_TRUE(banded.align(0, 1).has_value());
  ASSERT_TRUE(full.align(0, 1).has_value());
  EXPECT_LT(banded.total_cells(), full.total_cells());
}

TEST(SeededAligner, InvalidWordSizeThrows) {
  seq::SequenceSet set;
  set.add("a", "ACDEFGHIKL");
  EXPECT_THROW(
      SeededAligner(set, SeededAlignerParams{.word_size = 1},
                    align::blosum62()),
      std::invalid_argument);
}

TEST(GosPipeline, RemovesInjectedDuplicates) {
  const auto d = dense_families(71);
  const auto r = run_gos(d.sequences, scaled_params());
  std::size_t found = 0;
  for (seq::SeqId id = 0; id < d.sequences.size(); ++id) {
    if (d.truth.redundant[id] && r.removed[id]) ++found;
  }
  EXPECT_GE(found, d.truth.redundant_count() * 7 / 10);
  EXPECT_EQ(r.non_redundant.size() + [&] {
    std::size_t n = 0;
    for (auto v : r.removed) n += v;
    return n;
  }(), d.sequences.size());
}

TEST(GosPipeline, QuadraticAlignmentWork) {
  // The baseline's defining property: Θ(n²) pair visits.
  const auto d = dense_families(72, 60);
  const auto r = run_gos(d.sequences, scaled_params());
  const std::uint64_t n = d.sequences.size();
  EXPECT_GE(r.alignments, n * (n - 1) / 2);  // step 1 alone visits all pairs
}

TEST(GosPipeline, ClustersAlignWithGroundTruth) {
  const auto d = dense_families(73);
  const auto r = run_gos(d.sequences, scaled_params());
  ASSERT_FALSE(r.clusters.empty());
  const auto m =
      quality::compare_clusterings(r.clusters, d.truth.benchmark_clusters());
  EXPECT_GT(m.precision, 0.9);
  EXPECT_GT(m.sensitivity, 0.3);
}

TEST(GosPipeline, MinClusterSizeRespected) {
  const auto d = dense_families(74);
  GosParams p = scaled_params();
  p.min_cluster = 8;
  const auto r = run_gos(d.sequences, p);
  for (const auto& c : r.clusters) EXPECT_GE(c.size(), 8u);
}

TEST(GosPipeline, ClustersAreDisjointNonRedundant) {
  const auto d = dense_families(75);
  const auto r = run_gos(d.sequences, scaled_params());
  std::set<seq::SeqId> seen;
  for (const auto& c : r.clusters) {
    for (auto id : c) {
      EXPECT_TRUE(seen.insert(id).second);
      EXPECT_FALSE(r.removed[id]);
    }
  }
}

TEST(GosPipeline, Deterministic) {
  const auto d = dense_families(76, 80);
  const auto a = run_gos(d.sequences, scaled_params());
  const auto b = run_gos(d.sequences, scaled_params());
  EXPECT_EQ(a.clusters, b.clusters);
  EXPECT_EQ(a.graph_edges, b.graph_edges);
}

TEST(GosPipeline, HigherKFragmentsMore) {
  const auto d = dense_families(77);
  GosParams loose = scaled_params();
  loose.shared_neighbors_k = 2;
  GosParams strict = scaled_params();
  strict.shared_neighbors_k = 12;
  strict.min_cluster = 2;
  const auto a = run_gos(d.sequences, loose);
  const auto b = run_gos(d.sequences, strict);
  // Stricter shared-neighbor requirement never yields fewer clusters.
  EXPECT_LE(a.clusters.size(), b.clusters.size() + 1);
}

}  // namespace
}  // namespace pclust::gos

namespace pclust::gos {
namespace {

class GosInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GosInvariants, StructuralPropertiesHold) {
  const auto d = dense_families(GetParam(), 90);
  const auto r = run_gos(d.sequences, scaled_params());

  // Removed + non-redundant partition the input.
  std::size_t removed = 0;
  for (auto v : r.removed) removed += v;
  EXPECT_EQ(removed + r.non_redundant.size(), d.sequences.size());

  // Clusters: disjoint, meet the size floor, drawn from survivors,
  // descending by size.
  std::set<seq::SeqId> seen;
  for (std::size_t c = 0; c < r.clusters.size(); ++c) {
    EXPECT_GE(r.clusters[c].size(), GosParams{}.min_cluster);
    if (c > 0) {
      EXPECT_GE(r.clusters[c - 1].size(), r.clusters[c].size());
    }
    for (seq::SeqId id : r.clusters[c]) {
      EXPECT_TRUE(seen.insert(id).second);
      EXPECT_FALSE(r.removed[id]);
    }
  }

  // Work accounting: at least the Θ(n²) step-1 sweep.
  const std::uint64_t n = d.sequences.size();
  EXPECT_GE(r.alignments, n * (n - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GosInvariants,
                         ::testing::Values(201, 202, 203, 204));

}  // namespace
}  // namespace pclust::gos
