#include "pclust/quality/cluster_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pclust::quality {
namespace {

seq::SequenceSet make_set() {
  seq::SequenceSet set;
  for (const char* name : {"alpha", "beta", "gamma", "delta"}) {
    set.add(name, "ACDEFGHIKL");
  }
  return set;
}

TEST(ClusterIo, RoundTrip) {
  const auto set = make_set();
  const Clustering clusters = {{0, 2}, {1}, {3}};
  std::ostringstream out;
  write_clustering(out, clusters, set);

  std::istringstream in(out.str());
  const Clustering back = read_clustering(in, set);
  // Sorted by descending size; singletons ordered by first member.
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0], (std::vector<seq::SeqId>{0, 2}));
  EXPECT_EQ(back[1], (std::vector<seq::SeqId>{1}));
  EXPECT_EQ(back[2], (std::vector<seq::SeqId>{3}));
}

TEST(ClusterIo, CommentsAndBlanksIgnored) {
  const auto set = make_set();
  std::istringstream in("# header\n\nfamA\talpha\n\n# more\nfamA\tbeta\n");
  const Clustering c = read_clustering(in, set);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], (std::vector<seq::SeqId>{0, 1}));
}

TEST(ClusterIo, ArbitraryLabelsGroup) {
  const auto set = make_set();
  std::istringstream in(
      "CRAL/TRIO\tgamma\nother\tbeta\nCRAL/TRIO\talpha\n");
  const Clustering c = read_clustering(in, set);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0], (std::vector<seq::SeqId>{0, 2}));
}

TEST(ClusterIo, UnknownSequenceThrows) {
  const auto set = make_set();
  std::istringstream in("f\tnonexistent\n");
  EXPECT_THROW(
      { [[maybe_unused]] auto c = read_clustering(in, set); },
      std::runtime_error);
}

TEST(ClusterIo, MissingTabThrows) {
  const auto set = make_set();
  std::istringstream in("just-one-field\n");
  EXPECT_THROW(
      { [[maybe_unused]] auto c = read_clustering(in, set); },
      std::runtime_error);
}

TEST(ClusterIo, EmptyInputEmptyClustering) {
  const auto set = make_set();
  std::istringstream in("# nothing here\n");
  EXPECT_TRUE(read_clustering(in, set).empty());
}

TEST(ClusterIo, MissingFileThrows) {
  const auto set = make_set();
  EXPECT_THROW(
      {
        [[maybe_unused]] auto c =
            read_clustering_file("/nonexistent/x.tsv", set);
      },
      std::runtime_error);
}

TEST(ClusterIo, MetricsSurviveRoundTrip) {
  const auto set = make_set();
  const Clustering test = {{0, 1}, {2, 3}};
  const Clustering benchmark = {{0, 1, 2}, {3}};
  std::ostringstream t_out, b_out;
  write_clustering(t_out, test, set);
  write_clustering(b_out, benchmark, set);
  std::istringstream t_in(t_out.str()), b_in(b_out.str());
  const Metrics direct = compare_clusterings(test, benchmark);
  const Metrics via_io = compare_clusterings(read_clustering(t_in, set),
                                             read_clustering(b_in, set));
  EXPECT_EQ(direct.counts.tp, via_io.counts.tp);
  EXPECT_EQ(direct.counts.fp, via_io.counts.fp);
  EXPECT_EQ(direct.counts.fn, via_io.counts.fn);
  EXPECT_EQ(direct.counts.tn, via_io.counts.tn);
}

}  // namespace
}  // namespace pclust::quality
