#include "pclust/quality/metrics.hpp"

#include <gtest/gtest.h>

namespace pclust::quality {
namespace {

TEST(Metrics, IdenticalClusteringsPerfect) {
  const Clustering c = {{0, 1, 2}, {3, 4}, {5}};
  const Metrics m = compare_clusterings(c, c);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.sensitivity, 1.0);
  EXPECT_DOUBLE_EQ(m.overlap_quality, 1.0);
  EXPECT_DOUBLE_EQ(m.correlation, 1.0);
  EXPECT_EQ(m.counts.fp, 0u);
  EXPECT_EQ(m.counts.fn, 0u);
  EXPECT_EQ(m.common_sequences, 6u);
}

TEST(Metrics, HandComputedCounts) {
  // Test: {0,1},{2,3}; Benchmark: {0,1,2},{3}.
  // Pairs (of 6): (0,1): together/together=TP. (0,2),(1,2): sep/together=FN.
  // (2,3): together/sep=FP. (0,3),(1,3): sep/sep=TN.
  const Metrics m =
      compare_clusterings({{0, 1}, {2, 3}}, {{0, 1, 2}, {3}});
  EXPECT_EQ(m.counts.tp, 1u);
  EXPECT_EQ(m.counts.fn, 2u);
  EXPECT_EQ(m.counts.fp, 1u);
  EXPECT_EQ(m.counts.tn, 2u);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.sensitivity, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.overlap_quality, 0.25);
}

TEST(Metrics, FragmentationLowersSensitivityNotPrecision) {
  // Test splits the benchmark cluster in two — exactly the paper's expected
  // behaviour (850 DS vs 221 GOS clusters): PR stays 1, SE drops.
  const Metrics m = compare_clusterings({{0, 1, 2}, {3, 4, 5}},
                                        {{0, 1, 2, 3, 4, 5}});
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_LT(m.sensitivity, 0.5);
  EXPECT_EQ(m.counts.fp, 0u);
  EXPECT_GT(m.counts.fn, 0u);
}

TEST(Metrics, OverMergingLowersPrecision) {
  const Metrics m = compare_clusterings({{0, 1, 2, 3, 4, 5}},
                                        {{0, 1, 2}, {3, 4, 5}});
  EXPECT_LT(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.sensitivity, 1.0);
}

TEST(Metrics, RestrictedToCommonSequences) {
  // Sequences 7, 8 appear only in one clustering: excluded entirely.
  const Metrics m =
      compare_clusterings({{0, 1}, {7}}, {{0, 1, 8}});
  EXPECT_EQ(m.common_sequences, 2u);
  EXPECT_EQ(m.counts.total(), 1u);  // C(2,2) = 1 pair
  EXPECT_EQ(m.counts.tp, 1u);
}

TEST(Metrics, DisjointCoverageGivesZeroCommon) {
  const Metrics m = compare_clusterings({{0, 1}}, {{2, 3}});
  EXPECT_EQ(m.common_sequences, 0u);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.correlation, 0.0);
}

TEST(Metrics, DuplicateIdThrows) {
  EXPECT_THROW(
      { [[maybe_unused]] auto m = compare_clusterings({{0, 1}, {1, 2}},
                                                      {{0, 1, 2}}); },
      std::invalid_argument);
  EXPECT_THROW(
      { [[maybe_unused]] auto m = compare_clusterings({{0, 1}}, {{2, 2}}); },
      std::invalid_argument);
}

TEST(Metrics, CorrelationSignedForAntiCorrelation) {
  // Test groups exactly the pairs the benchmark separates.
  const Metrics m = compare_clusterings({{0, 1}, {2, 3}}, {{0, 2}, {1, 3}});
  EXPECT_LT(m.correlation, 0.0);
}

TEST(Metrics, LabelPermutationInvariant) {
  const Clustering a = {{0, 1, 2}, {3, 4}};
  const Clustering a_shuffled = {{4, 3}, {2, 0, 1}};
  const Metrics m1 = compare_clusterings(a, {{0, 1}, {2, 3, 4}});
  const Metrics m2 = compare_clusterings(a_shuffled, {{0, 1}, {2, 3, 4}});
  EXPECT_EQ(m1.counts.tp, m2.counts.tp);
  EXPECT_EQ(m1.counts.fp, m2.counts.fp);
  EXPECT_EQ(m1.counts.fn, m2.counts.fn);
  EXPECT_EQ(m1.counts.tn, m2.counts.tn);
}

TEST(Metrics, LargeClusterCountsUseContingency) {
  // Two 1000-element clusters: ~C(2000,2) pairs without quadratic blowup.
  Clustering big(2);
  for (seq::SeqId i = 0; i < 1000; ++i) big[0].push_back(i);
  for (seq::SeqId i = 1000; i < 2000; ++i) big[1].push_back(i);
  const Metrics m = compare_clusterings(big, big);
  EXPECT_EQ(m.counts.tp, 2 * (1000ull * 999 / 2));
  EXPECT_EQ(m.counts.tn, 1000ull * 1000);
  EXPECT_DOUBLE_EQ(m.correlation, 1.0);
}

TEST(Metrics, DegenerateSingleClusterCorrelationIsZero) {
  // All pairs positive in both: TN+FP and TN+FN are 0, the CC denominator
  // vanishes, and the convention is to report 0.
  const Metrics m = compare_clusterings({{0, 1, 2}}, {{0, 1, 2}});
  EXPECT_DOUBLE_EQ(m.correlation, 0.0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
}

TEST(Metrics, SingletonsContributeOnlyNegatives) {
  const Metrics m = compare_clusterings({{0}, {1}, {2}}, {{0}, {1}, {2}});
  EXPECT_EQ(m.counts.tp, 0u);
  EXPECT_EQ(m.counts.tn, 3u);
  // No positives anywhere: PR/SE undefined -> reported as 0.
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
}

}  // namespace
}  // namespace pclust::quality
