#include "pclust/seq/complexity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "pclust/seq/alphabet.hpp"

namespace pclust::seq {
namespace {

TEST(ShannonEntropy, KnownValues) {
  EXPECT_DOUBLE_EQ(shannon_entropy(encode("AAAA")), 0.0);
  EXPECT_DOUBLE_EQ(shannon_entropy(encode("ACAC")), 1.0);
  EXPECT_NEAR(shannon_entropy(encode("ACDE")), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(shannon_entropy(""), 0.0);
}

TEST(MaskLowComplexity, HomopolymerRunMasked) {
  const std::string ranks =
      encode("MKTAYIAKQRDEFW" "AAAAAAAAAAAAAAAA" "MKTAYIAKQRDEFW");
  const std::string masked = mask_low_complexity(ranks);
  const std::string ascii = decode(masked);
  // The poly-A core must be masked...
  EXPECT_NE(ascii.find("XXXXXXXX"), std::string::npos);
  // ...while the complex flanks mostly survive (windows straddling the
  // run's edge may claim a residue or two of flank).
  EXPECT_EQ(ascii.substr(0, 9), "MKTAYIAKQ");
  EXPECT_EQ(ascii.substr(ascii.size() - 4), "DEFW");
}

TEST(MaskLowComplexity, ComplexSequenceUntouched) {
  const std::string ranks = encode("MKTAYIAKQRDEFWHCPNGSVLMKTAYI");
  EXPECT_EQ(mask_low_complexity(ranks), ranks);
}

TEST(MaskLowComplexity, ShortSequencePassesThrough) {
  const std::string ranks = encode("AAAA");  // shorter than the window
  EXPECT_EQ(mask_low_complexity(ranks), ranks);
}

TEST(MaskLowComplexity, DipeptideRepeatMasked) {
  const std::string ranks = encode(std::string("MKTAYIAKQRDEFW") +
                                   "PQPQPQPQPQPQPQPQPQPQ" +
                                   "MKTAYIAKQRDEFW");
  const std::string ascii = decode(mask_low_complexity(ranks));
  EXPECT_NE(ascii.find("XXXX"), std::string::npos);
}

TEST(MaskLowComplexity, ThresholdZeroMasksNothing) {
  ComplexityParams params;
  params.min_entropy = 0.0;  // nothing is strictly below 0
  const std::string ranks = encode(std::string(40, 'A'));
  EXPECT_EQ(mask_low_complexity(ranks, params), ranks);
}

TEST(MaskLowComplexity, SetVariantPreservesNames) {
  SequenceSet set;
  set.add("clean", "MKTAYIAKQRDEFWHCPNGS");
  set.add("runny", std::string(30, 'W'));
  const SequenceSet masked = mask_low_complexity(set);
  ASSERT_EQ(masked.size(), 2u);
  EXPECT_EQ(masked.name(0), "clean");
  EXPECT_EQ(masked.ascii(0), set.ascii(0));
  EXPECT_EQ(masked.ascii(1), std::string(30, 'X'));
}

TEST(MaskedFraction, Bounds) {
  SequenceSet set;
  set.add("clean", "MKTAYIAKQRDEFWHCPNGS");
  set.add("runny", std::string(20, 'W'));
  const double f = masked_fraction(set);
  EXPECT_GT(f, 0.4);
  EXPECT_LT(f, 0.6);

  SequenceSet empty;
  EXPECT_DOUBLE_EQ(masked_fraction(empty), 0.0);
}

TEST(MaskLowComplexity, MaskedResiduesNeverSeedMatches) {
  // The whole point: a masked homopolymer no longer produces exact-match
  // pairs (rank X != rank X is false, but X maps to kRankX which the
  // suffix machinery treats as an ordinary symbol... verify the mask turns
  // the run into X so KmerIndex-style consumers skip it).
  const std::string ranks = encode(std::string(30, 'L'));
  const std::string masked = mask_low_complexity(ranks);
  for (char r : masked) {
    EXPECT_EQ(static_cast<std::uint8_t>(r), kRankX);
  }
}

}  // namespace
}  // namespace pclust::seq
