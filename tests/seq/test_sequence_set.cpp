#include "pclust/seq/sequence_set.hpp"

#include <gtest/gtest.h>

#include "pclust/seq/alphabet.hpp"

namespace pclust::seq {
namespace {

TEST(SequenceSet, AddAndRetrieve) {
  SequenceSet set;
  const SeqId a = set.add("s1", "ACDEF");
  const SeqId b = set.add("s2", "GHIK");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.ascii(a), "ACDEF");
  EXPECT_EQ(set.ascii(b), "GHIK");
  EXPECT_EQ(set.length(a), 5u);
  EXPECT_EQ(set.name(b), "s2");
}

TEST(SequenceSet, ResiduesAreRankEncoded) {
  SequenceSet set;
  const SeqId id = set.add("s", "AC");
  const auto r = set.residues(id);
  EXPECT_EQ(static_cast<int>(r[0]), 0);  // A is rank 0
  EXPECT_EQ(static_cast<int>(r[1]), 1);  // C is rank 1
}

TEST(SequenceSet, EmptySequenceRejected) {
  SequenceSet set;
  EXPECT_THROW(set.add("e", ""), std::invalid_argument);
}

TEST(SequenceSet, BadRankRejected) {
  SequenceSet set;
  std::string bad(3, static_cast<char>(kRankSeparator));
  EXPECT_THROW(set.add_encoded("b", bad), std::invalid_argument);
}

TEST(SequenceSet, TotalAndMeanLength) {
  SequenceSet set;
  set.add("a", "ACDE");
  set.add("b", "AC");
  EXPECT_EQ(set.total_residues(), 6u);
  EXPECT_DOUBLE_EQ(set.mean_length(), 3.0);
}

TEST(SequenceSet, EmptySetMeanZero) {
  SequenceSet set;
  EXPECT_DOUBLE_EQ(set.mean_length(), 0.0);
  EXPECT_TRUE(set.empty());
}

TEST(SequenceSet, SubsetPreservesOrderAndContent) {
  SequenceSet set;
  set.add("a", "AAAA");
  set.add("b", "CCCC");
  set.add("c", "DDDD");
  const SequenceSet sub = set.subset({2, 0});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.name(0), "c");
  EXPECT_EQ(sub.ascii(0), "DDDD");
  EXPECT_EQ(sub.name(1), "a");
  EXPECT_EQ(sub.ascii(1), "AAAA");
}

TEST(SequenceSet, ManySequencesContiguousBuffer) {
  SequenceSet set;
  for (int i = 0; i < 100; ++i) {
    set.add("s" + std::to_string(i), std::string(7, 'M'));
  }
  EXPECT_EQ(set.size(), 100u);
  EXPECT_EQ(set.total_residues(), 700u);
  for (SeqId id = 0; id < 100; ++id) {
    EXPECT_EQ(set.ascii(id), "MMMMMMM");
  }
}

}  // namespace
}  // namespace pclust::seq
