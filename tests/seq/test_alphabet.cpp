#include "pclust/seq/alphabet.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

namespace pclust::seq {
namespace {

TEST(Alphabet, RoundTripAllResidues) {
  for (std::uint8_t r = 0; r < kNumResidues; ++r) {
    EXPECT_EQ(char_to_rank(rank_to_char(r)), r);
  }
}

TEST(Alphabet, ResidueCharsDistinct) {
  std::set<char> chars;
  for (std::uint8_t r = 0; r < kNumResidues; ++r) {
    chars.insert(rank_to_char(r));
  }
  EXPECT_EQ(chars.size(), static_cast<std::size_t>(kNumResidues));
}

TEST(Alphabet, LowerCaseAccepted) {
  EXPECT_EQ(char_to_rank('a'), char_to_rank('A'));
  EXPECT_EQ(char_to_rank('w'), char_to_rank('W'));
}

TEST(Alphabet, AmbiguityCodesMapToX) {
  for (char c : {'X', 'B', 'Z', 'J', 'U', 'O', '*', 'x', 'b'}) {
    EXPECT_EQ(char_to_rank(c), kRankX) << c;
  }
}

TEST(Alphabet, InvalidCharactersRejected) {
  for (char c : {'1', ' ', '-', '\n', '@'}) {
    EXPECT_EQ(char_to_rank(c), 0xFF) << c;
    EXPECT_FALSE(is_valid_residue_char(c)) << c;
  }
}

TEST(Alphabet, EncodeDecodeRoundTrip) {
  const std::string ascii = "ACDEFGHIKLMNPQRSTVWYX";
  EXPECT_EQ(decode(encode(ascii)), ascii);
}

TEST(Alphabet, EncodeThrowsOnInvalid) {
  EXPECT_THROW(encode("AC GT"), std::invalid_argument);
  EXPECT_THROW(encode("AB1"), std::invalid_argument);
}

TEST(Alphabet, SpecialRanksRenderDistinctly) {
  EXPECT_EQ(rank_to_char(kRankSeparator), '$');
  EXPECT_EQ(rank_to_char(kRankTerminator), '#');
  EXPECT_EQ(rank_to_char(kRankX), 'X');
}

TEST(Alphabet, SeparatorAboveAllResidues) {
  // The suffix machinery relies on residues < X < separator < terminator.
  EXPECT_LT(kNumResidues, static_cast<int>(kRankSeparator));
  EXPECT_LT(kRankX, kRankSeparator);
  EXPECT_LT(kRankSeparator, kRankTerminator);
  EXPECT_LT(static_cast<int>(kRankTerminator), kIndexAlphabetSize);
}

TEST(Alphabet, BackgroundFrequenciesSumToOne) {
  const auto& f = background_frequencies();
  const double sum = std::accumulate(f.begin(), f.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-3);
  for (double v : f) EXPECT_GT(v, 0.0);
}

}  // namespace
}  // namespace pclust::seq
