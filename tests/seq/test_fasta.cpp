#include "pclust/seq/fasta.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pclust::seq {
namespace {

TEST(Fasta, ParseBasic) {
  std::istringstream in(">s1 description text\nACDE\nFGH\n>s2\nMMM\n");
  SequenceSet set;
  EXPECT_EQ(read_fasta(in, set), 2u);
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.name(0), "s1");  // description dropped
  EXPECT_EQ(set.ascii(0), "ACDEFGH");
  EXPECT_EQ(set.ascii(1), "MMM");
}

TEST(Fasta, BlankLinesIgnored) {
  std::istringstream in("\n>s\n\nAC\n\nDE\n\n");
  SequenceSet set;
  read_fasta(in, set);
  EXPECT_EQ(set.ascii(0), "ACDE");
}

TEST(Fasta, WindowsLineEndings) {
  std::istringstream in(">s\r\nACDE\r\n");
  SequenceSet set;
  read_fasta(in, set);
  EXPECT_EQ(set.ascii(0), "ACDE");
}

TEST(Fasta, ResiduesBeforeHeaderThrow) {
  std::istringstream in("ACDE\n>s\nAC\n");
  SequenceSet set;
  EXPECT_THROW(read_fasta(in, set), std::runtime_error);
}

TEST(Fasta, EmptyRecordThrows) {
  std::istringstream in(">s1\n>s2\nAC\n");
  SequenceSet set;
  EXPECT_THROW(read_fasta(in, set), std::runtime_error);
}

TEST(Fasta, EmptyStreamAddsNothing) {
  std::istringstream in("");
  SequenceSet set;
  EXPECT_EQ(read_fasta(in, set), 0u);
  EXPECT_TRUE(set.empty());
}

TEST(Fasta, RoundTripThroughWrite) {
  SequenceSet set;
  set.add("alpha", "ACDEFGHIKLMNPQRSTVWY");
  set.add("beta", std::string(150, 'W'));
  std::ostringstream out;
  write_fasta(out, set, 60);

  std::istringstream in(out.str());
  SequenceSet round;
  read_fasta(in, round);
  ASSERT_EQ(round.size(), 2u);
  EXPECT_EQ(round.name(0), "alpha");
  EXPECT_EQ(round.ascii(0), set.ascii(0));
  EXPECT_EQ(round.ascii(1), set.ascii(1));
}

TEST(Fasta, LineWidthRespected) {
  SequenceSet set;
  set.add("s", std::string(25, 'A'));
  std::ostringstream out;
  write_fasta(out, set, 10);
  EXPECT_EQ(out.str(), ">s\nAAAAAAAAAA\nAAAAAAAAAA\nAAAAA\n");
}

TEST(Fasta, MissingFileThrows) {
  SequenceSet set;
  EXPECT_THROW(read_fasta_file("/nonexistent/path.fa", set),
               std::runtime_error);
}

}  // namespace
}  // namespace pclust::seq
