#include "pclust/seq/fasta.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pclust::seq {
namespace {

TEST(Fasta, ParseBasic) {
  std::istringstream in(">s1 description text\nACDE\nFGH\n>s2\nMMM\n");
  SequenceSet set;
  EXPECT_EQ(read_fasta(in, set), 2u);
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.name(0), "s1");  // description dropped
  EXPECT_EQ(set.ascii(0), "ACDEFGH");
  EXPECT_EQ(set.ascii(1), "MMM");
}

TEST(Fasta, BlankLinesIgnored) {
  std::istringstream in("\n>s\n\nAC\n\nDE\n\n");
  SequenceSet set;
  read_fasta(in, set);
  EXPECT_EQ(set.ascii(0), "ACDE");
}

TEST(Fasta, WindowsLineEndings) {
  std::istringstream in(">s\r\nACDE\r\n");
  SequenceSet set;
  read_fasta(in, set);
  EXPECT_EQ(set.ascii(0), "ACDE");
}

TEST(Fasta, ResiduesBeforeHeaderThrow) {
  std::istringstream in("ACDE\n>s\nAC\n");
  SequenceSet set;
  EXPECT_THROW(read_fasta(in, set), std::runtime_error);
}

TEST(Fasta, EmptyRecordThrows) {
  std::istringstream in(">s1\n>s2\nAC\n");
  SequenceSet set;
  EXPECT_THROW(read_fasta(in, set), std::runtime_error);
}

TEST(Fasta, EmptyStreamAddsNothing) {
  std::istringstream in("");
  SequenceSet set;
  EXPECT_EQ(read_fasta(in, set), 0u);
  EXPECT_TRUE(set.empty());
}

TEST(Fasta, RoundTripThroughWrite) {
  SequenceSet set;
  set.add("alpha", "ACDEFGHIKLMNPQRSTVWY");
  set.add("beta", std::string(150, 'W'));
  std::ostringstream out;
  write_fasta(out, set, 60);

  std::istringstream in(out.str());
  SequenceSet round;
  read_fasta(in, round);
  ASSERT_EQ(round.size(), 2u);
  EXPECT_EQ(round.name(0), "alpha");
  EXPECT_EQ(round.ascii(0), set.ascii(0));
  EXPECT_EQ(round.ascii(1), set.ascii(1));
}

TEST(Fasta, LineWidthRespected) {
  SequenceSet set;
  set.add("s", std::string(25, 'A'));
  std::ostringstream out;
  write_fasta(out, set, 10);
  EXPECT_EQ(out.str(), ">s\nAAAAAAAAAA\nAAAAAAAAAA\nAAAAA\n");
}

TEST(Fasta, MissingFileThrows) {
  SequenceSet set;
  EXPECT_THROW(read_fasta_file("/nonexistent/path.fa", set),
               std::runtime_error);
}

TEST(Fasta, InvalidResidueThrowsWithSourceLineAndColumn) {
  std::istringstream in(">ok\nACDE\n>broken\nAC1E\n");
  SequenceSet set;
  FastaOptions options;
  options.source = "input.fa";
  try {
    read_fasta(in, set, options);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("input.fa:4"), std::string::npos) << what;
    EXPECT_NE(what.find("'1'"), std::string::npos) << what;
    EXPECT_NE(what.find("column 3"), std::string::npos) << what;
    EXPECT_NE(what.find("broken"), std::string::npos) << what;
  }
}

TEST(Fasta, MaskPolicyReplacesBadResiduesWithX) {
  std::istringstream in(">s1\nAC1E\n>s2\nMM#M\n");
  SequenceSet set;
  FastaOptions options;
  options.on_bad_residue = BadResiduePolicy::kMask;
  FastaStats stats;
  EXPECT_EQ(read_fasta(in, set, options, &stats), 2u);
  EXPECT_EQ(set.ascii(0), "ACXE");
  EXPECT_EQ(set.ascii(1), "MMXM");
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.masked_residues, 2u);
  EXPECT_EQ(stats.skipped_records, 0u);
}

TEST(Fasta, SkipPolicyDropsOnlyTheBadRecord) {
  std::istringstream in(">good1\nACDE\n>bad\nAC?E\nMORE\n>good2\nMMM\n");
  SequenceSet set;
  FastaOptions options;
  options.on_bad_residue = BadResiduePolicy::kSkipRecord;
  FastaStats stats;
  EXPECT_EQ(read_fasta(in, set, options, &stats), 2u);
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.name(0), "good1");
  EXPECT_EQ(set.name(1), "good2");
  EXPECT_EQ(stats.skipped_records, 1u);
  EXPECT_EQ(stats.records, 2u);
}

TEST(Fasta, AmbiguityCodesAreValidNotMasked) {
  // B, Z, J, U, O map to the X rank in every policy — they are legitimate
  // (if ambiguous) residue codes, not errors.
  std::istringstream in(">s\nBZJUO\n");
  SequenceSet set;
  FastaStats stats;
  read_fasta(in, set, {}, &stats);  // default kThrow must not throw
  EXPECT_EQ(set.ascii(0), "XXXXX");
  EXPECT_EQ(stats.masked_residues, 0u);
}

TEST(Fasta, ErrorMessagesCarrySourceForStructuralProblems) {
  FastaOptions options;
  options.source = "weird.fa";
  {
    std::istringstream in("ACDE\n");
    SequenceSet set;
    try {
      read_fasta(in, set, options);
      FAIL() << "expected a parse error";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("weird.fa:1"), std::string::npos);
    }
  }
  {
    std::istringstream in(">empty\n>next\nAC\n");
    SequenceSet set;
    try {
      read_fasta(in, set, options);
      FAIL() << "expected a parse error";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("weird.fa:1"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find("empty"), std::string::npos);
    }
  }
}

TEST(Fasta, SkippedRecordAtEndOfFileIsCounted) {
  std::istringstream in(">good\nACDE\n>bad\nA@C\n");
  SequenceSet set;
  FastaOptions options;
  options.on_bad_residue = BadResiduePolicy::kSkipRecord;
  FastaStats stats;
  EXPECT_EQ(read_fasta(in, set, options, &stats), 1u);
  EXPECT_EQ(stats.skipped_records, 1u);
}

TEST(Fasta, TruncatedAfterHeaderThrowsStructuredError) {
  // A file killed mid-write right after a header must be rejected loudly
  // (dangling record), not parsed as an empty sequence.
  std::istringstream in(">s1\nACDE\n>s2\n");
  SequenceSet set;
  FastaOptions options;
  options.source = "sample.fa";
  try {
    (void)read_fasta(in, set, options);
    FAIL() << "dangling record was accepted";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("sample.fa"), std::string::npos);
    EXPECT_NE(what.find("no residues"), std::string::npos);
    EXPECT_NE(what.find("s2"), std::string::npos);
  }
}

TEST(Fasta, TruncationSweepNeverCrashesOrInventsRecords) {
  // Every byte-prefix of a valid FASTA file either parses (as a prefix of
  // its records — truncation can shorten the LAST record's residues but
  // never invent a record or corrupt an earlier one) or throws the
  // structured parse error. Nothing else: no crash, no silent garbage.
  const std::string full = ">alpha\nACDEFG\nHIKL\n>beta\nMNPQ\n>gamma\nRSTVWY\n";
  for (std::size_t keep = 0; keep <= full.size(); ++keep) {
    std::istringstream in(full.substr(0, keep));
    SequenceSet set;
    FastaOptions options;
    options.source = "trunc.fa";
    try {
      const std::size_t added = read_fasta(in, set, options);
      ASSERT_LE(added, 3u) << "keep=" << keep;
      ASSERT_EQ(added, set.size()) << "keep=" << keep;
      // Fully-covered earlier records must be intact.
      if (set.size() >= 1 && keep >= full.find(">beta")) {
        EXPECT_EQ(set.name(0), "alpha") << "keep=" << keep;
        EXPECT_EQ(set.ascii(0), "ACDEFGHIKL") << "keep=" << keep;
      }
      if (set.size() >= 2 && keep >= full.find(">gamma")) {
        EXPECT_EQ(set.ascii(1), "MNPQ") << "keep=" << keep;
      }
    } catch (const std::runtime_error& e) {
      // Acceptable outcome: the structured error, attributed to the file.
      EXPECT_NE(std::string(e.what()).find("trunc.fa"), std::string::npos)
          << "keep=" << keep;
    }
  }
}

}  // namespace
}  // namespace pclust::seq
