#!/usr/bin/env bash
# Tier-1 verification: full build + ctest, then the real-thread execution
# layer (exec pool, pooled pace drivers) under ThreadSanitizer.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

# Data-race check. Only the thread-touching suites are worth the TSan
# slowdown: the pool itself, and the batched/pooled PaCE paths.
cmake --preset tsan
cmake --build build-tsan -j --target test_exec test_pace
(cd build-tsan
 ./tests/test_exec
 ./tests/test_pace --gtest_filter='Determinism*')
