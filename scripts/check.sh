#!/usr/bin/env bash
# Tier-1 verification: full build + ctest, then the real-thread execution
# layer (exec pool, pooled pace drivers, fault-injected runtime) under
# ThreadSanitizer, the memory-facing suites under ASan+UBSan, a CLI
# fault/checkpoint smoke matrix, the seeded chaos sweep, and the
# merge-provenance ledger / `pclust explain` determinism stage.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

# Data-race check. Only the thread-touching suites are worth the TSan
# slowdown: the pool itself, the batched/pooled PaCE paths, and the
# fault-injected simulator runtime (failure marks cross threads).
cmake --preset tsan
cmake --build build-tsan -j --target test_exec test_pace test_mpsim
(cd build-tsan
 ./tests/test_exec
 ./tests/test_pace --gtest_filter='Determinism*:FaultTolerance*'
 ./tests/test_mpsim)

# Memory-error check. The suites that parse untrusted bytes (FASTA,
# checkpoints), the self-healing engine, and the SIMD batch kernels (raw
# pointer lanes + hand-managed scratch) run under ASan+UBSan.
cmake --preset asan
cmake --build build-asan -j --target test_util test_seq test_align \
  test_mpsim test_pace test_prov test_pipeline
(cd build-asan
 ./tests/test_util
 ./tests/test_seq
 ./tests/test_align --gtest_filter='BatchSimd*:ScorePath*'
 ./tests/test_mpsim
 ./tests/test_pace --gtest_filter='FaultTolerance*'
 ./tests/test_prov
 ./tests/test_pipeline \
   --gtest_filter='CheckpointResumeTest*:ResourcePipelineTest*:PipelineProvenance*:ProvenanceResumeTest*')

# simd-matrix: the alignment suites (including the batch bit-identity fuzz
# tests) must pass at every --simd setting. PCLUST_SIMD is clamped to the
# host, so on a machine without AVX2 the avx2 leg degenerates to the best
# available tier rather than failing — the matrix is portable.
for simd in off sse2 avx2; do
  PCLUST_SIMD="$simd" build/tests/test_align >/dev/null \
    || { echo "test_align failed under PCLUST_SIMD=$simd"; exit 1; }
done
echo "check.sh: simd-matrix green (off sse2 avx2)"

# CLI fault/checkpoint smoke matrix: crash healing, kill-and-resume, and
# the documented exit codes.
smoke="$(mktemp -d)"
trap 'rm -rf "$smoke"' EXIT
pclust=build/tools/pclust

"$pclust" generate --n 300 --families 5 --seed 7 --out "$smoke/in.fa" \
  --truth "$smoke/truth.tsv" >/dev/null
"$pclust" simulate "$smoke/in.fa" --processors 4 --crash 1@0.01 \
  --drop 0.2 --dup 0.2 --straggle 2@3 >/dev/null
"$pclust" families "$smoke/in.fa" --checkpoint-dir "$smoke/ckpt" \
  --out "$smoke/a.tsv" >/dev/null
"$pclust" families "$smoke/in.fa" --checkpoint-dir "$smoke/ckpt" --resume \
  --out "$smoke/b.tsv" >/dev/null
cmp "$smoke/a.tsv" "$smoke/b.tsv"

rc=0; "$pclust" families "$smoke/missing.fa" 2>/dev/null || rc=$?
[ "$rc" -eq 3 ] || { echo "expected exit 3 for missing input, got $rc"; exit 1; }
rc=0; "$pclust" families --psi 0 "$smoke/in.fa" 2>/dev/null || rc=$?
[ "$rc" -eq 2 ] || { echo "expected exit 2 for --psi 0, got $rc"; exit 1; }
rc=0; "$pclust" generate --n 300 --families 5 --seed 8 --out "$smoke/other.fa" >/dev/null \
  && "$pclust" families "$smoke/other.fa" --checkpoint-dir "$smoke/ckpt" \
     --resume 2>/dev/null || rc=$?
[ "$rc" -eq 4 ] || { echo "expected exit 4 for fingerprint mismatch, got $rc"; exit 1; }

# chaos: seeded fault-plan sweep over the whole pipeline — order-preserving
# links at p=2 must be bit-identical to serial, CCD/DSD crashes must heal
# bit-identically, RR crashes must heal to a valid clustering, damaged
# checkpoints (kill-mid-write truncation, bit flips) must be quarantined
# and rolled back or recomputed — a --resume abort is a failure — and the
# resource classes (artifact I/O storms, squeezed --mem-budget) must
# degrade without touching the family output. 10 seeds = one pass over
# all 9 classes.
"$pclust" chaos --seeds 10 --n 200 --workdir "$smoke/chaos"

# io-chaos: the injectable I/O layer at the CLI. A sticky disk-full storm
# on every checkpoint write must not change the output (roll back and
# continue), and a clean --resume afterwards still lands bit-identically;
# a storm on the families artifact itself must exit 3 with the artifact
# class in the message; an impossible --mem-budget must exit 5
# (structured resource exhaustion), and a workable one must reproduce the
# unconstrained output bit for bit.
"$pclust" families "$smoke/in.fa" --checkpoint-dir "$smoke/ioc" \
  --io-fault checkpoint:enospc@1:sticky --out "$smoke/ioc-storm.tsv" \
  >/dev/null 2>&1
cmp "$smoke/a.tsv" "$smoke/ioc-storm.tsv"
"$pclust" families "$smoke/in.fa" --checkpoint-dir "$smoke/ioc" --resume \
  --out "$smoke/ioc-resume.tsv" >/dev/null
cmp "$smoke/a.tsv" "$smoke/ioc-resume.tsv"
rc=0; "$pclust" families "$smoke/in.fa" \
  --io-fault families:enospc@1:sticky --out "$smoke/ioc-fatal.tsv" \
  >/dev/null 2>"$smoke/ioc-fatal.err" || rc=$?
[ "$rc" -eq 3 ] || { echo "expected exit 3 for a families storm, got $rc"; exit 1; }
grep -q 'io\[families\]' "$smoke/ioc-fatal.err" \
  || { echo "families storm error lacks the artifact class"; exit 1; }
rc=0; "$pclust" families "$smoke/in.fa" --mem-budget 16k \
  --out "$smoke/ioc-oom.tsv" >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 5 ] || { echo "expected exit 5 for --mem-budget 16k, got $rc"; exit 1; }
"$pclust" families "$smoke/in.fa" --mem-budget 2g \
  --out "$smoke/ioc-budget.tsv" >/dev/null
cmp "$smoke/a.tsv" "$smoke/ioc-budget.tsv"
echo "check.sh: io-chaos green (storms, exit codes, budget bit-identity)"

# metrics-smoke: run reports + traces end to end. A serial run on a dense
# single-family workload must validate against the report schema AND show
# the paper's cluster-filter effect (CCD skip ratio > 0.99); a faulted,
# healed, threaded run must still satisfy the alignment-work identity; and
# the report diff mode must accept both documents.
"$pclust" generate --n 1400 --families 1 --noise 0.05 --mean-length 60 \
  --redundant 0.05 --seed 7 --out "$smoke/dense.fa" >/dev/null
"$pclust" families "$smoke/dense.fa" --rr-band 32 \
  --report-out "$smoke/serial.json" --trace-out "$smoke/serial.trace.json" \
  >/dev/null
"$pclust" report-check "$smoke/serial.json" --min-ccd-skip-ratio 0.99
grep -q '"traceEvents"' "$smoke/serial.trace.json" \
  || { echo "trace output is not a trace-event document"; exit 1; }
"$pclust" families "$smoke/in.fa" --processors 4 --threads 4 \
  --crash 2@0.01 --straggle 3@2 --report-out "$smoke/faulted.json" >/dev/null
"$pclust" report-check "$smoke/faulted.json"
grep -q '"crashed_ranks":\[2' "$smoke/faulted.json" \
  || { echo "faulted report does not record the crashed rank"; exit 1; }
"$pclust" compare --reports "$smoke/serial.json" "$smoke/faulted.json" \
  >/dev/null

# analyze-smoke: the load-imbalance analyzer must accept a simulated
# report's rank_times and render both text and JSON.
"$pclust" analyze "$smoke/faulted.json" >/dev/null
"$pclust" analyze "$smoke/faulted.json" --json >/dev/null

# hierarchy: the two-level master tree must be a pure optimization. Flat,
# hierarchical, and sub-master-crash runs produce bit-identical families;
# the crash run's report records the healed sub-master; and a p=256 run
# with a 4-wide sub-master tier clears the analyzer's master-saturation
# verdict (the flat protocol's CCD bottleneck).
"$pclust" families "$smoke/in.fa" --processors 8 \
  --out "$smoke/flat.tsv" >/dev/null
"$pclust" families "$smoke/in.fa" --processors 8 --masters 2 \
  --out "$smoke/tree.tsv" >/dev/null
cmp "$smoke/flat.tsv" "$smoke/tree.tsv"
"$pclust" families "$smoke/in.fa" --processors 8 --masters 2 \
  --submaster-crash 1@0.001 --out "$smoke/tree-crash.tsv" \
  --report-out "$smoke/tree-crash.json" >/dev/null
cmp "$smoke/flat.tsv" "$smoke/tree-crash.tsv"
grep -q '"submasters_failed":1' "$smoke/tree-crash.json" \
  || { echo "crash report does not record the healed sub-master"; exit 1; }
"$pclust" report-check "$smoke/tree-crash.json"
"$pclust" families "$smoke/in.fa" --processors 256 --masters 4 \
  --out "$smoke/tree256.tsv" --report-out "$smoke/tree256.json" >/dev/null
"$pclust" analyze "$smoke/tree256.json" --fail-on-saturation >/dev/null
echo "check.sh: hierarchy green (bit-identity + saturation clear at p=256)"

# telemetry: the live stream must observe without perturbing. A healthy
# p=8 run produces a well-formed stream (start + end records) that
# `monitor --fail-on-stall` accepts, and its families are bit-identical
# to the earlier un-instrumented flat run. A seeded 200x straggler at a
# threshold 10x a healthy run's worst virtual progress gap (~3 vs ~490
# on this workload) must trip the deterministic stall watchdog and turn
# the same monitor gate red.
"$pclust" families "$smoke/in.fa" --processors 8 \
  --telemetry-out "$smoke/healthy.tele.jsonl" --telemetry-interval 0.1 \
  --out "$smoke/tele-on.tsv" >/dev/null
cmp "$smoke/flat.tsv" "$smoke/tele-on.tsv"
grep -q '"type":"start".*"schema":"pclust-telemetry"' \
  "$smoke/healthy.tele.jsonl" \
  || { echo "telemetry stream lacks a start record"; exit 1; }
grep -q '"type":"end"' "$smoke/healthy.tele.jsonl" \
  || { echo "telemetry stream lacks an end record"; exit 1; }
"$pclust" monitor "$smoke/healthy.tele.jsonl" --fail-on-stall >/dev/null
"$pclust" monitor "$smoke/healthy.tele.jsonl" --json >/dev/null
# A stream torn mid-record (producer killed) must still summarize: the
# incremental tail reader buffers the partial line instead of counting it
# malformed or crashing.
head -c "$(( $(wc -c < "$smoke/healthy.tele.jsonl") - 20 ))" \
  "$smoke/healthy.tele.jsonl" > "$smoke/torn.tele.jsonl"
"$pclust" monitor "$smoke/torn.tele.jsonl" --json \
  | grep -q '"finished":false' \
  || { echo "monitor mishandled a torn telemetry stream"; exit 1; }
"$pclust" families "$smoke/in.fa" --processors 4 --straggle 2@200 \
  --telemetry-out "$smoke/straggler.tele.jsonl" --telemetry-stall 30 \
  >/dev/null
rc=0; "$pclust" monitor "$smoke/straggler.tele.jsonl" --fail-on-stall \
  >/dev/null || rc=$?
[ "$rc" -ne 0 ] \
  || { echo "monitor --fail-on-stall missed the seeded straggler"; exit 1; }
echo "check.sh: telemetry green (bit-identity + stall gate)"

# explain: merge-provenance ledger + decision-level audit. The ledger is a
# canonical derivation, so its bytes must be identical across real threads,
# a simulated hierarchical topology, and a checkpoint --resume (sidecar
# splicing); capturing it must not change the families; the report's
# provenance section must validate (merge identity enforced); and
# `pclust explain` must answer pair and family queries deterministically,
# with weak links ranked ascending by alignment score.
"$pclust" families "$smoke/in.fa" --provenance-out "$smoke/prov.jsonl" \
  --out "$smoke/prov-fams.tsv" --report-out "$smoke/prov-report.json" \
  >/dev/null
cmp "$smoke/a.tsv" "$smoke/prov-fams.tsv"
"$pclust" report-check "$smoke/prov-report.json" \
  | grep -q 'provenance section valid' \
  || { echo "report lacks a valid provenance section"; exit 1; }
"$pclust" families "$smoke/in.fa" --threads 4 \
  --provenance-out "$smoke/prov-t4.jsonl" --out "$smoke/prov-t4.tsv" \
  >/dev/null
cmp "$smoke/prov.jsonl" "$smoke/prov-t4.jsonl"
"$pclust" families "$smoke/in.fa" --processors 8 --masters 2 \
  --provenance-out "$smoke/prov-tree.jsonl" --out "$smoke/prov-tree.tsv" \
  >/dev/null
cmp "$smoke/prov.jsonl" "$smoke/prov-tree.jsonl"
"$pclust" families "$smoke/in.fa" --checkpoint-dir "$smoke/provck" \
  --provenance-out "$smoke/prov-ck.jsonl" --out "$smoke/prov-ck.tsv" \
  >/dev/null
"$pclust" families "$smoke/in.fa" --checkpoint-dir "$smoke/provck" \
  --resume --provenance-out "$smoke/prov-resume.jsonl" \
  --out "$smoke/prov-resume.tsv" >/dev/null
cmp "$smoke/prov.jsonl" "$smoke/prov-resume.jsonl"
# Audit queries: a pair from the largest family and the family itself.
# fams.tsv starts with a '#' header; members are "<label>\t<name>" rows.
fam="$(awk -F'\t' '!/^#/{print $1; exit}' "$smoke/prov-fams.tsv")"
pair_a="$(awk -F'\t' -v f="$fam" '!/^#/ && $1==f{print $2}' \
  "$smoke/prov-fams.tsv" | sed -n 1p)"
pair_b="$(awk -F'\t' -v f="$fam" '!/^#/ && $1==f{print $2}' \
  "$smoke/prov-fams.tsv" | sed -n 2p)"
"$pclust" explain "$smoke/in.fa" "$smoke/prov.jsonl" \
  --pair "$pair_a,$pair_b" > "$smoke/explain-pair.1.txt"
"$pclust" explain "$smoke/in.fa" "$smoke/prov.jsonl" \
  --pair "$pair_a,$pair_b" > "$smoke/explain-pair.2.txt"
cmp "$smoke/explain-pair.1.txt" "$smoke/explain-pair.2.txt"
grep -q 'merge chain' "$smoke/explain-pair.1.txt" \
  || { echo "explain --pair found no merge chain for $pair_a,$pair_b"; exit 1; }
"$pclust" explain "$smoke/in.fa" "$smoke/prov.jsonl" --family 1 \
  --clusters "$smoke/prov-fams.tsv" > "$smoke/explain-fam.1.txt"
"$pclust" explain "$smoke/in.fa" "$smoke/prov.jsonl" --family 1 \
  --clusters "$smoke/prov-fams.tsv" > "$smoke/explain-fam.2.txt"
cmp "$smoke/explain-fam.1.txt" "$smoke/explain-fam.2.txt"
# Weak links are ranked weakest first: the score column of that section
# must be non-decreasing.
sed -n '/weak links/,/hubs/p' "$smoke/explain-fam.1.txt" \
  | grep -o 'score=-\{0,1\}[0-9]*' | cut -d= -f2 | sort -n -C \
  || { echo "explain weak links are not sorted ascending by score"; exit 1; }
"$pclust" explain "$smoke/in.fa" "$smoke/prov.jsonl" --family 1 \
  --clusters "$smoke/prov-fams.tsv" --json | grep -q '"weak_links"' \
  || { echo "explain --json lacks weak_links"; exit 1; }
echo "check.sh: explain green (ledger bit-identity + deterministic audits)"

# perf: regression gate against the committed baselines. Timings move with
# the host, so the default tolerance here is deliberately loose — it exists
# to catch order-of-magnitude kernel regressions and the score-only fast
# path falling behind the full-matrix kernel (an absolute, host-independent
# gate). PCLUST_PERF_TOLERANCE tightens/loosens it; "skip" disables the
# stage (e.g. on emulated or heavily loaded hosts).
perf_tolerance="${PCLUST_PERF_TOLERANCE:-0.5}"
if [ "$perf_tolerance" = "skip" ]; then
  echo "check.sh: perf stage skipped (PCLUST_PERF_TOLERANCE=skip)"
else
  repo="$PWD"
  (cd "$smoke" && "$repo/build/bench/bench_kernels" \
     --benchmark_filter=NONE >/dev/null 2>&1)
  "$pclust" perf-diff --baseline BENCH_kernels.json \
    --candidate "$smoke/BENCH_kernels.json" --tolerance "$perf_tolerance"
  (cd "$smoke" && "$repo/build/bench/bench_pipeline" >/dev/null)
  "$pclust" perf-diff --baseline BENCH_pipeline.json \
    --candidate "$smoke/BENCH_pipeline.json" --tolerance "$perf_tolerance"
  # Telemetry overhead budget: re-run the pipeline bench with the stream
  # enabled and diff it against the plain run just above. Back-to-back
  # runs on one host keep the noise correlated, so the default gate is
  # tight (<= 2%); PCLUST_TELEMETRY_TOLERANCE loosens it (or "skip").
  telemetry_tolerance="${PCLUST_TELEMETRY_TOLERANCE:-0.02}"
  if [ "$telemetry_tolerance" = "skip" ]; then
    echo "check.sh: telemetry overhead gate skipped"
  else
    mkdir -p "$smoke/tele-bench"
    (cd "$smoke/tele-bench" &&
       PCLUST_TELEMETRY_OUT="$smoke/tele-bench/bench.tele.jsonl" \
       PCLUST_TELEMETRY_INTERVAL=1 \
       "$repo/build/bench/bench_pipeline" >/dev/null)
    "$pclust" perf-diff --baseline "$smoke/BENCH_pipeline.json" \
      --candidate "$smoke/tele-bench/BENCH_pipeline.json" \
      --tolerance "$telemetry_tolerance"
    echo "check.sh: telemetry overhead within ${telemetry_tolerance}"
  fi
  # Provenance overhead budget: capturing the merge ledger must cost <= 3%
  # wall time on the dense workload (serial CCD captures at decision time;
  # RR/DSD derivation is linear in the evidence). Best-of-3 back-to-back
  # runs keep host noise correlated; PCLUST_PROVENANCE_TOLERANCE loosens
  # the gate (or "skip").
  provenance_tolerance="${PCLUST_PROVENANCE_TOLERANCE:-0.03}"
  if [ "$provenance_tolerance" = "skip" ]; then
    echo "check.sh: provenance overhead gate skipped"
  else
    best_families_ns() {  # best-of-3 wall time of a families run, ns
      local best="" t0 t1 dt i
      for i in 1 2 3; do
        t0=$(date +%s%N)
        "$pclust" families "$smoke/dense.fa" --rr-band 32 \
          --out "$smoke/prov-bench.tsv" "$@" >/dev/null
        t1=$(date +%s%N)
        dt=$((t1 - t0))
        if [ -z "$best" ] || [ "$dt" -lt "$best" ]; then best=$dt; fi
      done
      echo "$best"
    }
    plain_ns="$(best_families_ns)"
    prov_ns="$(best_families_ns --provenance-out "$smoke/prov-bench.jsonl")"
    awk -v plain="$plain_ns" -v prov="$prov_ns" -v tol="$provenance_tolerance" \
      'BEGIN { exit !(prov <= plain * (1 + tol)) }' \
      || { echo "provenance overhead $(awk -v a="$prov_ns" -v b="$plain_ns" \
             'BEGIN{printf "%.1f%%", (a/b - 1) * 100}') exceeds ${provenance_tolerance}"; \
           exit 1; }
    echo "check.sh: provenance overhead within ${provenance_tolerance}" \
      "($(awk -v a="$prov_ns" -v b="$plain_ns" 'BEGIN{printf "%+.1f%%", (a/b - 1) * 100}'))"
  fi
  # Hierarchy rows are virtual time (host-independent), so this leg also
  # gates the absolute floors: tree >= flat speed, saturation clear at
  # masters >= 4.
  (cd "$smoke" && "$repo/build/bench/bench_hierarchy" >/dev/null)
  "$pclust" perf-diff --baseline BENCH_hierarchy.json \
    --candidate "$smoke/BENCH_hierarchy.json" --tolerance "$perf_tolerance"
fi

echo "check.sh: all green"
